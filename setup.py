"""Package metadata and the ``repro`` console entry point.

Metadata lives here rather than in ``pyproject.toml`` (which carries
tool configuration only — ruff, mypy) so that offline environments
without the ``wheel`` package can still install editably via the
classic ``python setup.py develop`` path; ``pip install -e .`` works
wherever pip can provision its isolated PEP 517 build environment.
"""

from setuptools import find_packages, setup

setup(
    name="repro-wsn-connectivity",
    version="1.0.0",
    description=(
        "Reproduction of 'Secure Connectivity of WSNs Under Key "
        "Predistribution with on/off Channels' (ICDCS 2017)"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
