"""Legacy build shim.

Environments without the ``wheel`` package cannot run PEP 517 editable
builds; keeping this stub (and no ``[build-system]`` table in
``pyproject.toml``) lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
