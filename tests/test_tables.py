"""Tests for the ASCII table/curve renderers."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_curve, format_kv_block, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]], floatfmt=".2f")
        assert "0.12" in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatCurve:
    def test_empty(self):
        assert format_curve([], []) == "(empty curve)"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            format_curve([1, 2], [0.5])

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            format_curve([1], [0.5], y_min=1.0, y_max=0.0)

    def test_contains_markers(self):
        out = format_curve([0, 1, 2], [0.0, 0.5, 1.0], width=20, height=5)
        assert out.count("*") == 3

    def test_label_shown(self):
        out = format_curve([0, 1], [0, 1], label="curve-x")
        assert out.splitlines()[0] == "curve-x"

    def test_single_point(self):
        out = format_curve([5], [0.3])
        assert "*" in out


class TestFormatKvBlock:
    def test_alignment(self):
        out = format_kv_block("Header", [["key", 1], ["longer_key", 2]])
        lines = out.splitlines()
        assert lines[0] == "Header"
        assert lines[1] == "-" * len("Header")
        # Both value columns start at the same offset.
        assert lines[2].index(":") == lines[3].index(":")

    def test_empty_pairs(self):
        out = format_kv_block("T", [])
        assert out.splitlines()[0] == "T"
