"""Smoke + structure tests for the experiment harness and CLI.

Each experiment runs with tiny trial counts and reduced grids — the
goal is verifying wiring, result structure, and rendering, not
statistical agreement (integration tests cover that).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ExperimentError
from repro.experiments.attack_tradeoff import (
    render_attack_tradeoff,
    run_attack_tradeoff,
)
from repro.experiments.coupling_check import (
    render_coupling_check,
    run_coupling_check,
)
from repro.experiments.degree_poisson import (
    render_degree_poisson,
    run_degree_poisson,
)
from repro.experiments.disk_comparison import (
    render_disk_comparison,
    run_disk_comparison,
)
from repro.experiments.figure1 import (
    empirical_crossings,
    render_figure1,
    run_figure1,
)
from repro.experiments.kstar import render_kstar, run_kstar
from repro.experiments.mindegree_equiv import (
    render_mindegree_equiv,
    run_mindegree_equiv,
)
from repro.experiments.registry import REGISTRY, get_experiment, list_experiments
from repro.experiments.theorem1_check import (
    render_theorem1_check,
    run_theorem1_check,
)
from repro.experiments.zero_one import render_zero_one, run_zero_one


class TestRegistry:
    def test_all_experiments_registered(self):
        names = {spec.name for spec in list_experiments()}
        assert names == {
            "figure1",
            "kstar",
            "theorem1",
            "zero_one",
            "mindegree",
            "het_zero_one",
            "het_mindegree",
            "degree_poisson",
            "coupling",
            "attack",
            "disk",
            "giant",
            "resilience",
        }

    def test_get_known(self):
        assert get_experiment("figure1").name == "figure1"

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="figure1"):
            get_experiment("nope")

    def test_specs_have_anchors(self):
        for spec in REGISTRY.values():
            assert spec.paper_anchor
            assert callable(spec.run) and callable(spec.render)


class TestFigure1:
    def test_tiny_run_structure(self):
        result = run_figure1(
            trials=4,
            ring_sizes=[30, 70],
            curves=[(2, 0.5)],
            num_nodes=150,
            pool_size=2000,
            workers=1,
        )
        assert len(result.points) == 2
        for pt in result.points:
            assert 0.0 <= pt.estimate.estimate <= 1.0
            assert 0.0 <= pt.prediction <= 1.0

    def test_render_and_crossings(self):
        result = run_figure1(
            trials=4,
            ring_sizes=[20, 40, 60],
            curves=[(2, 1.0)],
            num_nodes=150,
            pool_size=2000,
            workers=1,
        )
        text = render_figure1(result)
        assert "Figure 1 curve: q=2, p=1.0" in text
        crossings = empirical_crossings(result)
        assert (2, 1.0) in crossings


class TestNumericExperiments:
    def test_kstar_table(self):
        result = run_kstar()
        assert len(result.points) == 6
        text = render_kstar(result)
        assert "paper K*" in text and "4/6" in text

    def test_kstar_small_network(self):
        result = run_kstar(num_nodes=100, pool_size=1000)
        assert all(pt.point["kstar_exact"] > 0 for pt in result.points)


class TestMonteCarloExperiments:
    def test_theorem1_check(self):
        result = run_theorem1_check(
            trials=3, alphas=(0.0, 2.0), ks=(1,), num_nodes=120,
            key_ring_size=40, pool_size=2000, workers=1,
        )
        assert len(result.points) == 2
        assert "limit law" in render_theorem1_check(result)

    def test_zero_one(self):
        result = run_zero_one(
            trials=3, num_nodes_grid=(100, 200), alpha_offsets=(-2.0, 2.0),
            pool_size=2000, workers=1,
        )
        assert len(result.points) == 4
        assert "Zero-one" in render_zero_one(result)

    def test_mindegree(self):
        result = run_mindegree_equiv(
            trials=3, ks=(1, 2), alphas=(0.0,), num_nodes=100,
            key_ring_size=40, pool_size=2000, workers=1,
        )
        assert len(result.points) == 2
        for pt in result.points:
            # k-connectivity never exceeds the min-degree event.
            assert pt.point["kconn_estimate"] <= pt.estimate.estimate + 1e-12
        assert "agreement" in render_mindegree_equiv(result)

    def test_degree_poisson(self):
        result = run_degree_poisson(
            trials=6, degrees=(0, 1), num_nodes=150, key_ring_size=40,
            pool_size=2000, workers=1,
        )
        assert len(result.points) == 2
        assert "TV vs Poisson" in render_degree_poisson(result)

    def test_coupling(self):
        result = run_coupling_check(
            trials=4, num_nodes_grid=(60,), key_ring_size=60,
            pool_size=2000, workers=1,
        )
        pt = result.points[0]
        assert pt.point["subset_violations"] == 0
        assert "coupling success" in render_coupling_check(result)

    def test_attack(self):
        result = run_attack_tradeoff(
            trials=2, qs=(1, 2), captured_grid=(5, 40), num_nodes=80,
            design_nodes=200, pool_size=2000, workers=1,
        )
        assert len(result.points) == 4
        assert "K*(q)" in render_attack_tradeoff(result)

    def test_disk(self):
        result = run_disk_comparison(
            trials=3, ring_sizes=(30, 50), num_nodes=100, pool_size=2000,
            workers=1,
        )
        assert len(result.points) == 2
        assert "disk empirical" in render_disk_comparison(result)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "kstar" in out

    def test_run_kstar(self, capsys):
        assert main(["run", "kstar"]) == 0
        assert "paper K*" in capsys.readouterr().out

    def test_run_with_save(self, tmp_path, capsys):
        path = tmp_path / "kstar.json"
        assert main(["run", "kstar", "--save", str(path)]) == 0
        assert path.exists()

    def test_run_unknown_raises(self):
        with pytest.raises(ExperimentError):
            main(["run", "bogus"])

    def test_run_with_set_overrides(self, capsys):
        assert (
            main(
                [
                    "run", "theorem1", "--workers", "1",
                    "--set", "trials=2", "--set", "ks=[1]",
                    "--set", "alphas=[2.0]", "--set", "num_nodes=100",
                    "--set", "key_ring_size=40", "--set", "pool_size=2000",
                ]
            )
            == 0
        )
        assert "limit law" in capsys.readouterr().out

    def test_run_with_grid_prefix_alias(self, capsys):
        assert (
            main(
                [
                    "run", "degree_poisson", "--workers", "1",
                    "--set", "grid.trials=2", "--set", "degrees=[0]",
                    "--set", "num_nodes=100", "--set", "key_ring_size=40",
                    "--set", "pool_size=2000",
                ]
            )
            == 0
        )
        assert "TV vs Poisson" in capsys.readouterr().out

    def test_run_with_unknown_set_key(self):
        with pytest.raises(ExperimentError, match="unknown --set keys"):
            main(["run", "kstar", "--set", "bogus_knob=3"])

    def test_set_requires_key_value(self):
        with pytest.raises(ExperimentError, match="KEY=VALUE"):
            main(["run", "kstar", "--set", "oops"])

    def test_all_applies_set_per_experiment(self, monkeypatch, capsys):
        # `repro all --set` applies each override to the experiments
        # that accept it and skips the rest with a stderr warning
        # (kstar takes no Monte Carlo knobs).
        import repro.cli as cli

        specs = [get_experiment("kstar"), get_experiment("theorem1")]
        monkeypatch.setattr(cli, "list_experiments", lambda: specs)
        assert (
            main(
                [
                    "all", "--workers", "1",
                    "--set", "trials=2", "--set", "ks=[1]",
                    "--set", "alphas=[2.0]", "--set", "num_nodes=100",
                    "--set", "key_ring_size=40", "--set", "pool_size=2000",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "=== kstar" in captured.out
        assert "=== theorem1" in captured.out
        assert "limit law" in captured.out
        assert "kstar does not accept --set trials" in captured.err
        assert "theorem1 does not accept" not in captured.err


class TestCliStudy:
    STUDY = {
        "name": "cli_smoke",
        "num_nodes": 100,
        "pool_size": 1500,
        "ring_sizes": [25, 32],
        "curves": [[2, 1.0]],
        "metrics": [{"kind": "connectivity"}],
        "trials": 3,
        "seed": 5,
    }

    def test_study_file_runs_end_to_end(self, tmp_path, capsys):
        import json

        path = tmp_path / "study.json"
        path.write_text(json.dumps(self.STUDY))
        assert main(["study", str(path), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "cli_smoke" in out and "connectivity" in out

    def test_study_set_overrides_and_save(self, tmp_path, capsys):
        import json

        path = tmp_path / "study.json"
        path.write_text(json.dumps({"scenarios": [self.STUDY]}))
        save = tmp_path / "out.json"
        assert (
            main(
                [
                    "study", str(path), "--workers", "1",
                    "--set", "trials=2", "--save", str(save),
                ]
            )
            == 0
        )
        saved = json.loads(save.read_text())
        assert saved["scenarios"][0]["scenario"]["trials"] == 2

    def test_study_size_grid_file_end_to_end(self, tmp_path, capsys):
        import json

        study = {
            "name": "cli_growth",
            "num_nodes_grid": [60, 100],
            "pool_size": 1500,
            "ring_sizes": [[22], [25]],
            "curves": [[[2, 1.0]], [[2, 0.8]]],
            "metrics": [{"kind": "connectivity"}],
            "trials": 3,
            "seed": 5,
        }
        path = tmp_path / "growth.json"
        path.write_text(json.dumps(study))
        assert main(["study", str(path), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "cli_growth" in out and "n grid=[60, 100]" in out

    def test_study_set_num_nodes_grid_replaces_num_nodes(self, tmp_path, capsys):
        import json

        path = tmp_path / "study.json"
        path.write_text(json.dumps(self.STUDY))
        assert (
            main(
                [
                    "study", str(path), "--workers", "1",
                    "--set", "num_nodes_grid=[60,100]",
                    "--set", "trials=2",
                ]
            )
            == 0
        )
        assert "n grid=[60, 100]" in capsys.readouterr().out

    def test_study_set_num_nodes_on_grid_file_demands_axis_overrides(
        self, tmp_path, capsys
    ):
        import json

        study = {
            "name": "cli_growth",
            "num_nodes_grid": [60, 100],
            "pool_size": 1500,
            "ring_sizes": [[22], [25]],
            "curves": [[[2, 1.0]], [[2, 0.8]]],
            "metrics": [{"kind": "connectivity"}],
            "trials": 2,
            "seed": 5,
        }
        path = tmp_path / "growth.json"
        path.write_text(json.dumps(study))
        with pytest.raises(ExperimentError, match="ring_sizes/curves"):
            main(["study", str(path), "--workers", "1", "--set", "num_nodes=80"])
        # Replacing the per-size axes alongside num_nodes works.
        assert (
            main(
                [
                    "study", str(path), "--workers", "1",
                    "--set", "num_nodes=80", "--set", "ring_sizes=[22]",
                    "--set", "curves=[[2, 1.0]]",
                ]
            )
            == 0
        )
        assert "n=80" in capsys.readouterr().out

    def test_study_missing_file(self):
        with pytest.raises(ExperimentError, match="no such study file"):
            main(["study", "/nonexistent/study.json"])

    def test_study_malformed_json(self, tmp_path):
        from repro.exceptions import ParameterError

        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ParameterError, match="does not parse"):
            main(["study", str(path)])

    def test_study_malformed_scenario(self, tmp_path):
        import json

        from repro.exceptions import ParameterError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "num_nodes": 10}))
        with pytest.raises(ParameterError, match="missing required fields"):
            main(["study", str(path)])
