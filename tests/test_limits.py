"""Tests for the limit law and α transforms (Eqs. 6-8, Lemma 7 form)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.probability.limits import (
    alpha_from_edge_probability,
    critical_edge_probability,
    edge_probability_from_alpha,
    limit_probability,
    limit_probability_inverse,
)


class TestLimitProbability:
    def test_alpha_zero_k1_is_inv_e(self):
        assert limit_probability(0.0, 1) == pytest.approx(math.exp(-1.0))

    def test_k1_is_gumbel_cdf(self):
        for alpha in (-2.0, -0.5, 0.0, 1.3, 4.0):
            assert limit_probability(alpha, 1) == pytest.approx(
                math.exp(-math.exp(-alpha))
            )

    def test_factorial_scaling_k3(self):
        alpha = 0.7
        assert limit_probability(alpha, 3) == pytest.approx(
            math.exp(-math.exp(-alpha) / 2.0)
        )

    def test_plus_infinity(self):
        assert limit_probability(float("inf"), 2) == 1.0

    def test_minus_infinity(self):
        assert limit_probability(float("-inf"), 2) == 0.0

    def test_very_negative_alpha_underflows_to_zero(self):
        assert limit_probability(-800.0, 1) == 0.0

    def test_monotone_increasing_in_alpha(self):
        vals = [limit_probability(a, 2) for a in (-3, -1, 0, 1, 3, 6)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_monotone_increasing_in_k(self):
        # Larger k shrinks the failure rate e^{-a}/(k-1)!.
        for alpha in (-1.0, 0.0, 2.0):
            vals = [limit_probability(alpha, k) for k in (1, 2, 3, 4)]
            assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_nan_rejected(self):
        with pytest.raises(ParameterError):
            limit_probability(float("nan"), 1)

    def test_bad_k_rejected(self):
        with pytest.raises(ParameterError):
            limit_probability(0.0, 0)


class TestLimitInverse:
    @given(st.floats(-5.0, 8.0), st.integers(1, 5))
    @settings(max_examples=150)
    def test_roundtrip(self, alpha, k):
        prob = limit_probability(alpha, k)
        if 0.0 < prob < 1.0:
            assert limit_probability_inverse(prob, k) == pytest.approx(
                alpha, rel=1e-8, abs=1e-8
            )

    def test_endpoints(self):
        assert limit_probability_inverse(0.0, 1) == float("-inf")
        assert limit_probability_inverse(1.0, 1) == float("inf")

    def test_known_value(self):
        # P = e^{-1} corresponds to alpha = 0 for k = 1.
        assert limit_probability_inverse(math.exp(-1.0), 1) == pytest.approx(0.0)


class TestAlphaTransforms:
    @given(
        st.integers(10, 100000),
        st.floats(-3.0, 10.0),
        st.integers(1, 4),
    )
    @settings(max_examples=150)
    def test_roundtrip(self, n, alpha, k):
        try:
            t = edge_probability_from_alpha(alpha, n, k)
        except ParameterError:
            return  # infeasible (t outside [0,1]) — nothing to roundtrip
        assert alpha_from_edge_probability(t, n, k) == pytest.approx(
            alpha, rel=1e-9, abs=1e-7
        )

    def test_critical_is_alpha_zero(self):
        n = 1000
        t = critical_edge_probability(n, 1)
        assert t == pytest.approx(math.log(n) / n)
        assert alpha_from_edge_probability(t, n, 1) == pytest.approx(0.0, abs=1e-12)

    def test_critical_k2_includes_loglog(self):
        n = 1000
        assert critical_edge_probability(n, 2) == pytest.approx(
            (math.log(n) + math.log(math.log(n))) / n
        )

    def test_infeasible_alpha_raises(self):
        # alpha so large that t > 1 at tiny n.
        with pytest.raises(ParameterError):
            edge_probability_from_alpha(100.0, 10, 1)

    def test_k_greater_one_needs_n_over_two(self):
        with pytest.raises(ParameterError):
            edge_probability_from_alpha(0.0, 2, 2)
