"""The spool-based study service: jobs, statuses, event streams.

End-to-end through the public surface: job files dropped into
``spool/jobs/`` are claimed, executed under scheduler supervision, and
answered via ``status/`` + ``events/`` + ``results/`` files.  The
headline assertion mirrors the CI service leg: of two identical
submissions, the second is a cache hit that executes zero work units.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import events
from repro.service.cache import ResultCache
from repro.service.queue import JOB_FORMAT, StudyService
from repro.study.compiler import Study
from repro.study.result import StudyResult
from repro.study.scenario import MetricSpec, Scenario

WORKERS = 2


def _scenario(trials=4):
    return Scenario(
        name="served",
        num_nodes=40,
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        trials=trials,
        seed=11,
        metrics=(MetricSpec("connectivity"),),
    )


def _submit(spool, job_id, payload):
    jobs = spool / "jobs"
    jobs.mkdir(parents=True, exist_ok=True)
    path = jobs / f"{job_id}.json"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)
    return path


class TestServiceLifecycle:
    def test_overlapping_submissions_second_is_pure_hit(self, tmp_path):
        spool = tmp_path / "spool"
        service = StudyService(
            spool,
            cache=ResultCache(tmp_path / "cache"),
            workers=WORKERS,
            max_concurrent=1,  # serialize so the second job sees the store
        )
        study_dict = Study((_scenario(),)).to_dict()
        _submit(spool, "job-a", study_dict)
        _submit(spool, "job-b", study_dict)
        executed = service.serve_forever(max_jobs=2, idle_timeout=10)
        assert executed == 2

        status_a = service.read_status("job-a")
        status_b = service.read_status("job-b")
        assert status_a["state"] == status_b["state"] == "done"
        assert status_a["cache"]["disposition"] == "miss"
        assert status_b["cache"]["disposition"] == "hit"
        assert status_b["units"] == 0

        result_a = StudyResult.load(status_a["result"])
        result_b = StudyResult.load(status_b["result"])
        assert np.array_equal(
            result_a["served"].values, result_b["served"].values
        )

    def test_event_stream_is_written_per_job(self, tmp_path):
        spool = tmp_path / "spool"
        service = StudyService(spool, workers=WORKERS)
        _submit(spool, "job-ev", Study((_scenario(),)).to_dict())
        service.serve_forever(max_jobs=1, idle_timeout=10)

        lines = (spool / "events" / "job-ev.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_completed"
        assert "unit_completed" in kinds  # supervised by default
        assert all(r["job_id"] == "job-ev" for r in records)

    def test_failed_job_reports_error(self, tmp_path):
        spool = tmp_path / "spool"
        service = StudyService(spool, workers=1)
        _submit(spool, "job-bad", {"scenarios": [{"name": "broken"}]})
        executed = service.serve_forever(max_jobs=1, idle_timeout=10)
        assert executed == 1
        status = service.read_status("job-bad")
        assert status["state"] == "failed"
        assert "error" in status
        kinds = [
            json.loads(line)["kind"]
            for line in (spool / "events" / "job-bad.jsonl")
            .read_text()
            .splitlines()
        ]
        assert kinds[-1] == "job_failed"

    def test_adaptive_job_via_options_wrapper(self, tmp_path):
        spool = tmp_path / "spool"
        service = StudyService(spool, workers=WORKERS)
        _submit(
            spool,
            "job-adaptive",
            {
                "format": JOB_FORMAT,
                "study": Study((_scenario(),)).to_dict(),
                "options": {"target_ci": 0.5, "max_trials": 8},
            },
        )
        service.serve_forever(max_jobs=1, idle_timeout=10)
        status = service.read_status("job-adaptive")
        assert status["state"] == "done"
        result = StudyResult.load(status["result"])
        assert "adaptive" in result.provenance

    def test_idle_timeout_returns_without_jobs(self, tmp_path):
        service = StudyService(tmp_path / "spool", poll_interval=0.05)
        assert service.serve_forever(idle_timeout=0.2) == 0

    def test_rejects_bad_max_concurrent(self, tmp_path):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="max_concurrent"):
            StudyService(tmp_path / "spool", max_concurrent=0)


class TestEventBus:
    def test_subscribe_capture_unsubscribe(self):
        seen = []
        sink = seen.append
        events.subscribe(sink)
        try:
            events.emit("ping", value=1)
        finally:
            events.unsubscribe(sink)
        events.emit("ping", value=2)  # after unsubscribe: not delivered
        assert [e.fields["value"] for e in seen] == [1]

    def test_context_tags_nested_emits(self):
        with events.capture_events() as captured:
            with events.event_context(job_id="J", extra="x"):
                events.emit("inner")
            events.emit("outer")
        inner, outer = captured
        assert inner.fields == {"job_id": "J", "extra": "x"}
        assert "job_id" not in outer.fields

    def test_kind_filter(self):
        with events.capture_events(kinds=("keep",)) as captured:
            events.emit("keep")
            events.emit("drop")
        assert [e.kind for e in captured] == ["keep"]

    def test_broken_sink_does_not_break_emitters(self):
        def broken(event):
            raise RuntimeError("sink bug")

        events.subscribe(broken)
        try:
            with events.capture_events() as captured:
                events.emit("survives")
        finally:
            events.unsubscribe(broken)
        assert [e.kind for e in captured] == ["survives"]

    def test_event_serializes(self):
        with events.capture_events() as captured:
            events.emit("s", a=1)
        data = captured[0].to_dict()
        assert data["kind"] == "s" and data["a"] == 1
        json.dumps(data)
