"""Tests for Poisson helpers (Lemma 9 support)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import poisson as scipy_poisson

from repro.exceptions import ParameterError
from repro.probability.poisson import (
    poisson_cdf,
    poisson_pmf,
    poisson_pmf_vector,
    poisson_total_variation,
    total_variation_from_counts,
)


class TestPmf:
    def test_matches_scipy(self):
        for mean in (0.1, 1.0, 7.3, 40.0):
            for k in (0, 1, 5, 20):
                assert poisson_pmf(k, mean) == pytest.approx(
                    float(scipy_poisson.pmf(k, mean)), rel=1e-10
                )

    def test_zero_mean_point_mass(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(3, 0.0) == 0.0

    def test_negative_mean_raises(self):
        with pytest.raises(ParameterError):
            poisson_pmf(1, -0.5)

    def test_vector_sums_near_one(self):
        v = poisson_pmf_vector(100, 5.0)
        assert v.sum() == pytest.approx(1.0, abs=1e-10)


class TestCdf:
    def test_matches_scipy(self):
        for mean in (0.5, 3.0, 12.0):
            for k in (0, 2, 10):
                assert poisson_cdf(k, mean) == pytest.approx(
                    float(scipy_poisson.cdf(k, mean)), rel=1e-9
                )

    def test_far_tail_is_one(self):
        assert poisson_cdf(1000, 1.0) == pytest.approx(1.0, abs=1e-12)
        assert poisson_cdf(1000, 1.0) <= 1.0


class TestTotalVariation:
    def test_identical_distributions_zero(self):
        ref = poisson_pmf_vector(30, 2.0)
        counts = (ref * 1_000_000).round().astype(int)
        assert poisson_total_variation(counts, 2.0) < 0.005

    def test_disjoint_distributions_near_one(self):
        counts = [0, 0, 0, 0, 0, 1000]  # all mass at 5
        tv = total_variation_from_counts(counts, [1.0])  # all ref mass at 0
        assert tv == pytest.approx(1.0)

    def test_symmetric_bound(self):
        counts = [3, 5, 2]
        ref = [0.3, 0.3, 0.4]
        tv = total_variation_from_counts(counts, ref)
        assert 0.0 <= tv <= 1.0

    def test_empty_counts_raise(self):
        with pytest.raises(ParameterError):
            total_variation_from_counts([], [1.0])

    def test_zero_total_raises(self):
        with pytest.raises(ParameterError):
            total_variation_from_counts([0, 0], [1.0])

    def test_negative_counts_raise(self):
        with pytest.raises(ParameterError):
            total_variation_from_counts([1, -1], [1.0])

    def test_sampled_poisson_small_tv(self, rng):
        sample = rng.poisson(4.0, size=20000)
        counts = np.bincount(sample)
        assert poisson_total_variation(counts, 4.0) < 0.03

    def test_wrong_mean_detected(self, rng):
        sample = rng.poisson(4.0, size=20000)
        counts = np.bincount(sample)
        assert poisson_total_variation(counts, 8.0) > 0.3
