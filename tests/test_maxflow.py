"""Tests for the Dinic max-flow implementation."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.maxflow import FlowNetwork


class TestBasics:
    def test_single_arc(self):
        net = FlowNetwork(2)
        net.add_arc(0, 1, 3)
        assert net.max_flow(0, 1) == 3

    def test_no_path(self):
        net = FlowNetwork(3)
        net.add_arc(0, 1, 5)
        assert net.max_flow(0, 2) == 0

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_arc(0, 1, 5)
        net.add_arc(1, 2, 2)
        assert net.max_flow(0, 2) == 2

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_arc(0, 1, 1)
        net.add_arc(1, 3, 1)
        net.add_arc(0, 2, 1)
        net.add_arc(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_classic_residual_case(self):
        # Requires pushing flow back along the diagonal arc.
        net = FlowNetwork(4)
        net.add_arc(0, 1, 1)
        net.add_arc(0, 2, 1)
        net.add_arc(1, 2, 1)
        net.add_arc(1, 3, 1)
        net.add_arc(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_limit_truncates(self):
        net = FlowNetwork(2)
        net.add_arc(0, 1, 10)
        assert net.max_flow(0, 1, limit=4) == 4

    def test_limit_zero(self):
        net = FlowNetwork(2)
        net.add_arc(0, 1, 10)
        assert net.max_flow(0, 1, limit=0) == 0

    def test_same_source_sink_raises(self):
        net = FlowNetwork(2)
        with pytest.raises(GraphError):
            net.max_flow(1, 1)

    def test_invalid_nodes_raise(self):
        net = FlowNetwork(2)
        with pytest.raises(GraphError):
            net.max_flow(0, 5)
        with pytest.raises(GraphError):
            net.add_arc(0, 9, 1)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(GraphError):
            net.add_arc(0, 1, -1)


class TestAgainstNetworkx:
    def _random_digraph(self, rng, n, arcs, max_cap):
        edges = []
        for _ in range(arcs):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v:
                edges.append((u, v, int(rng.integers(1, max_cap + 1))))
        return edges

    def test_random_unit_capacity(self, rng):
        for _ in range(40):
            n = int(rng.integers(4, 15))
            edges = self._random_digraph(rng, n, n * 3, 1)
            net = FlowNetwork(n)
            ng = nx.DiGraph()
            ng.add_nodes_from(range(n))
            for u, v, c in edges:
                net.add_arc(u, v, c)
                if ng.has_edge(u, v):
                    ng[u][v]["capacity"] += c
                else:
                    ng.add_edge(u, v, capacity=c)
            s, t = 0, n - 1
            assert net.max_flow(s, t) == nx.maximum_flow_value(ng, s, t)

    def test_random_general_capacity(self, rng):
        for _ in range(40):
            n = int(rng.integers(4, 12))
            edges = self._random_digraph(rng, n, n * 4, 7)
            net = FlowNetwork(n)
            ng = nx.DiGraph()
            ng.add_nodes_from(range(n))
            for u, v, c in edges:
                net.add_arc(u, v, c)
                if ng.has_edge(u, v):
                    ng[u][v]["capacity"] += c
                else:
                    ng.add_edge(u, v, capacity=c)
            s, t = 0, n - 1
            assert net.max_flow(s, t) == nx.maximum_flow_value(ng, s, t)

    def test_limit_never_exceeds_true_flow(self, rng):
        for _ in range(20):
            n = int(rng.integers(4, 12))
            edges = self._random_digraph(rng, n, n * 3, 5)
            ng = nx.DiGraph()
            ng.add_nodes_from(range(n))
            full = FlowNetwork(n)
            limited = FlowNetwork(n)
            for u, v, c in edges:
                full.add_arc(u, v, c)
                limited.add_arc(u, v, c)
                if ng.has_edge(u, v):
                    ng[u][v]["capacity"] += c
                else:
                    ng.add_edge(u, v, capacity=c)
            true_flow = nx.maximum_flow_value(ng, 0, n - 1)
            assert full.max_flow(0, n - 1) == true_flow
            assert limited.max_flow(0, n - 1, limit=2) == min(2, true_flow)
