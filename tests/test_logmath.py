"""Unit and property tests for repro.utils.logmath."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.logmath import (
    log1mexp,
    log_binomial,
    log_binomial_array,
    log_factorial,
    log_falling_factorial,
    logsumexp,
    stable_sum,
)


class TestLogFactorial:
    def test_zero(self):
        assert log_factorial(0) == pytest.approx(0.0)

    def test_small_values_exact(self):
        for n in range(1, 15):
            assert log_factorial(n) == pytest.approx(math.log(math.factorial(n)))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            log_factorial(-1)


class TestLogBinomial:
    def test_matches_math_comb_small(self):
        for n in range(0, 25):
            for k in range(0, n + 1):
                assert log_binomial(n, k) == pytest.approx(
                    math.log(math.comb(n, k)), abs=1e-10
                )

    def test_out_of_range_is_neg_inf(self):
        assert log_binomial(5, 6) == float("-inf")
        assert log_binomial(5, -1) == float("-inf")

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            log_binomial(-1, 0)

    def test_huge_coefficient_finite(self):
        # C(10000, 88) overflows float64 but its log must be finite.
        val = log_binomial(10000, 88)
        assert math.isfinite(val)
        assert val > 500  # ballpark magnitude check

    @given(st.integers(0, 300), st.integers(0, 300))
    def test_symmetry(self, n, k):
        assert log_binomial(n, k) == pytest.approx(
            log_binomial(n, n - k) if 0 <= k <= n else float("-inf"), abs=1e-9
        )

    def test_array_matches_scalar(self):
        ks = np.arange(-2, 12)
        arr = log_binomial_array(10, ks)
        for k, v in zip(ks, arr):
            assert v == pytest.approx(log_binomial(10, int(k)), abs=1e-12) or (
                v == float("-inf") and log_binomial(10, int(k)) == float("-inf")
            )


class TestLogsumexp:
    def test_empty(self):
        assert logsumexp([]) == float("-inf")

    def test_all_neg_inf(self):
        assert logsumexp([float("-inf"), float("-inf")]) == float("-inf")

    def test_single_value(self):
        assert logsumexp([-3.2]) == pytest.approx(-3.2)

    def test_matches_direct_small(self):
        vals = [-1.0, -2.0, -3.0]
        direct = math.log(sum(math.exp(v) for v in vals))
        assert logsumexp(vals) == pytest.approx(direct)

    def test_extreme_spread_no_overflow(self):
        assert logsumexp([1000.0, -1000.0]) == pytest.approx(1000.0)

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_property_vs_numpy(self, vals):
        ours = logsumexp(vals)
        arr = np.array(vals)
        reference = arr.max() + math.log(np.exp(arr - arr.max()).sum())
        assert ours == pytest.approx(reference, rel=1e-10, abs=1e-10)


class TestLog1mexp:
    def test_zero_gives_neg_inf(self):
        assert log1mexp(0.0) == float("-inf")

    def test_neg_inf_gives_zero(self):
        assert log1mexp(float("-inf")) == 0.0

    def test_positive_raises(self):
        with pytest.raises(ValueError):
            log1mexp(0.1)

    @given(st.floats(-50.0, -1e-8))
    @settings(max_examples=200)
    def test_identity(self, lp):
        # exp(log1mexp(lp)) == 1 - exp(lp)
        assert math.exp(log1mexp(lp)) == pytest.approx(
            1.0 - math.exp(lp), rel=1e-9, abs=1e-12
        )

    def test_both_branches_agree_near_threshold(self):
        near = -math.log(2.0)
        for eps in (-1e-6, 0.0, 1e-6):
            lp = near + eps
            assert math.exp(log1mexp(lp)) == pytest.approx(
                1.0 - math.exp(lp), rel=1e-10
            )


class TestLogFallingFactorial:
    def test_k_zero(self):
        assert log_falling_factorial(10, 0) == 0.0

    def test_matches_direct(self):
        # 10 * 9 * 8
        assert log_falling_factorial(10, 3) == pytest.approx(math.log(720))

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            log_falling_factorial(5, -1)

    def test_n_too_small_raises(self):
        with pytest.raises(ValueError):
            log_falling_factorial(1, 3)


class TestStableSum:
    def test_empty(self):
        assert stable_sum([]) == 0.0

    def test_compensation_beats_naive(self):
        # 1 + 1e-16 * 1e6 accumulated: naive sum loses the small terms.
        vals = [1.0] + [1e-16] * 1_000_000
        assert stable_sum(vals) == pytest.approx(1.0 + 1e-10, rel=1e-6)

    @given(st.lists(st.floats(-1e6, 1e6), max_size=50))
    def test_matches_fsum(self, vals):
        assert stable_sum(vals) == pytest.approx(math.fsum(vals), rel=1e-12, abs=1e-9)
