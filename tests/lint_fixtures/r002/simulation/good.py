"""R002 non-findings: interval timers are measurement, not results."""

import time


def timed(fn):
    start = time.monotonic()
    fn()
    return time.monotonic() - start


def micro(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
