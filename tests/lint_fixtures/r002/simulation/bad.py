"""R002 true positives: wall-clock/entropy on a result-bearing path."""

import os
import time
import uuid
from time import time as now


def stamp_result(values):
    return {"values": values, "generated_at": time.time()}


def aliased_clock():
    return now()


def entropy_token():
    return uuid.uuid4().hex


def raw_entropy():
    return os.urandom(8)
