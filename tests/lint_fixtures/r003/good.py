"""R003 non-findings: sorted or order-insensitive consumption."""


def accumulate(items):
    total = 0.0
    for value in sorted(set(items)):
        total += value
    return total


def materialize(a, b):
    return sorted(set(a) | set(b))


def sanitized_comprehension(promised, local):
    return sorted(
        name for name in set(promised) | set(local)
        if promised.get(name) != local.get(name)
    )


def order_free(items):
    distinct = set(items)
    return len(distinct), min(distinct), max(distinct), 3 in distinct
