"""R003 true positives: hash-ordered iteration feeding ordered sinks."""


def accumulate(items):
    total = 0.0
    for value in set(items):
        total += value
    return total


def materialize(a, b):
    return list(set(a) | set(b))


def schedule(jobs):
    order = [job for job in {j.name for j in jobs}]
    return order


def key_order(mapping):
    return [mapping[key] for key in mapping.keys()]
