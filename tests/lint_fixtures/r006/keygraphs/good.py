"""R006 non-findings: typed repro exceptions on keygraph paths."""

from repro.exceptions import ParameterError


def take(rings, index):
    if index >= len(rings):
        raise ParameterError(f"no ring {index}")
    return rings[index]


def passthrough(fn):
    try:
        return fn()
    except ParameterError as exc:
        raise exc


def wrong_type(value):
    if not isinstance(value, int):
        raise TypeError("value must be an int")
