"""R006 true positives: untyped exceptions on keygraph paths."""


def take(rings, index):
    if index >= len(rings):
        raise IndexError(f"no ring {index}")
    return rings[index]


def check_pool(pool_size):
    if pool_size <= 0:
        raise ValueError("pool must be positive")


def explode():
    raise Exception("bad rings")
