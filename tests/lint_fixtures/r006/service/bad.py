"""R006 true positives: untyped exceptions on service paths."""


def lookup(table, key):
    if key not in table:
        raise ValueError(f"unknown key {key!r}")
    return table[key]


def guard(ready):
    if not ready:
        raise Exception("not ready")


def fail():
    raise RuntimeError("boom")
