"""R006 non-findings: typed repro exceptions and re-raises."""

from repro.exceptions import ParameterError, SchedulerError


def lookup(table, key):
    if key not in table:
        raise ParameterError(f"unknown key {key!r}")
    return table[key]


def guard(ready):
    if not ready:
        raise SchedulerError("not ready")


def passthrough(fn):
    try:
        return fn()
    except ParameterError as exc:
        raise exc


def wrong_type(value):
    if not isinstance(value, int):
        raise TypeError("value must be an int")
