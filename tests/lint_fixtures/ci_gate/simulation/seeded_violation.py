"""Synthetic violation tree: the CI lint leg must fail on this."""

import random
import time


def tainted_trial():
    return random.random() * time.time()
