"""R005 true positives: import-time environment reads and global mutation."""

import os

import numpy as np

DEBUG = os.getenv("REPRO_DEBUG")
CACHE_DIR = os.environ.get("REPRO_CACHE", "/tmp/cache")
os.environ["REPRO_STARTED"] = "1"
np.seterr(all="raise")
