"""R005 non-findings: env reads and mutation deferred to call time."""

import os

import numpy as np


def debug_enabled() -> bool:
    return bool(os.getenv("REPRO_DEBUG"))


def configure_worker() -> None:
    np.seterr(all="raise")
