"""Provenance writer backing the flags declared in cli.py."""


def record(result, workers: int) -> None:
    provenance = result.setdefault("provenance", {})
    provenance["workers"] = workers
