"""R007 non-findings: every flag is classified and its key is written."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="fixture")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--save", default=None)
    return parser
