"""R004 true positives: kernel seam violations."""

from repro.graphs.graph import Graph
from repro.kernels.base import KernelBackend


def component_count(graph: Graph) -> int:
    return len(graph.nodes)


class BrokenBackend(KernelBackend):
    name = "broken"

    def min_label_components(self, graph, labels):
        return 0

    def overlap_counts(self, node_ids, key_ids, num_nodes):
        return None
