"""R004 non-findings: an array-first backend matching the contract."""

from repro.kernels.base import KernelBackend


class ArrayBackend(KernelBackend):
    name = "array"

    def min_label_components(self, num_nodes, u, v):
        return 1

    def overlap_counts(self, node_ids, key_ids, num_nodes):
        return None

    def sparse_certificate(self, num_nodes, edges, k):
        return None
