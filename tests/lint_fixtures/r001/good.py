"""R001 non-findings: SeedSequence-derived randomness."""

import numpy as np


def seeded_generator(seed: int) -> np.ndarray:
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.random(4)


def forwarded_seed(seed) -> np.ndarray:
    # A forwarded argument counts as seeded: callers own the discipline.
    rng = np.random.default_rng(seed)
    return rng.random(4)


def spawned(seed: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(3)]
