"""R001 true positives: global / unseeded randomness."""

import random

import numpy as np
from numpy.random import default_rng


def stdlib_random_draw():
    return random.random()


def global_numpy_draw():
    return np.random.rand(4)


def os_entropy_generator():
    return default_rng()


def explicit_none_seed():
    return np.random.default_rng(None)
