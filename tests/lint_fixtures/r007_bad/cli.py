"""R007 true positive: a result-altering flag with no provenance story."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="fixture")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mystery", type=float, default=1.0)
    return parser
