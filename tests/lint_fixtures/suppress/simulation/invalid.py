"""Invalid suppressions: missing rule list and/or justification -> R000."""

import time


def bare():
    return time.time()  # repro: noqa


def no_reason():
    return time.time()  # repro: noqa[R002]
