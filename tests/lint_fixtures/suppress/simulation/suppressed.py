"""Valid suppression: the R002 finding on this line must be silenced."""

import time


def heartbeat():
    return time.time()  # repro: noqa[R002] -- heartbeat timestamp is operator telemetry only
