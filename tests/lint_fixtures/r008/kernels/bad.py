"""R008 true positives: builtin sum() float reduction in kernel code."""


def mean_degree(degrees):
    return sum(degrees) / len(degrees)


def weighted(values, weights):
    return sum(v * w for v, w in zip(values, weights))
