"""R008 non-findings: order-pinned reductions."""

import math

import numpy as np


def mean_degree(degrees):
    return float(np.sum(np.asarray(degrees, dtype=np.float64))) / len(degrees)


def weighted(values, weights):
    return math.fsum(v * w for v, w in zip(values, weights))
