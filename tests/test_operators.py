"""Tests for graph composition operators (Eq. 1 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operators import (
    decode_edges,
    encode_edges,
    intersect_edge_arrays,
    intersection,
    is_spanning_subgraph,
    union,
)
from tests.conftest import random_gnp_graph


class TestIntersection:
    def test_empty_intersection(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 2)])
        assert intersection(a, b).num_edges == 0

    def test_common_edges_survive(self):
        a = Graph(4, [(0, 1), (1, 2), (2, 3)])
        b = Graph(4, [(1, 2), (2, 3), (0, 3)])
        out = intersection(a, b)
        assert out.edge_set() == {(1, 2), (2, 3)}

    def test_node_count_mismatch_raises(self):
        with pytest.raises(GraphError):
            intersection(Graph(3), Graph(4))

    def test_set_semantics_on_random(self, rng):
        for _ in range(20):
            a = random_gnp_graph(15, 0.3, rng)
            b = random_gnp_graph(15, 0.3, rng)
            out = intersection(a, b)
            assert out.edge_set() == a.edge_set() & b.edge_set()

    def test_commutative(self, rng):
        a = random_gnp_graph(12, 0.4, rng)
        b = random_gnp_graph(12, 0.4, rng)
        assert intersection(a, b).edge_set() == intersection(b, a).edge_set()


class TestUnion:
    def test_set_semantics_on_random(self, rng):
        for _ in range(20):
            a = random_gnp_graph(15, 0.2, rng)
            b = random_gnp_graph(15, 0.2, rng)
            assert union(a, b).edge_set() == a.edge_set() | b.edge_set()

    def test_intersection_subgraph_of_union(self, rng):
        a = random_gnp_graph(10, 0.3, rng)
        b = random_gnp_graph(10, 0.3, rng)
        assert is_spanning_subgraph(intersection(a, b), union(a, b))


class TestSpanningSubgraph:
    def test_reflexive(self, rng):
        g = random_gnp_graph(10, 0.3, rng)
        assert is_spanning_subgraph(g, g)

    def test_intersection_is_subgraph_of_both(self, rng):
        a = random_gnp_graph(10, 0.4, rng)
        b = random_gnp_graph(10, 0.4, rng)
        inter = intersection(a, b)
        assert is_spanning_subgraph(inter, a)
        assert is_spanning_subgraph(inter, b)

    def test_extra_edge_fails(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(0, 1)])
        assert not is_spanning_subgraph(a, b)
        assert is_spanning_subgraph(b, a)


class TestEncoding:
    @given(
        st.integers(2, 1000),
        st.lists(st.tuples(st.integers(0, 999), st.integers(0, 999)), max_size=30),
    )
    @settings(max_examples=80)
    def test_roundtrip(self, n, pairs):
        pairs = [(u % n, v % n) for u, v in pairs if u % n != v % n]
        if not pairs:
            return
        arr = np.array([(min(u, v), max(u, v)) for u, v in pairs], dtype=np.int64)
        keys = encode_edges(n, arr)
        back = decode_edges(n, keys)
        assert np.array_equal(back, arr)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            encode_edges(5, np.array([[2, 2]]))

    def test_orientation_canonicalized(self):
        n = 10
        a = encode_edges(n, np.array([[3, 7]]))
        b = encode_edges(n, np.array([[7, 3]]))
        assert np.array_equal(a, b)

    def test_intersect_edge_arrays_matches_graph_op(self, rng):
        n = 20
        a = random_gnp_graph(n, 0.3, rng)
        b = random_gnp_graph(n, 0.3, rng)
        arr = intersect_edge_arrays(n, a.to_edge_array(), b.to_edge_array())
        got = {tuple(map(int, row)) for row in arr}
        assert got == a.edge_set() & b.edge_set()

    def test_empty_arrays(self):
        empty = np.empty((0, 2), dtype=np.int64)
        out = intersect_edge_arrays(5, empty, empty)
        assert out.shape == (0, 2)
