"""Tests for core scaling transforms, Theorem 1 predictor, ER laws, conditions."""

from __future__ import annotations

import math

import pytest

from repro.core.conditions import check_theorem1_conditions
from repro.core.er_laws import er_alpha, er_k_connectivity_probability
from repro.core.scaling import (
    channel_prob_for_alpha,
    critical_scaling,
    deviation_alpha,
    scaling_report,
)
from repro.core.theorem1 import (
    ConnectivityRegime,
    classify_regime,
    predict_k_connectivity,
)
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability


class TestScaling:
    def test_deviation_matches_params_alpha(self, figure1_params):
        for k in (1, 2, 3):
            assert deviation_alpha(figure1_params, k) == pytest.approx(
                figure1_params.alpha(k)
            )

    def test_channel_prob_for_alpha_roundtrip(self):
        n, K, P, q = 800, 50, 10000, 2
        for alpha in (-1.0, 0.0, 2.0):
            p = channel_prob_for_alpha(n, K, P, q, alpha, k=1)
            params = QCompositeParams(
                num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=p
            )
            assert deviation_alpha(params, 1) == pytest.approx(alpha, abs=1e-9)

    def test_channel_prob_infeasible_raises(self):
        # Tiny ring: even p = 1 cannot reach alpha = 0.
        with pytest.raises(ParameterError):
            channel_prob_for_alpha(1000, 5, 10000, 2, 0.0, k=1)

    def test_critical_scaling_value(self):
        assert critical_scaling(1000, 1) == pytest.approx(math.log(1000) / 1000)

    def test_report_keys(self, figure1_params):
        rep = scaling_report(figure1_params, 2)
        assert {"edge_probability", "critical", "alpha", "mean_degree", "log_n"} == (
            set(rep)
        )


class TestTheorem1Predictor:
    def test_probability_equals_limit_at_alpha(self, figure1_params):
        pred = predict_k_connectivity(figure1_params, 1)
        assert pred.probability == pytest.approx(
            limit_probability(pred.alpha, 1)
        )

    def test_monotone_in_ring_size(self):
        probs = []
        for K in (40, 50, 60, 70):
            params = QCompositeParams(
                num_nodes=1000,
                key_ring_size=K,
                pool_size=10000,
                overlap=2,
                channel_prob=0.5,
            )
            probs.append(predict_k_connectivity(params, 1).probability)
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_higher_k_less_likely(self, figure1_params):
        p1 = predict_k_connectivity(figure1_params, 1).probability
        p3 = predict_k_connectivity(figure1_params, 3).probability
        assert p3 <= p1

    def test_regimes(self):
        n = 1000
        scale = math.log(math.log(n))
        assert classify_regime(10 * scale, n) is ConnectivityRegime.CONNECTED_WHP
        assert classify_regime(-10 * scale, n) is ConnectivityRegime.DISCONNECTED_WHP
        assert classify_regime(0.0, n) is ConnectivityRegime.CRITICAL

    def test_prediction_to_dict(self, figure1_params):
        d = predict_k_connectivity(figure1_params, 2).to_dict()
        assert d["k"] == 2
        assert "conditions" in d and "regime" in d


class TestConditions:
    def test_paper_scale_scores(self, figure1_params):
        # At the paper's own simulation scale the o(.) ratios are far
        # above 1 — the honest reading is "not yet asymptotic".
        rep = check_theorem1_conditions(figure1_params)
        assert rep.overlap_score == pytest.approx(
            (60**2 / 10000) * math.log(1000)
        )
        assert rep.ring_fraction_score == pytest.approx(
            (60 / 10000) * 1000 * math.log(1000)
        )
        assert not rep.satisfied(tolerance=1.0)
        assert rep.satisfied(tolerance=50.0)

    def test_truly_asymptotic_scale_satisfied(self):
        # A design with a huge pool drives both scores below 1.
        params = QCompositeParams(
            num_nodes=1000,
            key_ring_size=60,
            pool_size=10_000_000,
            overlap=1,
            channel_prob=1.0,
        )
        assert check_theorem1_conditions(params).satisfied()

    def test_bad_regime_flagged(self):
        # Huge rings relative to the pool violate K^2/P = o(1/ln n).
        params = QCompositeParams(
            num_nodes=1000, key_ring_size=300, pool_size=1000, overlap=1
        )
        rep = check_theorem1_conditions(params)
        assert not rep.satisfied()

    def test_to_dict(self, figure1_params):
        d = check_theorem1_conditions(figure1_params).to_dict()
        assert set(d) == {
            "ring_growth_score",
            "overlap_score",
            "ring_fraction_score",
        }


class TestErLaws:
    def test_alpha_consistency(self):
        n, p = 2000, 0.006
        assert er_alpha(n, p, 1) == pytest.approx(n * p - math.log(n))

    def test_probability_at_threshold(self):
        n = 5000
        p = math.log(n) / n
        assert er_k_connectivity_probability(n, p, 1) == pytest.approx(
            math.exp(-1.0), rel=1e-9
        )

    def test_same_limit_as_intersection_graph(self, figure1_params):
        # Theorem 1's content: at matched edge probability, G_{n,q} and
        # ER predictions coincide.
        t = figure1_params.edge_probability()
        ours = predict_k_connectivity(figure1_params, 2).probability
        er = er_k_connectivity_probability(figure1_params.num_nodes, t, 2)
        assert ours == pytest.approx(er, rel=1e-12)
