"""Shard transport: bit-identity to one-shot runs, integrity checks.

The contract under test: any shard layout — trial-axis windows,
size-axis slices, executed in-process or through a child interpreter —
folds back to values bit-identical to ``Study.run``, because work
units are seeded by absolute ``(size_index, ring_index, trial)``
addresses.  The integrity half: tampered studies, corrupted payloads,
and missing shards fail loudly with the typed service exceptions, not
silently with NaN.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ParameterError, ShardMismatchError, TransportError
from repro.service.shards import (
    SHARD_FORMAT,
    SHARD_RESULT_FORMAT,
    InProcessTransport,
    SubprocessTransport,
    execute_shard,
    fold_shard_results,
    get_transport,
    make_shards,
    run_sharded,
)
from repro.simulation.scheduler import SchedulerPolicy
from repro.study.compiler import Study
from repro.study.result import ScenarioResult
from repro.study.scenario import MetricSpec, Scenario

WORKERS = 2


def _growth_scenario(trials=6, name="growth"):
    return Scenario(
        name=name,
        num_nodes_grid=(30, 40),
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        trials=trials,
        seed=11,
        metrics=(MetricSpec("connectivity"),),
    )


@pytest.fixture(scope="module")
def study():
    return Study((_growth_scenario(),))


@pytest.fixture(scope="module")
def baseline(study):
    return study.run(workers=WORKERS)


def _assert_identical(baseline, result, study):
    for sc in study.scenarios:
        assert np.array_equal(
            baseline[sc.name].values, result[sc.name].values, equal_nan=True
        )
        assert result[sc.name].scenario == sc


class TestMakeShards:
    def test_trial_axis_windows_tile_the_range(self, study):
        shards = make_shards(study, axis="trial", shards=3)
        windows = [tuple(s["trial_window"]) for s in shards]
        assert windows[0][0] == 0 and windows[-1][1] == 6
        for (_, prev_stop), (start, _) in zip(windows, windows[1:]):
            assert start == prev_stop

    def test_size_axis_covers_every_index_once(self, study):
        shards = make_shards(study, axis="size", shards=2)
        seen = [si for s in shards for si in s["sizes"]]
        assert sorted(seen) == [0, 1]
        assert all(tuple(s["trial_window"]) == (0, 6) for s in shards)

    def test_shards_are_self_describing_json(self, study):
        shards = make_shards(study, shards=2)
        for shard in shards:
            round_tripped = json.loads(json.dumps(shard))
            assert round_tripped["format"] == SHARD_FORMAT
            assert Study.from_dict(round_tripped["study"]).scenarios

    def test_window_restricts_the_split(self, study):
        shards = make_shards(study, shards=2, window=(4, 6))
        assert [tuple(s["trial_window"]) for s in shards] == [(4, 5), (5, 6)]

    def test_rejects_protocol_scenarios(self):
        protocol = Scenario(
            name="p",
            kind="protocol",
            num_nodes=20,
            pool_size=200,
            trials=2,
            seed=1,
            protocol="coupling",
            protocol_params={"key_ring_size": 12, "q": 1},
        )
        with pytest.raises(ParameterError, match="sweep scenarios only"):
            make_shards(Study((protocol,)))

    def test_rejects_bad_axis_and_counts(self, study):
        with pytest.raises(ParameterError, match="axis"):
            make_shards(study, axis="ring")
        with pytest.raises(ParameterError, match="shards"):
            make_shards(study, shards=0)


class TestInProcessBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_trial_axis(self, study, baseline, shards):
        result = run_sharded(study, axis="trial", shards=shards, workers=WORKERS)
        _assert_identical(baseline, result, study)
        assert result.provenance["transport"] == "inprocess"
        assert result.provenance["shards"] == shards

    def test_size_axis(self, study, baseline):
        result = run_sharded(study, axis="size", shards=2, workers=WORKERS)
        _assert_identical(baseline, result, study)
        assert result.provenance["shard_axis"] == "size"

    def test_supervised_shards_stay_identical(self, study, baseline):
        transport = InProcessTransport(
            workers=WORKERS, scheduler=SchedulerPolicy(max_retries=2)
        )
        result = run_sharded(study, transport, shards=2)
        _assert_identical(baseline, result, study)
        assert result.provenance["faults"]["completed"] > 0

    def test_multi_scenario_study(self):
        multi = Study(
            (_growth_scenario(name="a"), _growth_scenario(name="b"))
        )
        base = multi.run(workers=WORKERS)
        result = run_sharded(multi, shards=2, workers=WORKERS)
        _assert_identical(base, result, multi)

    def test_provenance_records_hashes_and_units(self, study):
        result = run_sharded(study, shards=2, workers=WORKERS)
        hashes = result.provenance["scenario_hashes"]
        assert hashes == {sc.name: sc.content_hash() for sc in study.scenarios}
        assert result.provenance["units"] > 0


@pytest.mark.slow
class TestSubprocessTransport:
    def test_trial_axis_bit_identical(self, study, baseline):
        result = run_sharded(
            study, SubprocessTransport(workers=WORKERS), shards=2
        )
        _assert_identical(baseline, result, study)
        assert result.provenance["transport"] == "subprocess"

    def test_size_axis_bit_identical(self, study, baseline):
        result = run_sharded(
            study, SubprocessTransport(workers=WORKERS), axis="size", shards=2
        )
        _assert_identical(baseline, result, study)

    def test_worker_failure_is_a_transport_error(self, study):
        shard = make_shards(study, shards=1)[0]
        bad = dict(shard, study={"scenarios": [{"name": "broken"}]})
        with pytest.raises(TransportError, match="exited with code"):
            SubprocessTransport(workers=1).run(bad)


class TestIntegrity:
    def test_tampered_study_hash_mismatch(self, study):
        shard = make_shards(study, shards=1)[0]
        reseeded = Study((dataclasses.replace(study.scenarios[0], seed=99),))
        tampered = dict(shard, study=reseeded.to_dict())
        with pytest.raises(ShardMismatchError, match="do not match"):
            execute_shard(tampered)

    def test_corrupted_payload_fails_checksum(self, study):
        shard = make_shards(study, shards=1)[0]
        payload = execute_shard(shard, workers=WORKERS)
        name = study.scenarios[0].name
        res = ScenarioResult.from_dict(payload["results"][name])
        flipped = res.values.copy()
        flipped.flat[0] += 1.0
        payload["results"][name] = dataclasses.replace(
            res, values=flipped
        ).to_dict()
        with pytest.raises(TransportError, match="checksum"):
            fold_shard_results(study, [payload])

    def test_missing_shard_is_a_coverage_error(self, study):
        shards = make_shards(study, shards=3)
        payloads = [execute_shard(s, workers=WORKERS) for s in shards[:-1]]
        with pytest.raises(TransportError, match="cover trial window"):
            fold_shard_results(study, payloads)

    def test_wrong_format_payload_rejected(self, study):
        with pytest.raises(TransportError, match=SHARD_RESULT_FORMAT):
            fold_shard_results(study, [{"format": "bogus"}])
        with pytest.raises(TransportError, match=SHARD_FORMAT):
            execute_shard({"format": "bogus"})


class TestGetTransport:
    def test_known_names(self):
        assert get_transport("inprocess").name == "inprocess"
        assert get_transport("subprocess").name == "subprocess"

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_subprocess_rejects_scheduler_object(self):
        with pytest.raises(ParameterError, match="REPRO_CHAOS"):
            get_transport("subprocess", scheduler=SchedulerPolicy())


class TestResultFoldPrimitives:
    """overlay/truncated — the fold algebra shards rely on."""

    def test_overlay_fills_nan_disjoint_cells(self, study, baseline):
        name = study.scenarios[0].name
        full = baseline[name]
        left = dataclasses.replace(full, values=full.values.copy())
        right = dataclasses.replace(full, values=full.values.copy())
        left.values[0, ...] = np.nan
        right.values[1, ...] = np.nan
        folded = left.overlay(right)
        assert np.array_equal(folded.values, full.values, equal_nan=True)

    def test_overlay_rejects_disagreeing_cells(self, study, baseline):
        from repro.exceptions import ExperimentError

        name = study.scenarios[0].name
        full = baseline[name]
        other = dataclasses.replace(full, values=full.values + 1.0)
        with pytest.raises(ExperimentError, match="disagree"):
            full.overlay(other)

    def test_truncated_slices_absolute_trials(self, study, baseline):
        name = study.scenarios[0].name
        full = baseline[name]
        cut = full.truncated(4)
        assert cut.num_trials == 4
        assert cut.scenario.trials == 4
        assert np.array_equal(cut.values, full.values[..., :4, :, :])
        assert full.truncated(full.num_trials) is full

    def test_truncated_validates_bounds(self, study, baseline):
        from repro.exceptions import ExperimentError

        full = baseline[study.scenarios[0].name]
        with pytest.raises(ExperimentError):
            full.truncated(0)
        with pytest.raises(ExperimentError):
            full.truncated(full.num_trials + 1)


class TestResultProvenanceStamps:
    def test_to_dict_embeds_hash_and_version(self, study, baseline):
        import repro

        data = baseline[study.scenarios[0].name].to_dict()
        assert data["scenario_hash"] == study.scenarios[0].content_hash()
        assert data["version"] == repro.__version__

    def test_from_dict_rejects_hash_mismatch(self, study, baseline):
        data = baseline[study.scenarios[0].name].to_dict()
        data["scenario_hash"] = "0" * 64
        with pytest.raises(ShardMismatchError, match="hash"):
            ScenarioResult.from_dict(data)

    def test_merge_mismatch_is_typed(self, study, baseline):
        full = baseline[study.scenarios[0].name]
        other = dataclasses.replace(
            full, scenario=dataclasses.replace(full.scenario, seed=99)
        )
        with pytest.raises(ShardMismatchError, match=r"fields \['seed'\] differ"):
            full.merge(other)

    def test_content_hash_ignores_trials_only(self, study):
        sc = study.scenarios[0]
        assert sc.with_trials(100).content_hash() == sc.content_hash()
        assert dataclasses.replace(sc, seed=99).content_hash() != sc.content_hash()
