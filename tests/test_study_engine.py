"""Execution engine satellites: trial-block splitting and warm pools.

Pins the ``run_batches`` under-utilization fix (columns splitting into
trial blocks when there are fewer K columns than workers), the
persistent-pool plumbing, and the ``_windowed`` scheduling fixes: no
head-of-line blocking (completion order decoupled from result order)
and no leaked futures when a batch raises.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.simulation import pool
from repro.simulation.sweep import SweepSpec, run_sweep_trials, split_trial_blocks


class TestSplitTrialBlocks:
    def test_split_boundary_pinned(self):
        # 1 column, 10 trials, 4 workers: ceil(4/1) = 4 blocks with
        # linspace boundaries 0|2|5|7|10.  This layout is part of the
        # determinism story, so pin it exactly.
        assert split_trial_blocks(1, 10, 4) == [
            (0, 0, 2),
            (0, 2, 5),
            (0, 5, 7),
            (0, 7, 10),
        ]

    def test_more_columns_than_workers_no_split(self):
        blocks = split_trial_blocks(8, 10, 4)
        assert blocks == [(c, 0, 10) for c in range(8)]

    def test_splits_capped_by_trials(self):
        # 2 trials cannot split into more than 2 blocks per column.
        blocks = split_trial_blocks(1, 2, 16)
        assert blocks == [(0, 0, 1), (0, 1, 2)]

    def test_blocks_partition_trials(self):
        for columns in (1, 2, 5):
            for trials in (1, 7, 24):
                for workers in (1, 3, 8, 20):
                    blocks = split_trial_blocks(columns, trials, workers)
                    for column in range(columns):
                        spans = [
                            (start, stop)
                            for col, start, stop in blocks
                            if col == column
                        ]
                        assert spans[0][0] == 0
                        assert spans[-1][1] == trials
                        for (_, stop_a), (start_b, _) in zip(spans, spans[1:]):
                            assert stop_a == start_b
                        assert all(start < stop for start, stop in spans)

    def test_total_columns_divisor_override(self):
        # The study compiler schedules several groups into one pool:
        # with 4 total columns and 4 workers, a 1-column group does not
        # split even though 1 < 4.
        assert split_trial_blocks(1, 10, 4, total_columns=4) == [(0, 0, 10)]

    def test_nonzero_start_restricts_to_extension_window(self):
        # Adaptive rounds split only [start, trials); boundaries stay a
        # pure function of the arguments.
        assert split_trial_blocks(1, 20, 4, start=10) == [
            (0, 10, 12),
            (0, 12, 15),
            (0, 15, 17),
            (0, 17, 20),
        ]
        # start=0 is exactly the historical layout
        assert split_trial_blocks(1, 10, 4, start=0) == split_trial_blocks(1, 10, 4)

    def test_empty_extension_yields_no_blocks(self):
        assert split_trial_blocks(3, 10, 4, start=10) == []
        assert split_trial_blocks(3, 10, 4, start=15) == []

    def test_single_trial_extension_block(self):
        assert split_trial_blocks(2, 10, 8, start=9) == [(0, 9, 10), (1, 9, 10)]

    def test_block_count_larger_than_remainder_degrades_to_single_trials(self):
        # 16 workers want 16 blocks, but only 3 trials remain: the
        # window degrades to 3 single-trial blocks, never empty ones.
        blocks = split_trial_blocks(1, 10, 16, start=7)
        assert blocks == [(0, 7, 8), (0, 8, 9), (0, 9, 10)]

    def test_negative_start_rejected(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="start"):
            split_trial_blocks(1, 10, 4, start=-1)

    def test_offset_blocks_partition_extension_window(self):
        for start in (0, 1, 5, 23, 24):
            for workers in (1, 4, 40):
                blocks = split_trial_blocks(2, 24, workers, start=start)
                if start >= 24:
                    assert blocks == []
                    continue
                for column in range(2):
                    spans = [(a, b) for c, a, b in blocks if c == column]
                    assert spans[0][0] == start
                    assert spans[-1][1] == 24
                    for (_, stop_a), (start_b, _) in zip(spans, spans[1:]):
                        assert stop_a == start_b
                    assert all(a < b for a, b in spans)

    def test_single_column_sweep_splits_and_stays_bit_exact(self):
        spec = SweepSpec(
            num_nodes=80,
            pool_size=1000,
            ring_sizes=(20,),
            curves=((2, 1.0), (2, 0.5)),
            trials=9,
            seed=13,
        )
        serial = run_sweep_trials(spec, workers=1)
        split = run_sweep_trials(spec, workers=4)
        assert np.array_equal(serial, split)


def _double(x: int) -> int:
    return 2 * x


def _exit_once(arg):
    # Kills its worker process the first time it runs (cross-process
    # flag file), breaking the pool; reruns succeed.
    flag, x = arg
    import os

    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(13)
    return 7 * x


def _sleep_then_return(item):
    index, delay = item
    time.sleep(delay)
    return index


def _raise_on_negative(x: int) -> int:
    if x < 0:
        raise ValueError(f"poison batch {x}")
    return 3 * x


class TestPersistentPool:
    def test_executor_is_reused(self):
        if not pool.persistent_pools_enabled():  # pragma: no cover
            return
        first = pool.get_executor(2)
        second = pool.get_executor(2)
        assert first is second

    def test_smaller_request_reuses_grown_pool(self):
        pool.shutdown_pools()  # isolate from pools grown by earlier tests
        big = pool.get_executor(3)
        assert pool.get_executor(2) is big  # no second resident pool
        grown = pool.get_executor(4)
        assert grown is not big

    def test_submit_batches_ordered(self):
        assert pool.submit_batches(_double, [3, 1, 2], workers=2) == [6, 2, 4]

    def test_submit_more_batches_than_window(self):
        assert pool.submit_batches(_double, list(range(9)), workers=2) == [
            2 * x for x in range(9)
        ]

    def test_disabled_pool_still_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
        assert not pool.persistent_pools_enabled()
        assert pool.submit_batches(_double, [5, 6], workers=2) == [10, 12]

    def test_shutdown_and_recreate(self):
        pool.get_executor(2)
        pool.shutdown_pools()
        again = pool.get_executor(2)
        assert pool.submit_batches(_double, [4], workers=2) == [8]
        assert pool.get_executor(2) is again


class TestWindowScheduling:
    def test_out_of_order_completion_yields_in_order_results(self):
        # Adversarial completion order: the earliest batches are the
        # slowest, so every later batch finishes first.  The old
        # implementation blocked on the *oldest* pending future; the
        # fixed window must still hand results back in submission
        # order, bit-identical to a serial map.
        batches = [(0, 0.30), (1, 0.15)] + [(i, 0.0) for i in range(2, 10)]
        results = pool.submit_batches(_sleep_then_return, batches, workers=3)
        assert results == [_sleep_then_return(b) for b in batches]
        assert results == list(range(10))

    def test_slow_head_does_not_gate_submissions(self):
        # With the window waiting on FIRST_COMPLETED, one slow batch
        # occupies one worker while the other two drain the eight fast
        # batches: total wall clock stays near the slow batch alone.
        # The old oldest-future window serialized roughly ceil(8/2)
        # windows behind the sleeper.  Generous bound to stay un-flaky.
        pool.get_executor(3)  # warm first so spawn cost is excluded
        pool.submit_batches(_sleep_then_return, [(9, 0.0)], workers=3)
        start = time.monotonic()
        batches = [(0, 0.5)] + [(i, 0.0) for i in range(1, 9)]
        results = pool.submit_batches(_sleep_then_return, batches, workers=3)
        elapsed = time.monotonic() - start
        assert results == list(range(9))
        assert elapsed < 1.5

    def test_raising_batch_propagates_and_pool_stays_usable(self):
        if not pool.persistent_pools_enabled():  # pragma: no cover
            return
        batches = [1, 2, -1] + list(range(3, 12))
        with pytest.raises(ValueError, match="poison batch"):
            pool.submit_batches(_raise_on_negative, batches, workers=2)
        # Pending futures were cancelled, not leaked: the warm pool
        # immediately serves the next caller with correct results.
        assert pool.submit_batches(_raise_on_negative, [5, 6, 7], workers=2) == [
            15, 18, 21,
        ]

    def test_ephemeral_path_routes_through_windowed(self, monkeypatch):
        # The ephemeral path used to submit everything at once with no
        # window and no cancel-on-failure; both paths must share
        # _windowed now.
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
        seen = {}
        real = pool._windowed

        def spy(executor, fn, batches, workers):
            seen["batches"], seen["workers"] = len(batches), workers
            return real(executor, fn, batches, workers)

        monkeypatch.setattr(pool, "_windowed", spy)
        assert pool.submit_batches(_double, [1, 2, 3], workers=2) == [2, 4, 6]
        assert seen == {"batches": 3, "workers": 2}

    def test_ephemeral_path_propagates_failures(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
        with pytest.raises(ValueError, match="poison batch"):
            pool.submit_batches(_raise_on_negative, [1, -1] + list(range(2, 10)), workers=2)


class TestExecutorLeases:
    def test_lease_counting(self):
        executor = pool.get_executor(2)
        assert pool.active_leases(executor) == 0
        with pool.executor_lease(executor):
            with pool.executor_lease(executor):
                assert pool.active_leases(executor) == 2
            assert pool.active_leases(executor) == 1
        assert pool.active_leases(executor) == 0

    def test_growth_with_lease_keeps_inflight_work(self):
        # Regression: growing the warm pool used to shutdown(wait=False,
        # cancel_futures=True) the old executor even with a caller's
        # futures still queued on it — those callers saw
        # CancelledError.  With a lease held, growth must retire the old
        # executor gracefully and let its futures finish.
        pool.shutdown_pools()
        small = pool.get_executor(2)
        with pool.executor_lease(small):
            futures = [
                small.submit(_sleep_then_return, (i, 0.15)) for i in range(6)
            ]
            grown = pool.get_executor(4)
            assert grown is not small
            assert [f.result(timeout=30) for f in futures] == list(range(6))
            assert not any(f.cancelled() for f in futures)
        pool.shutdown_pools()

    def test_growth_without_lease_still_cancels(self):
        # Unleased growth keeps the old fast-teardown behavior: queued
        # work is cancelled rather than left running unsupervised.
        pool.shutdown_pools()
        small = pool.get_executor(1)
        futures = [small.submit(_sleep_then_return, (i, 0.2)) for i in range(8)]
        pool.get_executor(2)
        # Cancellation is carried out by the executor's management
        # thread, so poll briefly.  The executor had one worker: at
        # most a couple of futures ran or started; the deep queue must
        # end up cancelled.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not any(f.cancelled() for f in futures):
            time.sleep(0.01)
        assert any(f.cancelled() for f in futures)
        pool.shutdown_pools()


class TestBrokenPoolRetry:
    def test_whole_batch_retry_after_worker_death(self, tmp_path):
        # A worker killed mid-run (the crash mode behind the chaos
        # harness's broken_pool strategy) breaks the executor;
        # submit_batches must discard it and retry the whole batch list
        # once on a fresh pool.
        if not pool.persistent_pools_enabled():  # pragma: no cover
            pytest.skip("whole-batch retry is the warm-pool path")
        pool.shutdown_pools()
        flag = str(tmp_path / "killed_once")
        batches = [(flag, x) for x in range(5)]
        assert pool.submit_batches(_exit_once, batches, workers=2) == [
            7 * x for x in range(5)
        ]
        pool.shutdown_pools()
