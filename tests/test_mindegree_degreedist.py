"""Tests for Lemma 8 (min degree) and Lemma 9 (degree counts) theory."""

from __future__ import annotations

import math

import pytest

from repro.core.degree_distribution import (
    degree_count_distribution,
    degree_histogram_prediction,
    expected_degree_count,
    isolated_node_lambda,
    lambda_nh,
    lambda_nh_exact,
)
from repro.core.mindegree import (
    min_degree_probability_limit,
    min_degree_probability_poisson,
)
from repro.core.scaling import channel_prob_for_alpha
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability


def params_at_alpha(alpha: float, n: int = 1000, K: int = 60, P: int = 10000, q: int = 2, k: int = 1):
    p = channel_prob_for_alpha(n, K, P, q, alpha, k)
    return QCompositeParams(
        num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=p
    )


class TestLambda:
    def test_poissonized_formula(self):
        n, t, h = 1000, 0.007, 2
        expect = n * (n * t) ** h * math.exp(-n * t) / math.factorial(h)
        assert lambda_nh(n, t, h) == pytest.approx(expect)

    def test_exact_binomial_formula(self):
        n, t, h = 50, 0.1, 3
        expect = n * math.comb(n - 1, h) * t**h * (1 - t) ** (n - 1 - h)
        assert lambda_nh_exact(n, t, h) == pytest.approx(expect)

    def test_zero_edge_probability(self):
        assert lambda_nh(100, 0.0, 0) == 100.0
        assert lambda_nh(100, 0.0, 2) == 0.0
        assert lambda_nh_exact(100, 0.0, 0) == 100.0

    def test_edge_probability_one(self):
        assert lambda_nh_exact(10, 1.0, 9) == 10.0
        assert lambda_nh_exact(10, 1.0, 3) == 0.0

    def test_h_beyond_n_is_zero(self):
        assert lambda_nh_exact(5, 0.5, 7) == 0.0

    def test_poissonized_approx_exact_at_scale(self):
        # At n = 10^4 and t ~ ln n / n the two forms nearly agree.
        n = 10000
        t = math.log(n) / n
        for h in (0, 1, 2):
            assert lambda_nh(n, t, h) == pytest.approx(
                lambda_nh_exact(n, t, h), rel=0.02
            )

    def test_exact_sums_to_n(self):
        # Summing expected counts over all degrees gives n exactly.
        n, t = 30, 0.2
        total = sum(lambda_nh_exact(n, t, h) for h in range(n))
        assert total == pytest.approx(n, rel=1e-9)


class TestExpectedCounts:
    def test_expected_degree_count_uses_params(self, figure1_params):
        t = figure1_params.edge_probability()
        assert expected_degree_count(figure1_params, 1) == pytest.approx(
            lambda_nh(1000, t, 1)
        )

    def test_isolated_lambda(self, figure1_params):
        assert isolated_node_lambda(figure1_params) == pytest.approx(
            expected_degree_count(figure1_params, 0)
        )

    def test_distribution_normalized(self, figure1_params):
        pmf = degree_count_distribution(figure1_params, 0, 200)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)

    def test_histogram_prediction_keys(self, figure1_params):
        pred = degree_histogram_prediction(figure1_params, [0, 1, 2])
        assert set(pred) == {0, 1, 2}
        assert all(v >= 0 for v in pred.values())


class TestMinDegreeLaws:
    def test_limit_matches_formula(self):
        params = params_at_alpha(1.0, k=2)
        assert min_degree_probability_limit(params, 2) == pytest.approx(
            limit_probability(1.0, 2), abs=1e-9
        )

    def test_poisson_refinement_in_unit_interval(self):
        for alpha in (-2.0, 0.0, 3.0):
            params = params_at_alpha(alpha)
            v = min_degree_probability_poisson(params, 1)
            assert 0.0 <= v <= 1.0

    def test_poisson_converges_to_limit(self):
        # At fixed alpha, the refinement approaches the limit as n grows.
        gaps = []
        for n in (200, 2000, 20000):
            K = 60
            p = channel_prob_for_alpha(n, K, 10000, 2, 0.5, 1)
            params = QCompositeParams(
                num_nodes=n, key_ring_size=K, pool_size=10000, overlap=2,
                channel_prob=p,
            )
            gaps.append(
                abs(
                    min_degree_probability_poisson(params, 1)
                    - min_degree_probability_limit(params, 1)
                )
            )
        assert gaps[0] > gaps[-1]
        assert gaps[-1] < 0.01

    def test_poisson_monotone_in_alpha(self):
        vals = [
            min_degree_probability_poisson(params_at_alpha(a), 1)
            for a in (-2.0, 0.0, 2.0, 4.0)
        ]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_higher_k_smaller_probability(self):
        params = params_at_alpha(1.0)
        v1 = min_degree_probability_poisson(params, 1)
        v3 = min_degree_probability_poisson(params, 3)
        assert v3 < v1
