"""Scenario/Study API: JSON round-trip, validation, protocol scenarios.

Covers the satellite guarantees of the declarative redesign:

* ``Scenario -> to_json -> from_json -> run`` equals running the
  directly constructed scenario (bit-exact);
* malformed configs are rejected with clear ``ParameterError`` /
  ``ExperimentError`` messages;
* deployment grouping: scenarios sharing a family run on shared
  deployments (coupled estimates), distinct families do not.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.study import MetricSpec, Scenario, Study, render_study_result, run_scenario


def small_scenario(**overrides) -> Scenario:
    base = dict(
        name="small",
        num_nodes=100,
        pool_size=1500,
        ring_sizes=(25, 32),
        curves=((2, 1.0), (2, 0.5)),
        metrics=(MetricSpec("connectivity"), MetricSpec("degree_count", h=0)),
        trials=5,
        seed=11,
    )
    base.update(overrides)
    return Scenario(**base)


class TestJsonRoundTrip:
    def test_scenario_round_trip_equality(self):
        scenario = small_scenario()
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_metricspec_round_trip(self):
        for spec in (
            MetricSpec("connectivity"),
            MetricSpec("k_connectivity", k=2),
            MetricSpec("degree_count", h=3),
            MetricSpec("attack_compromised", captured=7),
        ):
            assert MetricSpec.from_dict(spec.to_dict()) == spec

    def test_round_tripped_scenario_runs_identically(self):
        scenario = small_scenario()
        direct = run_scenario(scenario, workers=1)
        tripped = run_scenario(Scenario.from_json(scenario.to_json()), workers=1)
        assert np.array_equal(direct.values, tripped.values)

    def test_study_round_trip(self):
        study = Study((small_scenario(), small_scenario(name="other", seed=12)))
        assert Study.from_json(study.to_json()) == study

    def test_protocol_scenario_round_trip(self):
        scenario = Scenario(
            name="coupled",
            kind="protocol",
            protocol="coupling",
            protocol_params={"key_ring_size": 40, "q": 2},
            num_nodes=60,
            pool_size=1000,
            trials=4,
            seed=5,
        )
        assert Scenario.from_json(scenario.to_json()) == scenario
        result = run_scenario(scenario, workers=1)
        assert result.values.shape == (1, 4, 1, 2)
        assert tuple(result.metric_labels) == ("success", "subset_ok")

    def test_study_accepts_bare_list_and_single_object(self):
        data = small_scenario().to_dict()
        assert Study.from_dict(data).scenarios[0].name == "small"
        assert Study.from_dict([data]).scenarios[0].name == "small"

    def test_study_result_round_trip(self):
        from repro.study import StudyResult

        result = Study((small_scenario(),)).run(workers=1)
        tripped = StudyResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert np.array_equal(tripped["small"].values, result["small"].values)
        assert tripped["small"].scenario == small_scenario()


class TestValidation:
    def test_params_dict_round_trip(self):
        from repro.params import QCompositeParams

        params = QCompositeParams(
            num_nodes=50, key_ring_size=20, pool_size=500, overlap=2,
            channel_prob=0.7,
        )
        assert QCompositeParams.from_dict(params.to_dict()) == params
        with pytest.raises(ParameterError, match="unknown parameter fields"):
            QCompositeParams.from_dict({**params.to_dict(), "bogus": 1})

    def test_unknown_metric_kind(self):
        with pytest.raises(ParameterError, match="unknown metric kind"):
            MetricSpec("frobnication")

    def test_unread_metric_parameter_rejected(self):
        with pytest.raises(ParameterError, match="does not read 'captured'"):
            MetricSpec("connectivity", captured=50)
        with pytest.raises(ParameterError, match="does not read 'h'"):
            MetricSpec("k_connectivity", k=2, h=1)

    def test_study_run_clamps_nonpositive_workers(self):
        result = Study((small_scenario(),)).run(workers=0)
        assert result.provenance["workers"] == 1
        assert result["small"].values.shape == (2, 5, 2, 2)

    def test_unknown_scenario_field(self):
        with pytest.raises(ParameterError, match="unknown scenario fields"):
            Scenario.from_dict({"name": "x", "num_nodes": 10, "pool_size": 100,
                                "trials": 1, "bogus": 3})

    def test_missing_required_fields(self):
        with pytest.raises(ParameterError, match="missing required fields"):
            Scenario.from_dict({"name": "x"})

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError, match="ring_sizes"):
            small_scenario(ring_sizes=())
        with pytest.raises(ParameterError, match="curves"):
            small_scenario(curves=())
        with pytest.raises(ParameterError, match="metrics"):
            small_scenario(metrics=())

    def test_invalid_key_parameters(self):
        with pytest.raises(ParameterError):
            small_scenario(ring_sizes=(2,), curves=((3, 1.0),))

    def test_bad_channel_and_kind(self):
        with pytest.raises(ParameterError, match="unknown channel"):
            small_scenario(channel="carrier-pigeon")
        with pytest.raises(ParameterError, match="unknown scenario kind"):
            small_scenario(kind="vibes")

    def test_disk_marginal_cap(self):
        with pytest.raises(ParameterError, match="pi/4"):
            small_scenario(channel="disk", curves=((2, 0.9),))

    def test_capture_needs_survivors(self):
        with pytest.raises(ParameterError, match="survive"):
            small_scenario(
                metrics=(MetricSpec("resilient_connectivity", captured=99),)
            )

    def test_unknown_protocol(self):
        with pytest.raises(ExperimentError, match="unknown protocol"):
            Scenario(
                name="x", kind="protocol", protocol="nope",
                num_nodes=10, pool_size=100, trials=1,
            )

    def test_duplicate_scenario_names(self):
        with pytest.raises(ParameterError, match="duplicate scenario names"):
            Study((small_scenario(), small_scenario()))

    def test_non_json_text(self):
        with pytest.raises(ParameterError, match="does not parse"):
            Scenario.from_json("{not json")

    def test_duplicate_metrics(self):
        with pytest.raises(ParameterError, match="duplicate metrics"):
            small_scenario(
                metrics=(MetricSpec("connectivity"), MetricSpec("connectivity"))
            )


class TestGroupingAndResults:
    def test_shared_family_groups_once(self):
        a = small_scenario(name="a")
        b = small_scenario(name="b", curves=((3, 1.0),),
                           metrics=(MetricSpec("connectivity"),))
        study = Study((a, b))
        plans = study.compile()
        assert len(plans) == 1
        assert [s.name for s in plans[0].scenarios] == ["a", "b"]
        assert plans[0].q_min == 2

    def test_distinct_families_do_not_group(self):
        a = small_scenario(name="a")
        b = small_scenario(name="b", seed=999)
        assert len(Study((a, b)).compile()) == 2

    def test_grouped_curves_are_coupled(self):
        # Same (q, p) curve declared in two grouped scenarios must see
        # identical deployments, hence identical per-trial outcomes.
        a = small_scenario(name="a", curves=((2, 0.5),),
                           metrics=(MetricSpec("connectivity"),))
        b = small_scenario(name="b", curves=((2, 0.5),),
                           metrics=(MetricSpec("connectivity"),))
        result = Study((a, b)).run(workers=1)
        assert np.array_equal(result["a"].values, result["b"].values)

    def test_result_lookup_errors(self):
        result = Study((small_scenario(),)).run(workers=1)
        with pytest.raises(ExperimentError, match="no scenario"):
            result["missing"]
        with pytest.raises(ExperimentError, match="not measured"):
            result["small"].bernoulli("k_connectivity[k=2]", (2, 1.0), 25)
        with pytest.raises(ExperimentError, match="not an indicator"):
            # degree counts exceed {0, 1} at this scale
            result["small"].bernoulli("degree_count[h=0]", (2, 0.5), 25)

    def test_render_smoke(self):
        result = Study((small_scenario(),)).run(workers=1)
        text = render_study_result(result)
        assert "scenario 'small'" in text
        assert "connectivity" in text
