"""Heterogeneous (class-mix) scenarios: the Eletreby–Yağan axis.

The load-bearing contracts: a :class:`ClassMix` scenario round-trips
through JSON and hashes stably; homogeneous scenarios keep their
historical deployment keys byte-identical; class-mix sweeps stay
deterministic and bit-identical across every execution substrate
(one-shot, adaptive extension, trial/size sharding, content-addressed
cache); and the two registry experiments reproduce the heterogeneous
zero-one / min-degree laws with the legacy per-point sampler agreeing
within confidence intervals.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments.het_mindegree import run_het_mindegree
from repro.experiments.het_zero_one import render_het_zero_one, run_het_zero_one
from repro.experiments.registry import get_experiment
from repro.service.cache import ResultCache, run_cached
from repro.service.shards import run_sharded
from repro.study import (
    AdaptivePolicy,
    ClassMix,
    MetricSpec,
    Scenario,
    Study,
    run_adaptive_study,
)
from repro.study.metrics import DeploymentEvaluator, sample_deployment

WORKERS = 2

MIX = ClassMix(mu=(0.5, 0.5), channel_probs=((0.9, 0.6), (0.6, 0.4)))


def het_scenario(trials=6, name="het", **overrides):
    kwargs = dict(
        name=name,
        num_nodes_grid=(30, 40),
        pool_size=300,
        ring_sizes=((10, 16),),
        curves=((1, 0.5), (1, 1.0)),
        metrics=(MetricSpec("connectivity"),),
        trials=trials,
        seed=11,
        classes=MIX,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def hom_scenario(trials=6, name="hom", **overrides):
    kwargs = dict(
        name=name,
        num_nodes_grid=(30, 40),
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        metrics=(MetricSpec("connectivity"),),
        trials=trials,
        seed=11,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestClassMix:
    def test_mu_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            ClassMix(mu=(0.5, 0.4), channel_probs=((0.5, 0.5), (0.5, 0.5)))

    def test_mu_entries_positive(self):
        with pytest.raises(ParameterError):
            ClassMix(mu=(1.0, 0.0), channel_probs=((0.5, 0.5), (0.5, 0.5)))

    def test_matrix_must_be_square(self):
        with pytest.raises(ParameterError):
            ClassMix(mu=(0.5, 0.5), channel_probs=((0.5, 0.5),))

    def test_matrix_must_be_symmetric(self):
        with pytest.raises(ParameterError):
            ClassMix(mu=(0.5, 0.5), channel_probs=((0.9, 0.3), (0.6, 0.4)))

    def test_round_trip(self):
        assert ClassMix.from_dict(MIX.to_dict()) == MIX

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ParameterError):
            ClassMix.from_dict({"mu": [0.5, 0.5]})  # no matrix


class TestScenarioClasses:
    def test_json_round_trip_and_hash(self):
        scenario = het_scenario()
        payload = json.loads(json.dumps(scenario.to_dict()))
        rebuilt = Scenario.from_dict(payload)
        assert rebuilt == scenario
        assert rebuilt.content_hash() == scenario.content_hash()

    def test_hash_covers_the_mix(self):
        base = het_scenario()
        other_mu = het_scenario(
            classes=ClassMix(mu=(0.25, 0.75), channel_probs=MIX.channel_probs)
        )
        other_matrix = het_scenario(
            classes=ClassMix(mu=MIX.mu, channel_probs=((0.8, 0.6), (0.6, 0.4)))
        )
        hashes = {s.content_hash() for s in (base, other_mu, other_matrix)}
        assert len(hashes) == 3

    def test_homogeneous_deployment_key_has_no_classes_entry(self):
        # The historical grouping key must stay byte-identical so
        # pre-existing caches and shared-deployment groups survive.
        key = hom_scenario().deployment_key()
        assert "classes" not in str(key)

    def test_class_scenarios_never_share_with_homogeneous(self):
        het = het_scenario().deployment_key()
        hom = hom_scenario().deployment_key()
        assert het != hom
        assert het[-1][0] == "classes"

    def test_ring_entry_must_match_class_count(self):
        with pytest.raises(ParameterError):
            het_scenario(ring_sizes=((10, 16, 20),))

    def test_scalar_rings_rejected_with_classes(self):
        with pytest.raises(ParameterError):
            het_scenario(ring_sizes=(12, 15))

    def test_channel_scale_above_one_allowed_under_matrix_peak(self):
        # With classes, a curve's p multiplies the channel matrix; it
        # may exceed 1 as long as every p * alpha_ij stays a probability
        # (peak here is 0.9, so 1.1 * 0.9 = 0.99 is fine).
        scenario = het_scenario(curves=((1, 0.5), (1, 1.1)))
        assert scenario.curves_at(0)[-1] == (1, 1.1)

    def test_channel_scale_past_matrix_peak_rejected(self):
        with pytest.raises(ParameterError):
            het_scenario(curves=((1, 1.2),))  # 1.2 * 0.9 > 1

    def test_homogeneous_p_above_one_still_rejected(self):
        with pytest.raises(ParameterError):
            hom_scenario(curves=((2, 1.1),))

    def test_disk_channel_rejected(self):
        with pytest.raises(ParameterError):
            het_scenario(channel="disk")

    def test_capture_metric_rejected(self):
        with pytest.raises(ParameterError):
            het_scenario(
                metrics=(MetricSpec("attack_compromised", captured=5),)
            )


class TestHetDeploymentCoupling:
    """Class-mix worlds: per-pair channels and nested thinning."""

    def _deployment(self):
        rng = np.random.default_rng(3)
        return sample_deployment(50, 200, (8, 14), 1, rng, class_mix=MIX)

    def test_pair_alpha_reads_the_matrix_at_labels(self):
        dep = self._deployment()
        u = dep.candidates // dep.num_nodes
        v = dep.candidates % dep.num_nodes
        matrix = np.asarray(MIX.channel_probs)
        assert np.array_equal(dep.pair_alpha, matrix[dep.labels[u], dep.labels[v]])

    def test_ring_sizes_follow_labels(self):
        dep = self._deployment()
        sizes = np.array([r.size for r in dep.rings])
        assert np.array_equal(sizes, np.where(dep.labels == 0, 8, 14))

    def test_curve_masks_are_nested_in_p(self):
        # Nested thinning: the p=0.5 edge set must be a subset of the
        # p=1.0 edge set on the same sampled world — the property that
        # lets one deployment serve the whole curve grid.
        ev = DeploymentEvaluator(self._deployment())
        half = ev.curve_mask("onoff", 1, 0.5)
        full = ev.curve_mask("onoff", 1, 1.0)
        assert not (half & ~full).any()
        assert half.sum() < full.sum()

    def test_full_scale_mask_is_uniform_under_alpha(self):
        dep = self._deployment()
        ev = DeploymentEvaluator(dep)
        overlap_ok = dep.counts >= 1
        expected = overlap_ok & (dep.uniforms < dep.pair_alpha)
        assert np.array_equal(ev.curve_mask("onoff", 1, 1.0), expected)


class TestHetDeterminism:
    def test_worker_invariance(self):
        study = Study((het_scenario(),))
        one = study.run(workers=1)["het"]
        two = study.run(workers=WORKERS)["het"]
        assert np.array_equal(one.values, two.values)

    def test_repeat_runs_identical(self):
        study = Study((het_scenario(),))
        a = study.run(workers=WORKERS)["het"]
        b = study.run(workers=WORKERS)["het"]
        assert np.array_equal(a.values, b.values)


class TestHetBitIdentityAcrossInfra:
    """One class-mix scenario, four substrates, one value tensor."""

    def test_adaptive_equals_one_shot(self):
        # An unreachable CI target forces every cell to max_trials, so
        # the adaptive tensor must equal a one-shot run at that count.
        scenario = het_scenario(trials=5)
        policy = AdaptivePolicy(ci_target=1e-6, max_trials=15, block_trials=5)
        adaptive = run_adaptive_study(
            Study((scenario,)), policy, workers=WORKERS
        )["het"]
        one_shot = Study(
            (dataclasses.replace(scenario, trials=15),)
        ).run(workers=WORKERS)["het"]
        assert adaptive.values.shape == one_shot.values.shape
        assert np.array_equal(adaptive.values, one_shot.values)

    @pytest.mark.parametrize("axis", ["trial", "size"])
    def test_sharded_equals_one_shot(self, axis):
        study = Study((het_scenario(),))
        baseline = study.run(workers=WORKERS)["het"]
        sharded = run_sharded(study, axis=axis, shards=2, workers=WORKERS)["het"]
        assert np.array_equal(baseline.values, sharded.values)

    def test_cache_dispositions_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        study = Study((het_scenario(trials=6),))
        baseline = study.run(workers=WORKERS)["het"]

        cold = run_cached(study, cache, workers=WORKERS)
        assert cold.provenance["cache"]["disposition"] == "miss"
        assert np.array_equal(cold["het"].values, baseline.values)

        warm = run_cached(study, cache, workers=WORKERS)
        assert warm.provenance["cache"]["disposition"] == "hit"
        assert np.array_equal(warm["het"].values, baseline.values)

        grown = Study((het_scenario(trials=9),))
        grown_baseline = grown.run(workers=WORKERS)["het"]
        extended = run_cached(grown, cache, workers=WORKERS)
        assert extended.provenance["cache"]["disposition"] == "extension"
        assert np.array_equal(extended["het"].values, grown_baseline.values)


class TestHetExperiments:
    def test_registered(self):
        for name in ("het_zero_one", "het_mindegree"):
            spec = get_experiment(name)
            assert spec.build_study is not None
            assert "Eletreby" in spec.paper_anchor

    def test_zero_one_monotone_under_common_random_numbers(self):
        # Both offsets ride the same sampled worlds via nested
        # thinning, so the empirical curve is monotone in α by
        # construction, not just in expectation.
        result = run_het_zero_one(
            trials=30,
            num_nodes_grid=(120,),
            alpha_offsets=(-3.0, 3.0),
            workers=WORKERS,
        )
        low, high = result.points
        assert low.point["scale"] < high.point["scale"]
        assert low.estimate.estimate <= high.estimate.estimate
        assert low.prediction < high.prediction
        assert "het limit" in render_het_zero_one(result)

    @pytest.mark.slow
    def test_zero_one_legacy_backend_agrees(self):
        kwargs = dict(
            trials=150,
            num_nodes_grid=(120,),
            alpha_offsets=(-3.0, 3.0),
            workers=WORKERS,
        )
        study = run_het_zero_one(backend="study", **kwargs)
        legacy = run_het_zero_one(backend="legacy", **kwargs)
        for s_pt, l_pt in zip(study.points, legacy.points):
            assert s_pt.point == l_pt.point
            s, l = s_pt.estimate, l_pt.estimate
            assert s.ci_low <= l.ci_high and l.ci_low <= s.ci_high, s_pt.point

    @pytest.mark.slow
    def test_mindegree_legacy_backend_agrees(self):
        kwargs = dict(
            trials=150,
            ks=(2,),
            alphas=(0.5,),
            num_nodes=120,
            workers=WORKERS,
        )
        study = run_het_mindegree(backend="study", **kwargs)
        legacy = run_het_mindegree(backend="legacy", **kwargs)
        (s_pt,), (l_pt,) = study.points, legacy.points
        s, l = s_pt.estimate, l_pt.estimate
        assert s.ci_low <= l.ci_high and l.ci_low <= s.ci_high
        # Min-degree dominates k-connectivity pointwise under CRN.
        assert s_pt.point["kconn_estimate"] <= s.estimate
        assert 0.0 <= s_pt.point["agreement"] <= 1.0
