"""Tests for the Lemma 5/6 coupling parameter maps."""

from __future__ import annotations

import math

import pytest
from scipy.stats import binom

from repro.exceptions import ParameterError
from repro.probability.couplings import (
    binomial_key_probability,
    binomial_ring_tail_probability,
    coupled_er_probability,
    coupled_er_probability_full,
    coupling_report,
    coupling_success_probability,
)


class TestBinomialKeyProbability:
    def test_eq66_value(self):
        n, K, P = 1000, 80, 10000
        expect = (K / P) * (1 - math.sqrt(3 * math.log(n) / K))
        assert binomial_key_probability(n, K, P) == pytest.approx(expect)

    def test_below_mean_ratio(self):
        # x_n is deliberately below K/P so binomial rings are smaller.
        n, K, P = 1000, 80, 10000
        assert binomial_key_probability(n, K, P) < K / P

    def test_small_ring_rejected(self):
        # K <= 3 ln n makes Eq. (66) undefined.
        with pytest.raises(ParameterError):
            binomial_key_probability(1000, 20, 10000)

    def test_larger_K_gives_larger_x(self):
        n, P = 1000, 10000
        xs = [binomial_key_probability(n, K, P) for K in (40, 60, 80, 120)]
        assert all(a < b for a, b in zip(xs, xs[1:]))


class TestCoupledErProbability:
    def test_eq72_leading_term(self):
        x, P, q = 0.006, 10000, 2
        assert coupled_er_probability(x, P, q) == pytest.approx(
            (P * x * x) ** 2 / 2.0
        )

    def test_full_chain_below_true_t(self):
        # z = y p must sit below t = s p (the coupling gives away edges).
        from repro.probability.hypergeometric import overlap_survival

        n, K, P, q, p = 1000, 80, 10000, 2, 0.5
        z = coupled_er_probability_full(n, K, P, q, p)
        t = overlap_survival(K, P, q) * p
        assert 0 < z < t


class TestRingTail:
    def test_matches_scipy(self):
        P, x, K = 10000, 0.006, 80
        assert binomial_ring_tail_probability(P, x, K) == pytest.approx(
            float(binom.sf(K, P, x)), rel=1e-8
        )

    def test_zero_x(self):
        assert binomial_ring_tail_probability(100, 0.0, 5) == 0.0

    def test_one_x(self):
        assert binomial_ring_tail_probability(100, 1.0, 5) == 1.0
        assert binomial_ring_tail_probability(100, 1.0, 100) == 0.0

    def test_dense_branch_matches_scipy(self):
        # K beyond half the pool exercises the direct tail branch.
        P, x, K = 60, 0.9, 55
        assert binomial_ring_tail_probability(P, x, K) == pytest.approx(
            float(binom.sf(K, P, x)), rel=1e-8
        )


class TestCouplingSuccess:
    def test_increases_toward_one_in_n(self):
        # Larger n raises per-node failures but the Eq. 66 margin grows;
        # with fixed (K, P) success probability should stay near 1 and
        # the analytic formula must stay within [0, 1].
        for n in (100, 300, 1000):
            val = coupling_success_probability(n, 80, 10000)
            assert 0.0 <= val <= 1.0

    def test_paper_scale_close_to_one(self):
        assert coupling_success_probability(1000, 80, 10000) > 0.99

    def test_report_consistency(self):
        rep = coupling_report(1000, 80, 10000, 2, 0.5)
        assert rep["z"] == pytest.approx(rep["y"] * 0.5)
        assert 0 <= rep["single_node_failure"] <= 1
        assert rep["coupling_success"] == pytest.approx(
            coupling_success_probability(1000, 80, 10000)
        )
