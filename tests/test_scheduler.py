"""Per-unit supervisor: retries, timeouts, speculation, degradation."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.exceptions import DeadUnitError, ExperimentError, ParameterError
from repro.simulation.faults import ChaosSpec, FaultStrategy
from repro.simulation.scheduler import (
    FaultReport,
    SchedulerPolicy,
    combine_fault_reports,
    payload_checksum,
    resolve_scheduler_policy,
    run_units,
)


def _square(x):
    return np.array([x * x], dtype=np.float64)


def _fail_on_three(x):
    if x == 3:
        raise ValueError("unit three is cursed")
    return np.array([x], dtype=np.float64)


def _sleep_for(arg):
    x, delay = arg
    time.sleep(delay)
    return np.array([x], dtype=np.float64)


def _sleep_once(arg):
    # Sleeps only on its first execution (cross-process flag file), so a
    # speculative duplicate returns promptly while the original drags.
    flag, x, delay = arg
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        time.sleep(delay)
    return np.array([x], dtype=np.float64)


class TestSchedulerPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"max_retries": 1.5},
            {"unit_timeout": 0.0},
            {"speculate_after": -1.0},
            {"backoff_base": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            SchedulerPolicy(**kwargs)

    def test_to_dict_carries_chaos(self):
        spec = ChaosSpec(seed=3, strategies=(FaultStrategy(kind="crash", probability=0.5),))
        policy = SchedulerPolicy(max_retries=2, chaos=spec)
        data = policy.to_dict()
        assert data["max_retries"] == 2
        assert ChaosSpec.from_dict(data["chaos"]) == spec

    def test_resolve_prefers_explicit_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"seed": 1, "strategies": []}')
        explicit = SchedulerPolicy(max_retries=7)
        assert resolve_scheduler_policy(explicit) is explicit

    def test_resolve_env_implies_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"seed": 1, "strategies": []}')
        resolved = resolve_scheduler_policy(None)
        assert resolved is not None and resolved.chaos == ChaosSpec(seed=1)
        monkeypatch.delenv("REPRO_CHAOS")
        assert resolve_scheduler_policy(None) is None


class TestPayloadChecksum:
    def test_array_checksum_is_content_addressed(self):
        a = np.arange(6.0).reshape(2, 3)
        assert payload_checksum(a) == payload_checksum(a.copy())
        assert payload_checksum(a) != payload_checksum(a.T)
        assert payload_checksum(a) != payload_checksum(a.astype(np.float32))

    def test_nan_bearing_arrays_checksum_stably(self):
        a = np.array([1.0, np.nan, 3.0])
        assert payload_checksum(a) == payload_checksum(a.copy())


class TestRunUnits:
    def test_empty(self):
        results, report = run_units(_square, [], workers=2)
        assert results == [] and report.units == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_happy_path_matches_serial_map(self, workers):
        results, report = run_units(_square, list(range(7)), workers=workers)
        for x, value in enumerate(results):
            assert np.array_equal(value, _square(x))
        assert report.completed == 7 and not report.faulted

    @pytest.mark.parametrize("workers", [1, 2])
    def test_persistent_real_error_quarantines_unit(self, workers):
        results, report = run_units(
            _fail_on_three,
            list(range(5)),
            workers=workers,
            policy=SchedulerPolicy(max_retries=2, backoff_base=0.01),
        )
        assert results[3] is None
        for x in (0, 1, 2, 4):
            assert np.array_equal(results[x], np.array([float(x)]))
        assert report.errors == 3  # initial try + 2 retries
        assert [d["unit_index"] for d in report.dead_units] == [3]
        assert "cursed" in report.dead_units[0]["last_error"]

    def test_allow_partial_false_raises(self):
        with pytest.raises(DeadUnitError, match=r"units \[3\]"):
            run_units(
                _fail_on_three,
                list(range(5)),
                workers=2,
                policy=SchedulerPolicy(
                    max_retries=1, backoff_base=0.01, allow_partial=False
                ),
            )

    def test_inline_and_pool_paths_agree_under_chaos(self):
        spec = ChaosSpec(
            seed=7,
            strategies=(FaultStrategy(kind="crash", probability=0.6, max_attempt=2),),
        )
        policy = SchedulerPolicy(max_retries=4, backoff_base=0.01, chaos=spec)
        pooled, pooled_report = run_units(_square, list(range(6)), workers=2, policy=policy)
        inline, inline_report = run_units(_square, list(range(6)), workers=1, policy=policy)
        for a, b in zip(pooled, inline):
            assert np.array_equal(a, b)
        # Chaos decisions key on (unit, attempt), not on worker count.
        assert pooled_report.crashes == inline_report.crashes
        assert pooled_report.retries == inline_report.retries

    def test_unit_timeout_quarantines_hung_unit(self):
        units = [(0, 0.0), (1, 5.0), (2, 0.0)]
        start = time.monotonic()
        results, report = run_units(
            _sleep_for,
            units,
            workers=2,
            policy=SchedulerPolicy(max_retries=1, unit_timeout=0.2, backoff_base=0.01),
        )
        elapsed = time.monotonic() - start
        assert results[1] is None
        assert np.array_equal(results[0], np.array([0.0]))
        assert np.array_equal(results[2], np.array([2.0]))
        assert report.timeouts == 2  # initial try + its one retry
        assert [d["unit_index"] for d in report.dead_units] == [1]
        assert elapsed < 4.0  # quarantined long before the 5s sleep ends

    def test_speculation_dedups_bit_identical_results(self, tmp_path):
        flag = str(tmp_path / "slept_once")
        units = [
            (flag, 0, 0.6),  # straggles only on its first execution
            (str(tmp_path / "unused"), 1, 0.0),
        ]
        # A second deliberately slow unit keeps the supervisor loop
        # alive long enough to observe the straggler's late original.
        units.append((str(tmp_path / "unused2"), 2, 0.0))
        results, report = run_units(
            _sleep_once,
            units,
            workers=3,
            policy=SchedulerPolicy(speculate_after=0.1, backoff_base=0.01),
        )
        for index, (_, x, _) in enumerate(units):
            assert np.array_equal(results[index], np.array([float(x)]))
        assert report.speculative >= 1
        assert report.completed == 3

    def test_chaos_broken_pool_recovers(self):
        spec = ChaosSpec(
            seed=3,
            strategies=(
                FaultStrategy(kind="broken_pool", probability=0.9, max_attempt=1),
            ),
        )
        results, report = run_units(
            _square,
            list(range(4)),
            workers=2,
            policy=SchedulerPolicy(max_retries=4, backoff_base=0.01, chaos=spec),
        )
        for x, value in enumerate(results):
            assert np.array_equal(value, _square(x))
        assert report.pool_breaks >= 1
        assert report.completed == 4


class TestFaultReport:
    def test_summary_mentions_only_nonzero_counters(self):
        report = FaultReport(units=3, completed=3, retries=2)
        text = report.summary()
        assert "retries=2" in text and "drops" not in text

    def test_combine(self):
        a = FaultReport(units=2, completed=2, retries=1, crashes=1)
        b = FaultReport(units=3, completed=2, drops=2)
        b.dead_units.append({"unit_index": 1, "failures": 4, "last_error": "drop"})
        combined = combine_fault_reports([a.to_dict(), None, b.to_dict()])
        assert combined["units"] == 5
        assert combined["retries"] == 1 and combined["drops"] == 2
        assert combined["dead_units"] == b.to_dict()["dead_units"]
        assert combine_fault_reports([None, None]) is None


class TestMergePartialShards:
    """ScenarioResult.merge error paths on NaN-bearing (degraded) shards."""

    @pytest.fixture(scope="class")
    def shards(self):
        from repro.study.compiler import Study
        from repro.study.scenario import MetricSpec, Scenario

        scenario = Scenario(
            name="partial",
            num_nodes=40,
            pool_size=300,
            ring_sizes=(12, 15),
            curves=((2, 0.6), (2, 1.0)),
            trials=4,
            seed=11,
            metrics=(MetricSpec("connectivity"),),
        )
        study = Study((scenario,))
        # Every unit's result is dropped on every attempt and the retry
        # budget is zero: all units dead-letter, so each shard is fully
        # NaN — the extreme degraded case.
        doomed = SchedulerPolicy(
            max_retries=0,
            backoff_base=0.0,
            chaos=ChaosSpec(
                seed=1, strategies=(FaultStrategy(kind="drop", probability=1.0),)
            ),
        )
        first = study.run(workers=1, scheduler=doomed)["partial"]
        second = study.run_extension(4, 8, workers=1, scheduler=doomed)["partial"]
        assert np.isnan(first.values).all() and np.isnan(second.values).all()
        return first, second

    def test_adjacent_nan_shards_merge(self, shards):
        first, second = shards
        merged = first.merge(second)
        assert merged.num_trials == 8
        assert np.isnan(merged.values).all()

    def test_overlap_rejected(self, shards):
        first, _ = shards
        with pytest.raises(ExperimentError, match="overlapping trial ranges"):
            first.merge(first)

    def test_gap_rejected(self, shards):
        from repro.study.compiler import Study

        first, second = shards
        gapped = Study((second.scenario.with_trials(4),)).run_extension(
            10,
            14,
            workers=1,
            scheduler=SchedulerPolicy(
                max_retries=0,
                backoff_base=0.0,
                chaos=ChaosSpec(
                    seed=1, strategies=(FaultStrategy(kind="drop", probability=1.0),)
                ),
            ),
        )["partial"]
        with pytest.raises(ExperimentError, match="non-adjacent trial ranges"):
            first.merge(gapped)

    def test_mismatched_scenarios_rejected(self, shards):
        import dataclasses

        first, second = shards
        other = dataclasses.replace(
            second, scenario=dataclasses.replace(second.scenario, seed=99)
        )
        with pytest.raises(ExperimentError, match="fields \\['seed'\\] differ"):
            first.merge(other)
