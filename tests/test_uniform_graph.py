"""Tests for the uniform q-intersection graph generator.

The strongest check: the vectorized inverted-index backend and the
dense Gram-matrix backend must produce *identical* edge sets on the
same rings, and the realized edge frequency must match the exact
hypergeometric ``s(K, P, q)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.keygraphs.rings import sample_binomial_rings, sample_uniform_rings
from repro.keygraphs.uniform_graph import (
    edges_from_rings,
    overlap_counts_from_rings,
    uniform_intersection_edges,
    uniform_intersection_graph,
)
from repro.probability.hypergeometric import overlap_survival


def _edge_set(arr: np.ndarray) -> set:
    return {tuple(map(int, row)) for row in arr}


class TestBackendsAgree:
    def test_uniform_rings_many_seeds(self):
        for seed in range(15):
            rings = sample_uniform_rings(40, 12, 120, seed=seed)
            for q in (1, 2, 3):
                inv = edges_from_rings(rings, q, backend="inverted")
                dense = edges_from_rings(rings, q, backend="dense")
                assert _edge_set(inv) == _edge_set(dense), (seed, q)

    def test_ragged_rings(self):
        rings = sample_binomial_rings(30, 0.1, 100, seed=3)
        for q in (1, 2):
            inv = edges_from_rings(rings, q, backend="inverted")
            dense = edges_from_rings(rings, q, backend="dense")
            assert _edge_set(inv) == _edge_set(dense)

    def test_unknown_backend_raises(self):
        rings = sample_uniform_rings(5, 2, 10, seed=0)
        with pytest.raises(ParameterError):
            edges_from_rings(rings, 1, backend="magic")


class TestOverlapCounts:
    def test_counts_match_bruteforce(self):
        rings = sample_uniform_rings(25, 8, 60, seed=7)
        pair_keys, counts = overlap_counts_from_rings(rings)
        lookup = dict(zip(pair_keys.tolist(), counts.tolist()))
        n = rings.shape[0]
        for u in range(n):
            for v in range(u + 1, n):
                overlap = np.intersect1d(rings[u], rings[v]).size
                got = lookup.get(u * n + v, 0)
                assert got == overlap, (u, v)

    def test_empty_rings(self):
        keys, counts = overlap_counts_from_rings(
            [np.empty(0, dtype=np.int64) for _ in range(4)]
        )
        assert keys.size == 0 and counts.size == 0

    def test_no_nodes_raises(self):
        with pytest.raises(ParameterError):
            overlap_counts_from_rings([])


class TestEdgeSemantics:
    def test_q_monotone_nesting(self):
        rings = sample_uniform_rings(60, 15, 150, seed=9)
        e1 = _edge_set(edges_from_rings(rings, 1))
        e2 = _edge_set(edges_from_rings(rings, 2))
        e3 = _edge_set(edges_from_rings(rings, 3))
        assert e3 <= e2 <= e1
        assert len(e1) > len(e3)  # strictly richer at this density

    def test_identical_rings_always_adjacent(self):
        rings = np.tile(np.arange(5, dtype=np.int64), (4, 1))
        edges = edges_from_rings(rings, 5)
        assert len(_edge_set(edges)) == 6  # complete graph on 4 nodes

    def test_disjoint_rings_no_edges(self):
        rings = np.arange(12, dtype=np.int64).reshape(4, 3)  # disjoint triples
        assert edges_from_rings(rings, 1).shape == (0, 2)

    def test_canonical_sorted_output(self):
        rings = sample_uniform_rings(30, 10, 80, seed=11)
        edges = edges_from_rings(rings, 1)
        assert (edges[:, 0] < edges[:, 1]).all()
        keys = edges[:, 0] * 30 + edges[:, 1]
        assert (np.diff(keys) > 0).all()  # sorted, no duplicates


class TestEdgeProbability:
    def test_matches_hypergeometric(self):
        # Realized edge density over many graphs ≈ s(K, P, q).
        n, K, P, q = 60, 10, 200, 2
        total_edges = 0
        reps = 60
        for seed in range(reps):
            total_edges += uniform_intersection_edges(n, K, P, q, seed=seed).shape[0]
        pairs = n * (n - 1) / 2
        emp = total_edges / (pairs * reps)
        s = overlap_survival(K, P, q)
        sd = np.sqrt(s * (1 - s) / (pairs * reps))  # ignores pair dependence
        assert abs(emp - s) < 6 * sd + 0.002

    def test_graph_wrapper(self):
        g = uniform_intersection_graph(25, 6, 60, 1, seed=2)
        assert g.num_nodes == 25
