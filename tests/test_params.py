"""Tests for QCompositeParams."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.hypergeometric import overlap_survival


class TestConstruction:
    def test_valid(self, small_params):
        assert small_params.num_nodes == 50

    def test_frozen(self, small_params):
        with pytest.raises(Exception):
            small_params.num_nodes = 99  # type: ignore[misc]

    def test_needs_two_nodes(self):
        with pytest.raises(ParameterError):
            QCompositeParams(num_nodes=1, key_ring_size=2, pool_size=10)

    def test_ring_pool_validation(self):
        with pytest.raises(ParameterError):
            QCompositeParams(num_nodes=10, key_ring_size=20, pool_size=10)

    def test_channel_zero_rejected(self):
        with pytest.raises(ParameterError):
            QCompositeParams(
                num_nodes=10, key_ring_size=2, pool_size=10, channel_prob=0.0
            )

    def test_with_updates(self, small_params):
        bigger = small_params.with_updates(num_nodes=100)
        assert bigger.num_nodes == 100
        assert small_params.num_nodes == 50

    def test_with_updates_validates(self, small_params):
        with pytest.raises(ParameterError):
            small_params.with_updates(key_ring_size=10_000)

    def test_to_dict(self, small_params):
        d = small_params.to_dict()
        assert d["overlap"] == 2 and d["channel_prob"] == 0.7

    def test_describe(self, small_params):
        text = small_params.describe()
        assert "n=50" in text and "q=2" in text


class TestDerived:
    def test_key_edge_probability(self, small_params):
        assert small_params.key_edge_probability() == pytest.approx(
            overlap_survival(20, 500, 2)
        )

    def test_edge_probability_scales_by_p(self, small_params):
        assert small_params.edge_probability() == pytest.approx(
            0.7 * small_params.key_edge_probability()
        )

    def test_mean_degree(self, small_params):
        assert small_params.mean_degree() == pytest.approx(
            49 * small_params.edge_probability()
        )

    def test_alpha_k1(self, figure1_params):
        t = figure1_params.edge_probability()
        expect = 1000 * t - math.log(1000)
        assert figure1_params.alpha(1) == pytest.approx(expect)

    def test_alpha_k2_subtracts_loglog(self, figure1_params):
        diff = figure1_params.alpha(1) - figure1_params.alpha(2)
        assert diff == pytest.approx(math.log(math.log(1000)))
