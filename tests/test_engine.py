"""Tests for the Monte Carlo engine (determinism across worker counts)."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import default_workers, run_trials, trials_from_env


def _draw_trial(rng: np.random.Generator) -> float:
    return float(rng.random())


def _sum_trial(scale: float, rng: np.random.Generator) -> float:
    return scale * float(rng.random())


class TestRunTrials:
    def test_outcome_count(self):
        assert len(run_trials(_draw_trial, 7, seed=1, workers=1)) == 7

    def test_serial_deterministic(self):
        a = run_trials(_draw_trial, 10, seed=3, workers=1)
        b = run_trials(_draw_trial, 10, seed=3, workers=1)
        assert a == b

    def test_parallel_matches_serial(self):
        serial = run_trials(_draw_trial, 16, seed=5, workers=1)
        parallel = run_trials(_draw_trial, 16, seed=5, workers=4)
        assert serial == parallel

    def test_different_seeds_differ(self):
        a = run_trials(_draw_trial, 5, seed=1, workers=1)
        b = run_trials(_draw_trial, 5, seed=2, workers=1)
        assert a != b

    def test_partial_is_picklable_across_workers(self):
        out = run_trials(functools.partial(_sum_trial, 2.0), 8, seed=7, workers=2)
        assert len(out) == 8
        assert all(0.0 <= v <= 2.0 for v in out)

    def test_workers_capped_by_trials(self):
        # More workers than trials must not break or duplicate work.
        out = run_trials(_draw_trial, 3, seed=9, workers=16)
        assert out == run_trials(_draw_trial, 3, seed=9, workers=1)

    def test_zero_trials_raises(self):
        with pytest.raises(SimulationError):
            run_trials(_draw_trial, 0)

    def test_bad_workers_raises(self):
        with pytest.raises(SimulationError):
            run_trials(_draw_trial, 5, workers=0)

    def test_none_seed_reproducible(self):
        # Contract: seed=None pins root entropy to 0.
        a = run_trials(_draw_trial, 4, seed=None, workers=1)
        b = run_trials(_draw_trial, 4, seed=0, workers=1)
        assert a == b


class TestEnvKnobs:
    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_default_workers_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(SimulationError):
            default_workers()

    def test_trials_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert trials_from_env(60, full=500) == 60

    def test_trials_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "123")
        assert trials_from_env(60, full=500) == 123

    def test_trials_full_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert trials_from_env(60, full=500) == 500

    def test_trials_env_beats_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "10")
        monkeypatch.setenv("REPRO_FULL", "1")
        assert trials_from_env(60, full=500) == 10

    def test_trials_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "0")
        with pytest.raises(SimulationError):
            trials_from_env(60)
