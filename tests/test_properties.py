"""Tests for graph property helpers."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    average_clustering,
    degree_histogram,
    degree_histogram_edges,
    degrees_from_edges,
    isolated_node_count,
    min_degree,
    min_degree_edges,
    nodes_with_degree,
)
from tests.conftest import random_gnp_graph


class TestDegreesFromEdges:
    def test_matches_graph_degrees(self, rng):
        for _ in range(20):
            g = random_gnp_graph(25, 0.2, rng)
            arr = g.to_edge_array()
            assert np.array_equal(degrees_from_edges(25, arr), g.degrees())

    def test_empty(self):
        assert degrees_from_edges(4, np.empty((0, 2))).tolist() == [0, 0, 0, 0]

    def test_bad_shape_raises(self):
        with pytest.raises(GraphError):
            degrees_from_edges(4, np.array([[0, 1, 2]]))


class TestScalars:
    def test_min_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert min_degree(g) == 1
        assert min_degree_edges(4, g.to_edge_array()) == 1

    def test_isolated_count(self):
        edges = np.array([[0, 1]])
        assert isolated_node_count(4, edges) == 2

    def test_nodes_with_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        arr = g.to_edge_array()
        assert nodes_with_degree(4, arr, 1) == 3
        assert nodes_with_degree(4, arr, 3) == 1
        assert nodes_with_degree(4, arr, 2) == 0


class TestHistogram:
    def test_star(self):
        g = Graph(5, [(0, i) for i in range(1, 5)])
        hist = degree_histogram(g)
        assert hist.tolist() == [0, 4, 0, 0, 1]

    def test_histogram_edges_matches(self, rng):
        g = random_gnp_graph(20, 0.3, rng)
        a = degree_histogram(g)
        b = degree_histogram_edges(20, g.to_edge_array())
        assert np.array_equal(a, b)

    def test_sums_to_n(self, rng):
        g = random_gnp_graph(30, 0.2, rng)
        assert degree_histogram(g).sum() == 30


class TestClustering:
    def test_triangle_is_one(self):
        assert average_clustering(Graph.complete(3)) == pytest.approx(1.0)

    def test_path_is_zero(self):
        assert average_clustering(Graph.path(5)) == pytest.approx(0.0)

    def test_matches_networkx(self, rng):
        for _ in range(15):
            g = random_gnp_graph(18, 0.35, rng)
            ng = nx.Graph()
            ng.add_nodes_from(range(18))
            ng.add_edges_from(g.edges())
            assert average_clustering(g) == pytest.approx(
                nx.average_clustering(ng), abs=1e-10
            )

    def test_key_graph_clusters_more_than_er(self):
        # Random intersection graphs cluster strongly (Bloznelis 2013):
        # in the sparse regime, co-holding a key creates triangles that
        # an ER graph of equal density lacks.
        from repro.keygraphs.uniform_graph import uniform_intersection_graph
        from repro.graphs.generators import erdos_renyi_graph

        kg = uniform_intersection_graph(200, 3, 300, 1, seed=5)
        p_match = kg.num_edges / (200 * 199 / 2)
        er = erdos_renyi_graph(200, p_match, seed=6)
        assert average_clustering(kg) > 3 * max(average_clustering(er), 0.01)
