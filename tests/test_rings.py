"""Tests for key-ring samplers."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import binom

from repro.exceptions import ParameterError
from repro.kernels import available_backends, backend_available, use_backend
from repro.keygraphs.rings import (
    rings_to_incidence,
    sample_binomial_rings,
    sample_class_labels,
    sample_class_rings,
    sample_uniform_rings,
)
from repro.keygraphs.uniform_graph import overlap_counts_from_rings
from repro.utils.rng import as_generator

BACKEND_NAMES = [info["name"] for info in available_backends()]


class TestUniformRings:
    def test_shape_and_dtype(self):
        rings = sample_uniform_rings(10, 5, 50, seed=1)
        assert rings.shape == (10, 5)
        assert rings.dtype == np.int64

    def test_rows_sorted_distinct(self):
        rings = sample_uniform_rings(200, 30, 200, seed=2)
        assert (np.diff(rings, axis=1) > 0).all()

    def test_ids_in_pool(self):
        rings = sample_uniform_rings(50, 10, 40, seed=3)
        assert rings.min() >= 0 and rings.max() < 40

    def test_full_pool_ring(self):
        rings = sample_uniform_rings(5, 7, 7, seed=4)
        assert np.array_equal(rings, np.tile(np.arange(7), (5, 1)))

    def test_deterministic(self):
        a = sample_uniform_rings(20, 8, 100, seed=9)
        b = sample_uniform_rings(20, 8, 100, seed=9)
        assert np.array_equal(a, b)

    def test_dense_fallback_region(self):
        # K(K-1)/2P > 1 triggers argpartition path; rows still valid.
        rings = sample_uniform_rings(30, 40, 60, seed=5)
        assert rings.shape == (30, 40)
        assert (np.diff(rings, axis=1) > 0).all()

    def test_key_marginal_uniform(self):
        # Each key appears with probability K/P per node.
        n, K, P = 4000, 10, 50
        rings = sample_uniform_rings(n, K, P, seed=6)
        counts = np.bincount(rings.ravel(), minlength=P)
        rate = counts / n
        assert np.abs(rate - K / P).max() < 0.03

    def test_pairwise_overlap_mean(self):
        # Overlap of two rings should average K²/P.
        n, K, P = 1000, 12, 300
        rings = sample_uniform_rings(n, K, P, seed=7)
        overlaps = [
            np.intersect1d(rings[2 * i], rings[2 * i + 1]).size
            for i in range(n // 2)
        ]
        assert np.mean(overlaps) == pytest.approx(K * K / P, rel=0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            sample_uniform_rings(10, 0, 50)
        with pytest.raises(ParameterError):
            sample_uniform_rings(10, 51, 50)


def _legacy_uniform_rings(num_nodes, key_ring_size, pool_size, seed):
    """The pre-fix rejection loop, inlined as a stream-layout reference.

    The historical loop re-checked *every* row after each redraw pass
    instead of only the redrawn ones.  Accepted rows can never turn bad
    again, so the set of bad rows — and with it the number of draws per
    pass — is identical either way; the fix changed the bookkeeping,
    not the consumed random stream.
    """
    rng = as_generator(seed)
    n, k, p = num_nodes, key_ring_size, pool_size
    rings = np.sort(rng.integers(0, p, size=(n, k), dtype=np.int64), axis=1)
    bad = (np.diff(rings, axis=1) == 0).any(axis=1)
    while bad.any():
        rings[bad] = np.sort(
            rng.integers(0, p, size=(int(bad.sum()), k), dtype=np.int64), axis=1
        )
        bad = (np.diff(rings, axis=1) == 0).any(axis=1)
    return rings


class TestUniformRingsStreamPinned:
    """The rejection-loop fix must not move a single random draw."""

    @pytest.mark.parametrize("seed", [0, 7, 991])
    def test_bit_identical_to_legacy_loop_under_forced_collisions(self, seed):
        # Density K(K-1)/2P = 0.7: roughly half the rows collide on the
        # first pass, so the loop runs several rounds and any change in
        # redraw accounting would desynchronize the stream immediately.
        n, k, p = 64, 8, 40
        got = sample_uniform_rings(n, k, p, seed=seed)
        ref = _legacy_uniform_rings(n, k, p, seed)
        assert np.array_equal(got, ref)

    def test_multiple_rejection_rounds_actually_happen(self):
        # Guard the fixture: the pin above is vacuous if collisions are
        # rare enough that the loop never iterates.
        rng = as_generator(3)
        first = np.sort(rng.integers(0, 40, size=(64, 8), dtype=np.int64), axis=1)
        assert (np.diff(first, axis=1) == 0).any(axis=1).sum() > 5


class TestClassLabels:
    def test_distribution_matches_mu(self):
        mu = (0.2, 0.3, 0.5)
        labels = sample_class_labels(5000, mu, seed=1)
        rates = np.bincount(labels, minlength=3) / 5000
        assert np.abs(rates - np.asarray(mu)).max() < 0.03

    def test_deterministic(self):
        a = sample_class_labels(100, (0.4, 0.6), seed=2)
        b = sample_class_labels(100, (0.4, 0.6), seed=2)
        assert np.array_equal(a, b)

    def test_one_uniform_per_node_stream_layout(self):
        # The draw contract: exactly one uniform per node through
        # inverse-CDF lookup, independent of the number of classes.
        mu = (0.25, 0.25, 0.5)
        labels = sample_class_labels(200, mu, seed=5)
        uniforms = as_generator(5).random(200)
        edges = np.cumsum(np.asarray(mu))
        edges[-1] = 1.0
        assert np.array_equal(labels, np.searchsorted(edges, uniforms, side="right"))

    def test_invalid_mu(self):
        with pytest.raises(ParameterError):
            sample_class_labels(10, (0.5, 0.4))  # sums to 0.9
        with pytest.raises(ParameterError):
            sample_class_labels(10, (1.5, -0.5))
        with pytest.raises(ParameterError):
            sample_class_labels(10, ())


class TestClassRings:
    def test_sizes_follow_labels(self):
        labels = sample_class_labels(300, (0.5, 0.5), seed=3)
        rings = sample_class_rings(labels, (10, 25), 200, seed=4)
        sizes = np.array([r.size for r in rings])
        assert np.array_equal(sizes, np.where(labels == 0, 10, 25))

    def test_rows_sorted_distinct_in_pool(self):
        labels = sample_class_labels(200, (0.3, 0.7), seed=6)
        rings = sample_class_rings(labels, (8, 20), 100, seed=7)
        for ring in rings:
            assert (np.diff(ring) > 0).all()
            assert ring.min() >= 0 and ring.max() < 100

    def test_deterministic(self):
        labels = sample_class_labels(50, (0.5, 0.5), seed=8)
        a = sample_class_rings(labels, (5, 9), 60, seed=9)
        b = sample_class_rings(labels, (5, 9), 60, seed=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_per_class_key_marginal_uniform(self):
        # Within a class of ring size K the per-key rate must be K/P.
        n, P = 4000, 50
        labels = sample_class_labels(n, (0.5, 0.5), seed=10)
        rings = sample_class_rings(labels, (5, 15), P, seed=11)
        for cls, K in ((0, 5), (1, 15)):
            members = np.flatnonzero(labels == cls)
            counts = np.bincount(
                np.concatenate([rings[i] for i in members]), minlength=P
            )
            assert np.abs(counts / members.size - K / P).max() < 0.05

    def test_invalid_inputs(self):
        labels = np.array([0, 1, 2])
        with pytest.raises(ParameterError):
            sample_class_rings(labels, (5, 9), 60)  # label 2 out of range
        with pytest.raises(ParameterError):
            sample_class_rings(np.array([0]), (70,), 60)  # ring > pool
        with pytest.raises(ParameterError):
            sample_class_rings(np.empty(0, dtype=np.int64), (5,), 60)


class TestBinomialRings:
    def test_count_and_sorted(self):
        rings = sample_binomial_rings(50, 0.1, 200, seed=1)
        assert len(rings) == 50
        for ring in rings:
            assert (np.diff(ring) > 0).all() if ring.size > 1 else True

    def test_ids_in_pool(self):
        rings = sample_binomial_rings(50, 0.2, 100, seed=2)
        for ring in rings:
            if ring.size:
                assert ring.min() >= 0 and ring.max() < 100

    def test_zero_probability(self):
        rings = sample_binomial_rings(10, 0.0, 100, seed=3)
        assert all(r.size == 0 for r in rings)

    def test_one_probability(self):
        rings = sample_binomial_rings(5, 1.0, 30, seed=4)
        assert all(np.array_equal(r, np.arange(30)) for r in rings)

    def test_size_distribution_matches_binomial(self):
        n, x, P = 3000, 0.05, 200
        rings = sample_binomial_rings(n, x, P, seed=5)
        sizes = np.array([r.size for r in rings])
        assert sizes.mean() == pytest.approx(P * x, rel=0.05)
        assert sizes.var() == pytest.approx(float(binom.var(P, x)), rel=0.15)

    def test_dense_branch(self):
        # x > 1/2 forces the partial-shuffle branch per node.
        rings = sample_binomial_rings(20, 0.9, 50, seed=6)
        sizes = np.array([r.size for r in rings])
        assert sizes.mean() == pytest.approx(45.0, rel=0.1)


class TestBinomialFillPaths:
    """Each of the three fill paths draws uniform subsets of its size.

    The sampler routes every ring through one of three fills — padded
    rejection, mid-size distinct draws, or near-full partial shuffle —
    chosen per row by the collision exponent.  A bias in any path would
    skew the per-key marginal, which for binomial rings is exactly
    ``x`` regardless of the realized ring size.
    """

    # (pool, x, trials, dominant-path predicate over realized sizes)
    CASES = [
        pytest.param(
            200, 0.05, 3000,
            lambda s, P: s * (s - 1) <= 2.0 * P,
            0.025, id="sparse-rejection",
        ),
        pytest.param(
            60, 0.3, 3000,
            lambda s, P: (s * (s - 1) > 2.0 * P) & (s <= P // 2),
            0.05, id="mid-distinct-draws",
        ),
        pytest.param(
            40, 0.85, 2000,
            lambda s, P: s > P // 2,
            0.05, id="dense-partial-shuffle",
        ),
    ]

    @pytest.mark.parametrize("P, x, n, in_path, tol", CASES)
    def test_per_key_marginal_is_x(self, P, x, n, in_path, tol):
        rings = sample_binomial_rings(n, x, P, seed=13)
        sizes = np.array([r.size for r in rings])
        # Guard: the intended path must actually dominate at these
        # parameters, otherwise the marginal check tests nothing new.
        assert np.mean(in_path(sizes, P)) > 0.8
        counts = np.bincount(np.concatenate(rings), minlength=P)
        assert np.abs(counts / n - x).max() < tol

    @pytest.mark.parametrize("P, x, n, in_path, tol", CASES)
    def test_rows_valid_on_every_path(self, P, x, n, in_path, tol):
        rings = sample_binomial_rings(200, x, P, seed=14)
        for ring in rings:
            if ring.size:
                assert (np.diff(ring) > 0).all()
                assert ring.min() >= 0 and ring.max() < P


class TestOverlapBackendsOnRaggedRings:
    """Mixed-size class rings count overlaps exactly on every backend."""

    @staticmethod
    def _brute_force(rings):
        n = len(rings)
        expected = {}
        for u in range(n):
            for v in range(u + 1, n):
                shared = np.intersect1d(rings[u], rings[v]).size
                if shared:
                    expected[u * n + v] = shared
        return expected

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_class_rings_match_brute_force(self, backend):
        if not backend_available(backend):
            pytest.skip(f"backend {backend!r} unavailable")
        labels = sample_class_labels(60, (0.4, 0.4, 0.2), seed=15)
        rings = sample_class_rings(labels, (4, 12, 25), 80, seed=16)
        with use_backend(backend):
            pair_keys, counts = overlap_counts_from_rings(rings)
        got = dict(zip(pair_keys.tolist(), counts.tolist()))
        assert got == self._brute_force(rings)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_binomial_rings_with_empty_rows(self, backend):
        if not backend_available(backend):
            pytest.skip(f"backend {backend!r} unavailable")
        rings = sample_binomial_rings(40, 0.02, 120, seed=17)
        assert any(r.size == 0 for r in rings)  # raggedness includes empties
        with use_backend(backend):
            pair_keys, counts = overlap_counts_from_rings(rings)
        got = dict(zip(pair_keys.tolist(), counts.tolist()))
        assert got == self._brute_force(rings)


class TestIncidence:
    def test_uniform_rings_incidence(self):
        rings = sample_uniform_rings(10, 4, 20, seed=1)
        inc = rings_to_incidence(rings, 20)
        assert inc.shape == (10, 20)
        assert (inc.sum(axis=1) == 4).all()

    def test_ragged_rings_incidence(self):
        rings = [np.array([0, 3]), np.array([], dtype=np.int64), np.array([1])]
        inc = rings_to_incidence(rings, 5)
        assert inc.sum() == 3
        assert inc[0, 3] == 1 and inc[2, 1] == 1

    def test_out_of_pool_raises(self):
        with pytest.raises(ValueError):
            rings_to_incidence([np.array([7])], 5)
