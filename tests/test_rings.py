"""Tests for key-ring samplers."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import binom

from repro.exceptions import ParameterError
from repro.keygraphs.rings import (
    rings_to_incidence,
    sample_binomial_rings,
    sample_uniform_rings,
)


class TestUniformRings:
    def test_shape_and_dtype(self):
        rings = sample_uniform_rings(10, 5, 50, seed=1)
        assert rings.shape == (10, 5)
        assert rings.dtype == np.int64

    def test_rows_sorted_distinct(self):
        rings = sample_uniform_rings(200, 30, 200, seed=2)
        assert (np.diff(rings, axis=1) > 0).all()

    def test_ids_in_pool(self):
        rings = sample_uniform_rings(50, 10, 40, seed=3)
        assert rings.min() >= 0 and rings.max() < 40

    def test_full_pool_ring(self):
        rings = sample_uniform_rings(5, 7, 7, seed=4)
        assert np.array_equal(rings, np.tile(np.arange(7), (5, 1)))

    def test_deterministic(self):
        a = sample_uniform_rings(20, 8, 100, seed=9)
        b = sample_uniform_rings(20, 8, 100, seed=9)
        assert np.array_equal(a, b)

    def test_dense_fallback_region(self):
        # K(K-1)/2P > 1 triggers argpartition path; rows still valid.
        rings = sample_uniform_rings(30, 40, 60, seed=5)
        assert rings.shape == (30, 40)
        assert (np.diff(rings, axis=1) > 0).all()

    def test_key_marginal_uniform(self):
        # Each key appears with probability K/P per node.
        n, K, P = 4000, 10, 50
        rings = sample_uniform_rings(n, K, P, seed=6)
        counts = np.bincount(rings.ravel(), minlength=P)
        rate = counts / n
        assert np.abs(rate - K / P).max() < 0.03

    def test_pairwise_overlap_mean(self):
        # Overlap of two rings should average K²/P.
        n, K, P = 1000, 12, 300
        rings = sample_uniform_rings(n, K, P, seed=7)
        overlaps = [
            np.intersect1d(rings[2 * i], rings[2 * i + 1]).size
            for i in range(n // 2)
        ]
        assert np.mean(overlaps) == pytest.approx(K * K / P, rel=0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            sample_uniform_rings(10, 0, 50)
        with pytest.raises(ParameterError):
            sample_uniform_rings(10, 51, 50)


class TestBinomialRings:
    def test_count_and_sorted(self):
        rings = sample_binomial_rings(50, 0.1, 200, seed=1)
        assert len(rings) == 50
        for ring in rings:
            assert (np.diff(ring) > 0).all() if ring.size > 1 else True

    def test_ids_in_pool(self):
        rings = sample_binomial_rings(50, 0.2, 100, seed=2)
        for ring in rings:
            if ring.size:
                assert ring.min() >= 0 and ring.max() < 100

    def test_zero_probability(self):
        rings = sample_binomial_rings(10, 0.0, 100, seed=3)
        assert all(r.size == 0 for r in rings)

    def test_one_probability(self):
        rings = sample_binomial_rings(5, 1.0, 30, seed=4)
        assert all(np.array_equal(r, np.arange(30)) for r in rings)

    def test_size_distribution_matches_binomial(self):
        n, x, P = 3000, 0.05, 200
        rings = sample_binomial_rings(n, x, P, seed=5)
        sizes = np.array([r.size for r in rings])
        assert sizes.mean() == pytest.approx(P * x, rel=0.05)
        assert sizes.var() == pytest.approx(float(binom.var(P, x)), rel=0.15)

    def test_dense_branch(self):
        # x > 1/2 forces the partial-shuffle branch per node.
        rings = sample_binomial_rings(20, 0.9, 50, seed=6)
        sizes = np.array([r.size for r in rings])
        assert sizes.mean() == pytest.approx(45.0, rel=0.1)


class TestIncidence:
    def test_uniform_rings_incidence(self):
        rings = sample_uniform_rings(10, 4, 20, seed=1)
        inc = rings_to_incidence(rings, 20)
        assert inc.shape == (10, 20)
        assert (inc.sum(axis=1) == 4).all()

    def test_ragged_rings_incidence(self):
        rings = [np.array([0, 3]), np.array([], dtype=np.int64), np.array([1])]
        inc = rings_to_incidence(rings, 5)
        assert inc.sum() == 3
        assert inc[0, 3] == 1 and inc[2, 1] == 1

    def test_out_of_pool_raises(self):
        with pytest.raises(ValueError):
            rings_to_incidence([np.array([7])], 5)
