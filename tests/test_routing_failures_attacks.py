"""Tests for WSN routing, failure injection, and capture attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.keygraphs.schemes import QCompositeScheme
from repro.wsn.attacks import analytic_compromise_fraction, capture_attack
from repro.wsn.failures import (
    apply_random_failures,
    connectivity_after_failures,
    random_node_failures,
    worst_case_failure_search,
)
from repro.wsn.metrics import summarize
from repro.wsn.network import SecureWSN
from repro.wsn.routing import find_secure_route, route_stretch


@pytest.fixture
def dense_net() -> SecureWSN:
    """A network dense enough to be connected with high probability."""
    return SecureWSN(25, QCompositeScheme(15, 60, 2), OnOffChannel(0.9), seed=5)


class TestRouting:
    def test_route_hops_are_secure_links(self, dense_net):
        route = find_secure_route(dense_net, 0, 24)
        if route is None:
            pytest.skip("sampled topology disconnected; other seeds cover this")
        g = dense_net.graph()
        for a, b in zip(route.hops, route.hops[1:]):
            assert g.has_edge(a, b)
        assert len(route.link_keys) == route.length

    def test_route_keys_match_link_keys(self, dense_net):
        route = find_secure_route(dense_net, 0, 24)
        if route is None:
            pytest.skip("disconnected sample")
        for (a, b), key in zip(zip(route.hops, route.hops[1:]), route.link_keys):
            assert key == dense_net.scheme.link_key(
                dense_net.rings[a], dense_net.rings[b]
            )

    def test_self_route(self, dense_net):
        route = find_secure_route(dense_net, 3, 3)
        assert route is not None and route.hops == [3] and route.length == 0

    def test_route_to_dead_sensor_none(self, dense_net):
        dense_net.fail_nodes([7])
        assert find_secure_route(dense_net, 0, 7) is None

    def test_bad_ids_raise(self, dense_net):
        with pytest.raises(ParameterError):
            find_secure_route(dense_net, 0, 99)

    def test_stretch_at_least_one(self, dense_net):
        val = route_stretch(dense_net, 0, 24)
        if val is None:
            pytest.skip("disconnected sample")
        assert val >= 1.0 - 1e-12


class TestFailures:
    def test_random_failures_rate(self):
        failed = random_node_failures(10000, 0.2, seed=1)
        assert abs(failed.size / 10000 - 0.2) < 0.02

    def test_zero_prob_no_failures(self):
        assert random_node_failures(100, 0.0, seed=1).size == 0

    def test_apply_marks_dead(self, dense_net):
        failed = apply_random_failures(dense_net, 0.3, seed=2)
        assert dense_net.live_count() == 25 - failed.size

    def test_connectivity_after_failures_restores_state(self, dense_net):
        before = dense_net.live_count()
        connectivity_after_failures(dense_net, [0, 1, 2])
        assert dense_net.live_count() == before

    def test_connectivity_after_failures_preserves_existing_dead(self, dense_net):
        dense_net.fail_nodes([3])
        connectivity_after_failures(dense_net, [0, 1])
        assert not dense_net.sensors[3].alive
        assert dense_net.live_count() == 24

    def test_worst_case_path_graph(self):
        # A path network disconnects by removing any interior node; the
        # exhaustive search must find a witness.
        wsn = SecureWSN(10, QCompositeScheme(9, 10, 1), seed=1)
        # Rings are all identical (K=9 of P=10 forces >= 8 shared): the
        # key graph is complete, so fall back to a crafted check below.
        survives, witness = worst_case_failure_search(wsn, 1)
        assert survives and witness == []

    def test_worst_case_too_many_failures_raises(self, dense_net):
        with pytest.raises(ParameterError):
            worst_case_failure_search(dense_net, 25)

    def test_worst_case_zero_failures(self, dense_net):
        survives, witness = worst_case_failure_search(dense_net, 0)
        assert witness == []
        assert survives == dense_net.is_connected()


class TestCaptureAttack:
    def test_zero_captured_nothing_compromised(self, dense_net):
        result = capture_attack(dense_net, 0, seed=1)
        assert result.links_compromised == 0
        assert result.compromise_fraction == 0.0

    def test_captured_links_excluded(self, dense_net):
        result = capture_attack(dense_net, 5, seed=2)
        captured = set(result.captured_nodes)
        # Evaluated links must avoid captured endpoints entirely.
        count = 0
        for u, v in dense_net.secure_edges():
            if int(u) not in captured and int(v) not in captured:
                count += 1
        assert result.links_evaluated == count

    def test_capture_whole_network_raises(self, dense_net):
        with pytest.raises(ParameterError):
            capture_attack(dense_net, 25)

    def test_more_captures_more_compromise(self):
        wsn = SecureWSN(60, QCompositeScheme(20, 200, 1), seed=9)
        small = capture_attack(wsn, 3, seed=1)
        large = capture_attack(wsn, 40, seed=1)
        assert large.compromise_fraction >= small.compromise_fraction

    def test_analytic_monotone_in_x(self):
        vals = [
            analytic_compromise_fraction(30, 1000, 2, x) for x in (0, 5, 20, 100)
        ]
        assert all(a <= b for a, b in zip(vals, vals[1:]))
        assert vals[0] == 0.0

    def test_analytic_q_resilience_at_fixed_K(self):
        # At *fixed* K, a larger shared-key requirement only hardens
        # links (more keys to capture per link).
        small = [analytic_compromise_fraction(30, 1000, q, 5) for q in (1, 2, 3)]
        assert small[0] > small[1] > small[2]

    def test_analytic_q_tradeoff_at_equal_connectivity(self):
        # The Chan et al. tradeoff: equalize connectivity by growing K
        # with q (K* from Eq. 9).  Then small attacks favour large q and
        # large attacks punish it.
        from repro.core.design import minimal_key_ring_size

        rings = {
            q: minimal_key_ring_size(1000, 10000, q, 1.0) for q in (1, 2, 3)
        }
        small = [
            analytic_compromise_fraction(rings[q], 10000, q, 5) for q in (1, 2, 3)
        ]
        assert small[0] > small[1] > small[2]
        large = [
            analytic_compromise_fraction(rings[q], 10000, q, 500) for q in (1, 2, 3)
        ]
        assert large[0] < large[2]

    def test_analytic_bounds(self):
        for x in (0, 1, 10, 1000):
            v = analytic_compromise_fraction(30, 1000, 2, x)
            assert 0.0 <= v <= 1.0


class TestMetrics:
    def test_summary_fields(self, dense_net):
        s = summarize(dense_net)
        assert s.num_nodes == 25
        assert s.num_live == 25
        assert s.num_secure_links == dense_net.secure_edges().shape[0]
        assert 0 <= s.min_degree <= s.mean_degree
        assert s.connected == dense_net.is_connected()

    def test_summary_skip_clustering(self, dense_net):
        s = summarize(dense_net, with_clustering=False)
        assert np.isnan(s.clustering)

    def test_summary_to_dict(self, dense_net):
        d = summarize(dense_net).to_dict()
        assert "min_degree" in d and "connected" in d
