"""Tests for the Graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_from_edge_iterable(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(2, 3)

    def test_from_edge_array(self):
        arr = np.array([[0, 1], [1, 2]], dtype=np.int64)
        g = Graph.from_edge_array(3, arr)
        assert g.num_edges == 2

    def test_from_empty_edge_array(self):
        g = Graph.from_edge_array(3, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0

    def test_bad_array_shape_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[0, 1, 2]]))

    def test_complete(self):
        g = Graph.complete(5)
        assert g.num_edges == 10
        assert all(g.degree(u) == 4 for u in range(5))

    def test_cycle(self):
        g = Graph.cycle(6)
        assert g.num_edges == 6
        assert all(g.degree(u) == 2 for u in range(6))

    def test_cycle_too_small_raises(self):
        with pytest.raises(GraphError):
            Graph.cycle(2)

    def test_path(self):
        g = Graph.path(4)
        assert g.num_edges == 3
        assert g.degree(0) == 1 and g.degree(1) == 2


class TestEdges:
    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(0, 3)

    def test_edges_canonical_sorted(self):
        g = Graph(4, [(3, 1), (2, 0), (1, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 3)]

    def test_edge_set_and_contains(self):
        g = Graph(3, [(0, 2)])
        assert (2, 0) in g
        assert (0, 1) not in g
        assert g.edge_set() == {(0, 2)}

    def test_to_edge_array_roundtrip(self):
        g = Graph(5, [(0, 4), (1, 2), (2, 3)])
        arr = g.to_edge_array()
        g2 = Graph.from_edge_array(5, arr)
        assert g2.edge_set() == g.edge_set()

    def test_to_edge_array_empty(self):
        assert Graph(3).to_edge_array().shape == (0, 2)


class TestQueries:
    def test_neighbors_frozen(self):
        g = Graph(3, [(0, 1), (0, 2)])
        n = g.neighbors(0)
        assert n == frozenset({1, 2})
        with pytest.raises(AttributeError):
            n.add(5)  # type: ignore[attr-defined]

    def test_degrees_vector(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees().tolist() == [3, 1, 1, 1]

    def test_subgraph_without_node(self):
        g = Graph.complete(4)
        sub = g.subgraph_without_node(0)
        assert sub.num_nodes == 4  # node kept, isolated
        assert sub.degree(0) == 0
        assert sub.num_edges == 3  # triangle on {1,2,3}

    def test_query_bad_node_raises(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.degree(5)
