"""Tests for the giant-component experiment and the ER limit solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.giant_component import (
    er_giant_fraction,
    giant_component_trial,
    render_giant_component,
    run_giant_component,
)
from repro.params import QCompositeParams


class TestErGiantFraction:
    def test_subcritical_zero(self):
        assert er_giant_fraction(0.5) == 0.0
        assert er_giant_fraction(1.0) == 0.0

    def test_fixed_point_property(self):
        for c in (1.2, 2.0, 4.0):
            rho = er_giant_fraction(c)
            assert rho == pytest.approx(1.0 - math.exp(-c * rho), abs=1e-9)
            assert 0.0 < rho < 1.0

    def test_monotone_in_c(self):
        vals = [er_giant_fraction(c) for c in (1.1, 1.5, 2.0, 3.0, 10.0)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_known_value_c2(self):
        # rho(2) ≈ 0.7968
        assert er_giant_fraction(2.0) == pytest.approx(0.7968, abs=1e-3)

    def test_large_c_approaches_one(self):
        assert er_giant_fraction(20.0) > 0.999999


class TestTrial:
    def test_fraction_in_unit_interval(self):
        params = QCompositeParams(
            num_nodes=100, key_ring_size=20, pool_size=500, overlap=2,
            channel_prob=0.2,
        )
        frac = giant_component_trial(params, np.random.default_rng(1))
        assert 0.0 < frac <= 1.0

    def test_dense_graph_single_component(self):
        params = QCompositeParams(
            num_nodes=50, key_ring_size=40, pool_size=60, overlap=1,
            channel_prob=1.0,
        )
        assert giant_component_trial(params, np.random.default_rng(2)) == 1.0


class TestRun:
    def test_structure_and_render(self):
        result = run_giant_component(
            trials=5,
            mean_degrees=(0.5, 3.0),
            num_nodes=200,
            key_ring_size=30,
            pool_size=2000,
            workers=1,
        )
        assert len(result.points) == 2
        sub, sup = result.points
        assert sub.point["mean_fraction"] < sup.point["mean_fraction"]
        assert "ER limit" in render_giant_component(result)

    def test_infeasible_mean_degree_raises(self):
        with pytest.raises(ValueError):
            run_giant_component(
                trials=2,
                mean_degrees=(500.0,),  # would need p > 1
                num_nodes=100,
                key_ring_size=10,
                pool_size=2000,
                workers=1,
            )

    def test_registered_in_cli(self):
        from repro.experiments.registry import get_experiment

        assert get_experiment("giant").name == "giant"
