"""Tests for vertex connectivity — the k-connectivity oracle.

The Even/Dinic decision procedure is the correctness keystone of the
k-connectivity experiments, so it is cross-validated against networkx
on hundreds of random graphs, including near-threshold Erdős–Rényi
graphs where separators are small and plentiful.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.vertex_connectivity import (
    is_k_connected,
    local_node_connectivity,
    vertex_connectivity,
)
from tests.conftest import random_gnp_graph


def _to_nx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(range(g.num_nodes))
    ng.add_edges_from(g.edges())
    return ng


class TestNamedGraphs:
    def test_complete(self):
        for n in (2, 3, 5, 8):
            assert vertex_connectivity(Graph.complete(n)) == n - 1

    def test_cycle_is_two(self):
        assert vertex_connectivity(Graph.cycle(7)) == 2

    def test_path_is_one(self):
        assert vertex_connectivity(Graph.path(6)) == 1

    def test_disconnected_zero(self):
        assert vertex_connectivity(Graph(4, [(0, 1), (2, 3)])) == 0

    def test_single_node_zero(self):
        assert vertex_connectivity(Graph(1)) == 0

    def test_diamond(self, diamond_graph):
        assert vertex_connectivity(diamond_graph) == 2

    def test_bowtie_one(self, bowtie_graph):
        assert vertex_connectivity(bowtie_graph) == 1

    def test_petersen_is_three(self):
        pg = nx.petersen_graph()
        g = Graph(10, pg.edges())
        assert vertex_connectivity(g) == 3

    def test_hypercube_q4_is_four(self):
        hc = nx.hypercube_graph(4)
        mapping = {node: i for i, node in enumerate(hc.nodes())}
        g = Graph(16, ((mapping[a], mapping[b]) for a, b in hc.edges()))
        assert vertex_connectivity(g) == 4

    def test_complete_bipartite(self):
        kb = nx.complete_bipartite_graph(3, 5)
        g = Graph(8, kb.edges())
        assert vertex_connectivity(g) == 3


class TestIsKConnected:
    def test_k_zero_always_true(self):
        assert is_k_connected(Graph(3), 0)

    def test_needs_k_plus_one_nodes(self):
        assert not is_k_connected(Graph.complete(3), 3)
        assert is_k_connected(Graph.complete(4), 3)

    def test_k1_matches_connectivity(self):
        assert is_k_connected(Graph.path(4), 1)
        assert not is_k_connected(Graph(3, [(0, 1)]), 1)

    def test_k2_matches_biconnectivity(self, diamond_graph, bowtie_graph):
        assert is_k_connected(diamond_graph, 2)
        assert not is_k_connected(bowtie_graph, 2)

    def test_min_degree_shortcut(self):
        # Star: center degree n-1 but leaves have degree 1.
        g = Graph(6, [(0, i) for i in range(1, 6)])
        assert not is_k_connected(g, 2)

    def test_consistent_with_exact_kappa_on_random(self, rng):
        for _ in range(40):
            n = int(rng.integers(4, 22))
            g = random_gnp_graph(n, float(rng.uniform(0.2, 0.7)), rng)
            kappa = vertex_connectivity(g)
            for k in range(0, min(kappa + 3, n)):
                assert is_k_connected(g, k) == (kappa >= k)


class TestAgainstNetworkx:
    def test_random_dense(self, rng):
        for _ in range(60):
            n = int(rng.integers(4, 18))
            g = random_gnp_graph(n, float(rng.uniform(0.3, 0.8)), rng)
            assert vertex_connectivity(g) == nx.node_connectivity(_to_nx(g))

    def test_random_sparse(self, rng):
        for _ in range(60):
            n = int(rng.integers(4, 25))
            g = random_gnp_graph(n, float(rng.uniform(0.05, 0.25)), rng)
            assert vertex_connectivity(g) == nx.node_connectivity(_to_nx(g))

    def test_near_threshold_er(self, rng):
        # The regime the experiments live in: p around ln n / n.
        for _ in range(30):
            n = 30
            p = float(rng.uniform(0.5, 2.0)) * math.log(n) / n
            g = random_gnp_graph(n, p, rng)
            assert vertex_connectivity(g) == nx.node_connectivity(_to_nx(g))


class TestLocalConnectivity:
    def test_same_node_raises(self):
        with pytest.raises(GraphError):
            local_node_connectivity(Graph(3), 1, 1)

    def test_out_of_range_raises(self):
        with pytest.raises(GraphError):
            local_node_connectivity(Graph(3), 0, 9)

    def test_disconnected_pair_zero(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert local_node_connectivity(g, 0, 2) == 0

    def test_adjacent_pair_complete(self):
        # In K_n adjacent local connectivity is n - 1.
        g = Graph.complete(5)
        assert local_node_connectivity(g, 0, 1) == 4

    def test_limit_caps_value(self):
        g = Graph.complete(6)
        assert local_node_connectivity(g, 0, 1, limit=2) == 2

    def test_matches_networkx_nonadjacent(self, rng):
        for _ in range(40):
            n = int(rng.integers(5, 16))
            g = random_gnp_graph(n, 0.4, rng)
            ng = _to_nx(g)
            pairs = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if not g.has_edge(u, v)
            ]
            for u, v in pairs[:5]:
                assert local_node_connectivity(g, u, v) == (
                    nx.connectivity.local_node_connectivity(ng, u, v)
                )

    def test_matches_networkx_adjacent(self, rng):
        for _ in range(25):
            n = int(rng.integers(5, 14))
            g = random_gnp_graph(n, 0.5, rng)
            ng = _to_nx(g)
            pairs = [e for e in g.edges()][:4]
            for u, v in pairs:
                assert local_node_connectivity(g, u, v) == (
                    nx.connectivity.local_node_connectivity(ng, u, v)
                )
