"""Size-axis studies: one declaration per growth sweep.

Covers the tentpole guarantees of the ``num_nodes_grid`` redesign:

* sized scenarios round-trip through JSON (nested per-size rings,
  curves, and pools included) and run identically after the trip;
* malformed grids are rejected eagerly with clear errors;
* deployment ``(size, ring, trial)`` cells are seeded by
  ``SeedSequence(seed, spawn_key=(size_index, ring_index, trial))``,
  so estimates are bit-identical for any worker count *and* match a
  serial per-size reference evaluation using the same seeds;
* ``zero_one`` is a single size-grid declaration whose study backend
  cross-checks against ``backend="legacy"``;
* indicator detection comes from the metric spec, not the values, so
  a pinned value metric renders as mean ± std.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.study import (
    MetricSpec,
    Scenario,
    Study,
    StudyResult,
    render_study_result,
    run_scenario,
)


def sized_scenario(**overrides) -> Scenario:
    base = dict(
        name="grow",
        num_nodes_grid=(60, 100),
        pool_size=1500,
        ring_sizes=((22,), (25,)),
        curves=(((2, 1.0), (2, 0.6)), ((2, 0.8), (2, 0.5))),
        metrics=(MetricSpec("connectivity"),),
        trials=5,
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestSizedJsonRoundTrip:
    def test_round_trip_equality(self):
        scenario = sized_scenario()
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_with_per_size_pools_and_flat_rings(self):
        scenario = sized_scenario(
            pool_size=(1500, 2500), ring_sizes=(22, 26), curves=((2, 1.0),)
        )
        tripped = Scenario.from_json(scenario.to_json())
        assert tripped == scenario
        assert tripped.pool_size_at(1) == 2500
        assert tripped.ring_sizes_at(0) == (22, 26)
        assert tripped.curves_at(1) == ((2, 1.0),)

    def test_to_dict_omits_num_nodes_for_sized(self):
        data = sized_scenario().to_dict()
        assert "num_nodes" not in data
        assert data["num_nodes_grid"] == [60, 100]

    def test_round_tripped_scenario_runs_identically(self):
        scenario = sized_scenario()
        direct = run_scenario(scenario, workers=1)
        tripped = run_scenario(Scenario.from_json(scenario.to_json()), workers=1)
        assert np.array_equal(direct.values, tripped.values)

    def test_study_result_round_trip_keeps_size_axis(self):
        result = Study((sized_scenario(),)).run(workers=1)
        tripped = StudyResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert tripped["grow"].values.shape == (2, 1, 5, 2, 1)
        assert np.array_equal(tripped["grow"].values, result["grow"].values)
        assert tripped["grow"].scenario == sized_scenario()


class TestMalformedGrids:
    def test_num_nodes_and_grid_both_set(self):
        with pytest.raises(ParameterError, match="exactly one of"):
            sized_scenario(num_nodes=100)

    def test_neither_size_declaration(self):
        with pytest.raises(ParameterError, match="num_nodes"):
            Scenario(
                name="x", pool_size=100, trials=1, ring_sizes=(5,),
                curves=((1, 1.0),), metrics=(MetricSpec("connectivity"),),
            )

    def test_duplicate_sizes_rejected(self):
        with pytest.raises(ParameterError, match="distinct"):
            sized_scenario(num_nodes_grid=(60, 60))

    def test_nested_rings_length_mismatch(self):
        with pytest.raises(ParameterError, match="per-size entries"):
            sized_scenario(ring_sizes=((22,),))

    def test_ragged_nested_rings(self):
        with pytest.raises(ParameterError, match="same length"):
            sized_scenario(ring_sizes=((22,), (25, 30)))

    def test_nested_rings_without_grid(self):
        with pytest.raises(ParameterError, match="require num_nodes_grid"):
            Scenario(
                name="x", num_nodes=100, pool_size=1500, trials=2,
                ring_sizes=((22,), (25,)), curves=((2, 1.0),),
                metrics=(MetricSpec("connectivity"),),
            )

    def test_nested_curves_length_mismatch(self):
        with pytest.raises(ParameterError, match="per-size entries"):
            sized_scenario(curves=(((2, 1.0),),))

    def test_ragged_nested_curves(self):
        with pytest.raises(ParameterError, match="same length"):
            sized_scenario(curves=(((2, 1.0),), ((2, 1.0), (2, 0.5))))

    def test_pool_list_length_mismatch(self):
        with pytest.raises(ParameterError, match="pool_size has"):
            sized_scenario(pool_size=(1500,))

    def test_pool_list_without_grid(self):
        with pytest.raises(ParameterError, match="require num_nodes_grid"):
            Scenario(
                name="x", num_nodes=100, pool_size=(1500, 2000), trials=2,
                ring_sizes=(22,), curves=((2, 1.0),),
                metrics=(MetricSpec("connectivity"),),
            )

    def test_protocol_rejects_size_grid(self):
        with pytest.raises(ParameterError, match="only supported for sweep"):
            Scenario(
                name="x", kind="protocol", protocol="coupling",
                num_nodes_grid=(50, 60), pool_size=1000, trials=2,
            )

    def test_per_size_key_parameters_checked(self):
        # Second size's ring exceeds its per-size pool.
        with pytest.raises(ParameterError, match="must not exceed"):
            sized_scenario(pool_size=(1500, 20), ring_sizes=((22,), (25,)))

    def test_from_dict_grid(self):
        data = {
            "name": "g", "num_nodes_grid": [60, 100], "pool_size": 1500,
            "ring_sizes": [[22], [25]], "curves": [[[2, 1.0]], [[2, 0.8]]],
            "metrics": [{"kind": "connectivity"}], "trials": 2,
        }
        scenario = Scenario.from_dict(data)
        assert scenario.sized and scenario.sizes == (60, 100)
        assert scenario.curves_at(1) == ((2, 0.8),)


class TestSizedExecution:
    def test_value_tensor_shape_and_accessors(self):
        res = run_scenario(sized_scenario(), workers=1)
        assert res.values.shape == (2, 1, 5, 2, 1)
        series = res.series("connectivity", (2, 0.8), 25, size=100)
        assert series.shape == (5,)
        est = res.bernoulli(curve=(2, 1.0), ring=22, size=60)
        assert est.trials == 5
        with pytest.raises(ExperimentError, match="pass size="):
            res.series("connectivity", (2, 1.0), 22)
        with pytest.raises(ExperimentError, match="not in scenario"):
            res.series("connectivity", (2, 1.0), 22, size=999)

    @pytest.mark.parametrize("workers_b", [2, 3])
    def test_worker_invariance_bit_exact(self, workers_b):
        a = run_scenario(sized_scenario(), workers=1)
        b = run_scenario(sized_scenario(), workers=workers_b)
        assert np.array_equal(a.values, b.values)

    def test_matches_per_size_reference_seeds(self):
        # The contract the bit-for-bit acceptance rides: cell (s, r, t)
        # of a sized group is the deployment sampled from
        # SeedSequence(seed, spawn_key=(s, r, t)), evaluated on that
        # size's own curves — i.e. exactly the per-size scenarios run
        # one at a time with the same (size, ring, trial) seeds.
        from repro.study.metrics import (
            DeploymentEvaluator,
            evaluate_scenario,
            sample_deployment,
        )
        from repro.utils.rng import grid_seed_sequence

        scenario = sized_scenario()
        values = run_scenario(scenario, workers=2).values
        for si in range(scenario.num_sizes):
            for t in range(scenario.trials):
                rng = np.random.default_rng(grid_seed_sequence(7, si, 0, t))
                dep = sample_deployment(
                    scenario.num_nodes_at(si),
                    scenario.pool_size_at(si),
                    scenario.ring_sizes_at(si)[0],
                    min(q for q, _ in scenario.curves_at(si)),
                    rng,
                )
                ref = evaluate_scenario(
                    DeploymentEvaluator(dep), scenario, {},
                    curves=scenario.curves_at(si),
                )
                assert np.array_equal(values[si, 0, t], ref)

    def test_sized_never_groups_with_plain(self):
        sized = sized_scenario(
            num_nodes_grid=(100,), ring_sizes=(25,), curves=((2, 1.0),)
        )
        plain = Scenario(
            name="plain", num_nodes=100, pool_size=1500, ring_sizes=(25,),
            curves=((2, 1.0),), metrics=(MetricSpec("connectivity"),),
            trials=5, seed=7,
        )
        study = Study((sized, plain))
        assert len(study.compile()) == 2

    def test_sized_scenarios_share_deployments(self):
        a = sized_scenario(name="a")
        b = sized_scenario(name="b", curves=(((2, 1.0),), ((2, 0.8),)))
        study = Study((a, b))
        plans = study.compile()
        assert len(plans) == 1
        result = study.run(workers=1)
        # Equal (q, p) at equal (size, ring, trial) => equal outcomes.
        assert np.array_equal(
            result["a"].values[:, :, :, 0, 0],
            result["b"].values[:, :, :, 0, 0],
        )

    def test_flat_shared_rings_group_with_equivalent_nested(self):
        flat = sized_scenario(
            name="flat", ring_sizes=(22, 25),
            curves=((2, 1.0),),
        )
        nested = sized_scenario(
            name="nested", ring_sizes=((22, 25), (22, 25)),
            curves=((2, 1.0),),
        )
        assert len(Study((flat, nested)).compile()) == 1

    def test_render_has_size_rows(self):
        text = render_study_result(Study((sized_scenario(),)).run(workers=1))
        assert "n grid=[60, 100]" in text
        assert "connectivity" in text


class TestIndicatorDetectionBySpec:
    def _pinned_result(self):
        # Dense parameters pin giant_fraction at exactly 1.0: every
        # ring shares keys with every other and p = 1 keeps all edges.
        scenario = Scenario(
            name="pinned", num_nodes=25, pool_size=40, ring_sizes=(30,),
            curves=((1, 1.0),),
            metrics=(MetricSpec("giant_fraction"), MetricSpec("connectivity")),
            trials=6, seed=3,
        )
        return run_scenario(scenario, workers=1)

    def test_pinned_value_metric_is_not_bernoulli(self):
        res = self._pinned_result()
        series = res.series("giant_fraction", (1, 1.0), 30)
        assert np.isin(series, (0.0, 1.0)).all()  # the heuristic's trap
        with pytest.raises(ExperimentError, match="not an indicator"):
            res.bernoulli("giant_fraction", (1, 1.0), 30)
        # The true indicator still works at the same pinned values.
        assert res.bernoulli("connectivity", (1, 1.0), 30).estimate == 1.0

    def test_pinned_value_metric_renders_mean_std(self):
        from repro.simulation.estimators import BernoulliEstimate

        res = self._pinned_result()
        text = render_study_result(
            StudyResult(results=(res,), provenance={})
        )
        giant_row = next(
            line for line in text.splitlines() if "giant_fraction" in line
        )
        # Mean ± std row: mean 1.0, sample std 0.0, no Wilson interval.
        assert "1.0000" in giant_row and "0.0000" in giant_row
        wilson_low = BernoulliEstimate.from_counts(6, 6).ci_low
        assert f"{wilson_low:.4f}" not in giant_row


class TestZeroOneSingleDeclaration:
    KW = dict(
        trials=4, num_nodes_grid=(80, 120), alpha_offsets=(-2.0, 2.0),
        pool_size=2000,
    )

    def test_one_sized_scenario(self):
        from repro.experiments.zero_one import build_zero_one_study

        study = build_zero_one_study(
            trials=4, num_nodes_grid=(80, 120), alpha_offsets=(-2.0, 2.0),
            pool_size=2000,
        )
        assert len(study.scenarios) == 1
        scenario = study.scenarios[0]
        assert scenario.sized and scenario.sizes == (80, 120)
        plans = study.compile()
        assert len(plans) == 1 and plans[0].sized

    @pytest.mark.parametrize("workers_b", [2, 3])
    def test_worker_invariance(self, workers_b):
        from repro.experiments.zero_one import run_zero_one

        a = run_zero_one(workers=1, **self.KW)
        b = run_zero_one(workers=workers_b, **self.KW)
        assert [
            (pt.estimate.successes, pt.estimate.trials, dict(pt.point))
            for pt in a.points
        ] == [
            (pt.estimate.successes, pt.estimate.trials, dict(pt.point))
            for pt in b.points
        ]

    def test_study_vs_legacy_ci_overlap(self):
        from repro.experiments.zero_one import run_zero_one

        kwargs = dict(
            trials=50, num_nodes_grid=(100,), alpha_offsets=(2.0,),
            pool_size=2000, workers=1,
        )
        study = run_zero_one(backend="study", **kwargs)
        legacy = run_zero_one(backend="legacy", **kwargs)
        for ps, pl in zip(study.points, legacy.points):
            assert ps.point == pl.point
            assert ps.estimate.ci_low <= pl.estimate.ci_high
            assert pl.estimate.ci_low <= ps.estimate.ci_high

    def test_unknown_backend(self):
        from repro.experiments.zero_one import run_zero_one

        with pytest.raises(ParameterError, match="unknown backend"):
            run_zero_one(backend="vibes", **self.KW)


class TestTheorem1GrowthSweep:
    def test_grid_points_carry_n_and_invariance(self):
        from repro.experiments.theorem1_check import run_theorem1_check

        kwargs = dict(
            trials=4, alphas=(0.0,), ks=(1,), num_nodes_grid=(80, 120),
            key_ring_size=40, pool_size=2000,
        )
        a = run_theorem1_check(workers=1, **kwargs)
        b = run_theorem1_check(workers=2, **kwargs)
        assert [pt.point["n"] for pt in a.points] == [80, 120]
        assert [pt.estimate.successes for pt in a.points] == [
            pt.estimate.successes for pt in b.points
        ]

    def test_plain_mode_unchanged(self):
        from repro.experiments.theorem1_check import run_theorem1_check

        result = run_theorem1_check(
            trials=2, alphas=(0.0,), ks=(1,), num_nodes=100,
            key_ring_size=40, pool_size=2000, workers=1,
        )
        assert "n" not in result.points[0].point


class TestKstarScalingCheck:
    def test_growth_grid_monotone(self):
        from repro.experiments.kstar import render_kstar, run_kstar

        result = run_kstar(num_nodes_grid=(500, 1000, 2000))
        growth = [pt for pt in result.points if "n" in pt.point]
        assert len(growth) == 18  # 3 sizes x 6 curves
        by_curve: dict = {}
        for pt in growth:
            by_curve.setdefault((pt.point["q"], pt.point["p"]), []).append(
                pt.point["kstar_exact"]
            )
        for ks in by_curve.values():
            assert ks == sorted(ks, reverse=True)  # K* falls as n grows
        text = render_kstar(result)
        assert "K* growth check" in text and "non-increasing" in text

    def test_growth_grid_order_independent(self):
        # The monotonicity verdict is about K*(n), not grid order: a
        # descending grid must not trip the warning.
        from repro.experiments.kstar import render_kstar, run_kstar

        text = render_kstar(run_kstar(num_nodes_grid=(2000, 500)))
        assert "WARNING" not in text and "non-increasing" in text
