"""Tests for the binomial q-intersection graph and the Lemma 5 coupling."""

from __future__ import annotations

import numpy as np

from repro.keygraphs.binomial_graph import (
    binomial_intersection_edges,
    binomial_intersection_graph,
    coupled_ring_pair,
)
from repro.keygraphs.uniform_graph import edges_from_rings


class TestBinomialGraph:
    def test_edges_valid(self):
        edges = binomial_intersection_edges(40, 0.08, 150, 1, seed=1)
        if edges.size:
            assert edges.min() >= 0 and edges.max() < 40
            assert (edges[:, 0] < edges[:, 1]).all()

    def test_zero_probability_no_edges(self):
        assert binomial_intersection_edges(10, 0.0, 50, 1, seed=2).shape == (0, 2)

    def test_graph_wrapper(self):
        g = binomial_intersection_graph(20, 0.1, 100, 1, seed=3)
        assert g.num_nodes == 20

    def test_edge_density_increases_with_x(self):
        counts = []
        for x in (0.02, 0.05, 0.1):
            total = sum(
                binomial_intersection_edges(50, x, 150, 1, seed=s).shape[0]
                for s in range(10)
            )
            counts.append(total)
        assert counts[0] < counts[1] < counts[2]


class TestCoupledRingPair:
    def test_success_flag_matches_sizes(self):
        for seed in range(20):
            uniform, binomial, success = coupled_ring_pair(
                30, 12, 0.05, 200, seed=seed
            )
            sizes_ok = all(r.size <= 12 for r in binomial)
            if success:
                assert sizes_ok
            else:
                assert any(r.size > 12 for r in binomial)

    def test_subset_property_on_success(self):
        for seed in range(20):
            uniform, binomial, success = coupled_ring_pair(
                30, 12, 0.04, 200, seed=seed
            )
            if not success:
                continue
            for i, sub in enumerate(binomial):
                assert np.isin(sub, uniform[i]).all(), f"node {i} not a sub-ring"

    def test_graph_subset_property_on_success(self):
        # The point of Lemma 5: H_q edges embed into G_q edges.
        # x = 0.03 keeps Bin(250, x) comfortably below K = 15 so most
        # couplings succeed.
        hits = 0
        for seed in range(15):
            uniform, binomial, success = coupled_ring_pair(
                40, 15, 0.03, 250, seed=seed
            )
            if not success:
                continue
            hits += 1
            g_edges = {tuple(map(int, e)) for e in edges_from_rings(uniform, 2)}
            h_edges = {tuple(map(int, e)) for e in edges_from_rings(binomial, 2)}
            assert h_edges <= g_edges
        assert hits > 0  # the coupling succeeded at least sometimes

    def test_uniform_part_is_proper_ring(self):
        uniform, _, _ = coupled_ring_pair(10, 5, 0.02, 50, seed=1)
        assert uniform.shape == (10, 5)
        assert (np.diff(uniform, axis=1) > 0).all()

    def test_deterministic(self):
        a = coupled_ring_pair(15, 6, 0.05, 80, seed=42)
        b = coupled_ring_pair(15, 6, 0.05, 80, seed=42)
        assert np.array_equal(a[0], b[0])
        assert all(np.array_equal(x, y) for x, y in zip(a[1], b[1]))
        assert a[2] == b[2]

    def test_high_x_forces_failure(self):
        # x P far above K: every node draws too many keys.
        _, _, success = coupled_ring_pair(10, 3, 0.9, 100, seed=5)
        assert not success
