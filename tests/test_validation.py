"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.utils.validation import (
    check_finite_float,
    check_in_range,
    check_key_parameters,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_returns_python_int_for_numpy_input(self):
        assert type(check_positive_int(np.int32(3), "x")) is int

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            check_positive_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(ParameterError):
            check_positive_int("3", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ParameterError, match="widgets"):
            check_positive_int(0, "widgets")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_nonnegative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_nonnegative_int(False, "x")


class TestCheckProbability:
    def test_accepts_endpoints(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.37, "p") == 0.37

    def test_rejects_above_one(self):
        with pytest.raises(ParameterError):
            check_probability(1.0001, "p")

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_probability(-0.1, "p")

    def test_rejects_nan(self):
        with pytest.raises(ParameterError):
            check_probability(float("nan"), "p")

    def test_disallow_zero(self):
        with pytest.raises(ParameterError):
            check_probability(0.0, "p", allow_zero=False)

    def test_disallow_zero_still_accepts_one(self):
        assert check_probability(1.0, "p", allow_zero=False) == 1.0

    def test_coerces_int(self):
        assert check_probability(1, "p") == 1.0


class TestCheckFiniteAndRange:
    def test_finite_accepts_negative(self):
        assert check_finite_float(-3.5, "x") == -3.5

    def test_finite_rejects_inf(self):
        with pytest.raises(ParameterError):
            check_finite_float(float("inf"), "x")

    def test_range_inclusive(self):
        assert check_in_range(1.0, "x", low=1.0, high=2.0) == 1.0

    def test_range_exclusive_low(self):
        with pytest.raises(ParameterError):
            check_in_range(1.0, "x", low=1.0, low_inclusive=False)

    def test_range_exclusive_high(self):
        with pytest.raises(ParameterError):
            check_in_range(2.0, "x", high=2.0, high_inclusive=False)

    def test_range_above_high(self):
        with pytest.raises(ParameterError):
            check_in_range(3.0, "x", high=2.0)


class TestCheckKeyParameters:
    def test_valid_triple(self):
        check_key_parameters(30, 1000, 2)  # no raise

    def test_ring_exceeds_pool(self):
        with pytest.raises(ParameterError):
            check_key_parameters(1001, 1000, 1)

    def test_overlap_exceeds_ring(self):
        with pytest.raises(ParameterError):
            check_key_parameters(5, 1000, 6)

    def test_boundary_ring_equals_pool(self):
        check_key_parameters(10, 10, 1)  # allowed boundary

    def test_boundary_overlap_equals_ring(self):
        check_key_parameters(4, 100, 4)  # allowed boundary

    def test_zero_overlap_rejected(self):
        with pytest.raises(ParameterError):
            check_key_parameters(10, 100, 0)
