"""Tests for the on/off channel model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.onoff import OnOffChannel, OnOffRealization, sample_onoff_mask
from repro.exceptions import ParameterError


class TestSampleOnOffMask:
    def test_shape_and_dtype(self):
        mask = sample_onoff_mask(100, 0.5, seed=1)
        assert mask.shape == (100,) and mask.dtype == bool

    def test_p_one_all_on(self):
        assert sample_onoff_mask(50, 1.0, seed=1).all()

    def test_p_zero_all_off(self):
        assert not sample_onoff_mask(50, 0.0, seed=1).any()

    def test_rate_close_to_p(self):
        mask = sample_onoff_mask(20000, 0.3, seed=2)
        assert abs(mask.mean() - 0.3) < 0.02

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            sample_onoff_mask(-1, 0.5)

    def test_empty(self):
        assert sample_onoff_mask(0, 0.5, seed=1).shape == (0,)


class TestOnOffRealization:
    def test_repeated_query_consistent(self):
        real = OnOffRealization(10, 0.5, seed=3)
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        first = real.edge_mask(edges)
        for _ in range(5):
            assert np.array_equal(real.edge_mask(edges), first)

    def test_orientation_invariant(self):
        real = OnOffRealization(10, 0.5, seed=4)
        a = real.edge_mask(np.array([[1, 7]]))
        b = real.edge_mask(np.array([[7, 1]]))
        assert a[0] == b[0]

    def test_marginal_rate(self):
        real = OnOffRealization(300, 0.4, seed=5)
        pairs = np.array([(u, v) for u in range(300) for v in range(u + 1, u + 4) if v < 300])
        mask = real.edge_mask(pairs)
        assert abs(mask.mean() - 0.4) < 0.05

    def test_channel_edges_consistent_with_mask(self):
        real = OnOffRealization(12, 0.5, seed=6)
        probe = np.array([[0, 1], [5, 9]])
        states = real.edge_mask(probe)
        full = {tuple(map(int, e)) for e in real.channel_edges()}
        assert ((0, 1) in full) == bool(states[0])
        assert ((5, 9) in full) == bool(states[1])

    def test_zero_prob_rejected(self):
        with pytest.raises(ParameterError):
            OnOffRealization(5, 0.0)

    def test_empty_edges(self):
        real = OnOffRealization(5, 0.5, seed=7)
        assert real.edge_mask(np.empty((0, 2))).shape == (0,)


class TestOnOffChannel:
    def test_edge_probability(self):
        assert OnOffChannel(0.37).edge_probability() == 0.37

    def test_sample_gives_realization(self):
        real = OnOffChannel(0.5).sample(10, seed=1)
        assert isinstance(real, OnOffRealization)
        assert real.num_nodes == 10

    def test_channel_graph_edge_count(self):
        edges = OnOffChannel(0.2).sample_channel_graph_edges(200, seed=2)
        expect = 0.2 * 200 * 199 / 2
        assert abs(edges.shape[0] - expect) < 5 * np.sqrt(expect)

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            OnOffChannel(1.5)
        with pytest.raises(ParameterError):
            OnOffChannel(0.0)
