"""Tests for edge connectivity λ(G) — the Whitney chain completion."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.edge_connectivity import (
    edge_connectivity,
    is_k_edge_connected,
    local_edge_connectivity,
)
from repro.graphs.graph import Graph
from repro.graphs.vertex_connectivity import vertex_connectivity
from tests.conftest import random_gnp_graph


def _to_nx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(range(g.num_nodes))
    ng.add_edges_from(g.edges())
    return ng


class TestNamedGraphs:
    def test_complete(self):
        for n in (2, 4, 6):
            assert edge_connectivity(Graph.complete(n)) == n - 1

    def test_cycle_is_two(self):
        assert edge_connectivity(Graph.cycle(6)) == 2

    def test_path_is_one(self):
        assert edge_connectivity(Graph.path(5)) == 1

    def test_disconnected_zero(self):
        assert edge_connectivity(Graph(4, [(0, 1), (2, 3)])) == 0

    def test_single_node_zero(self):
        assert edge_connectivity(Graph(1)) == 0

    def test_bridge_graph(self, bowtie_graph):
        # Bowtie has no bridge (two triangles at a cut vertex): λ = 2.
        assert edge_connectivity(bowtie_graph) == 2


class TestWhitneyChain:
    def test_kappa_le_lambda_le_delta(self, rng):
        for _ in range(40):
            g = random_gnp_graph(int(rng.integers(3, 20)), float(rng.uniform(0.15, 0.6)), rng)
            kappa = vertex_connectivity(g)
            lam = edge_connectivity(g)
            delta = int(g.degrees().min())
            assert kappa <= lam <= delta


class TestAgainstNetworkx:
    def test_global_matches(self, rng):
        for _ in range(40):
            g = random_gnp_graph(int(rng.integers(3, 18)), float(rng.uniform(0.15, 0.6)), rng)
            assert edge_connectivity(g) == nx.edge_connectivity(_to_nx(g))

    def test_local_matches(self, rng):
        for _ in range(20):
            g = random_gnp_graph(int(rng.integers(4, 14)), 0.4, rng)
            ng = _to_nx(g)
            s, t = 0, g.num_nodes - 1
            assert local_edge_connectivity(g, s, t) == nx.edge_connectivity(ng, s, t)


class TestDecision:
    def test_k_zero_vacuous(self):
        assert is_k_edge_connected(Graph(3), 0)

    def test_matches_exact_lambda(self, rng):
        for _ in range(25):
            g = random_gnp_graph(int(rng.integers(3, 15)), 0.35, rng)
            lam = edge_connectivity(g)
            for k in range(0, lam + 2):
                assert is_k_edge_connected(g, k) == (lam >= k)

    def test_same_node_raises(self):
        with pytest.raises(ValueError):
            local_edge_connectivity(Graph(3), 1, 1)
