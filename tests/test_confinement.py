"""Tests for the Lemma 1 confinement constructions."""

from __future__ import annotations

import math

import pytest

from repro.core.confinement import (
    ConfinementCase,
    confine_above,
    confine_below,
)
from repro.core.scaling import channel_prob_for_alpha, deviation_alpha
from repro.params import QCompositeParams


def params_at_alpha(alpha: float, n: int = 1000, K: int = 60, P: int = 10000, q: int = 2):
    p = channel_prob_for_alpha(n, K, P, q, alpha, k=1)
    return QCompositeParams(
        num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=p
    )


class TestConfineAbove:
    def test_large_alpha_clipped_to_loglog(self):
        params = params_at_alpha(5.0)
        result = confine_above(params, k=1)
        loglog = math.log(math.log(1000))
        assert result.alpha_original == pytest.approx(5.0, abs=1e-9)
        assert result.alpha_confined == pytest.approx(loglog, abs=1e-6)

    def test_channel_only_shrinks(self):
        params = params_at_alpha(5.0)
        result = confine_above(params, k=1)
        assert result.confined.channel_prob <= params.channel_prob
        assert result.confined.key_ring_size == params.key_ring_size
        assert result.case is ConfinementCase.SUBGRAPH_CHANNEL

    def test_small_alpha_untouched(self):
        params = params_at_alpha(0.5)  # below ln ln 1000 ≈ 1.93
        result = confine_above(params, k=1)
        assert result.confined == params

    def test_k2_variant(self):
        n, K, P, q = 1000, 70, 10000, 2
        p = channel_prob_for_alpha(n, K, P, q, 6.0, k=2)
        params = QCompositeParams(
            num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=p
        )
        result = confine_above(params, k=2)
        assert result.alpha_confined == pytest.approx(
            math.log(math.log(n)), abs=1e-6
        )


class TestConfineBelow:
    def test_case1_channel_raise(self):
        # alpha very negative but the key graph alone can reach the
        # lifted target: case ➊ raises p, keeps K.
        params = params_at_alpha(-4.0)
        result = confine_below(params, k=1)
        assert result.case is ConfinementCase.SUPERGRAPH_CHANNEL
        assert result.confined.channel_prob >= params.channel_prob
        assert result.confined.key_ring_size == params.key_ring_size
        assert result.alpha_confined == pytest.approx(
            -math.log(math.log(1000)), abs=1e-6
        )

    def test_case2_ring_grow(self):
        # Key graph too weak even at p = 1: case ➋ grows the ring.
        n, K, P, q = 1000, 30, 10000, 2
        params = QCompositeParams(
            num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=0.9
        )
        assert deviation_alpha(params, 1) < -math.log(math.log(n))
        result = confine_below(params, k=1)
        assert result.case is ConfinementCase.SUPERGRAPH_RING
        assert result.confined.channel_prob == 1.0
        assert result.confined.key_ring_size >= K

    def test_case2_ring_is_maximal(self):
        # Eq. (32): K̂ is the largest ring whose s stays below the target.
        n, K, P, q = 1000, 30, 10000, 2
        params = QCompositeParams(
            num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=0.9
        )
        result = confine_below(params, k=1)
        from repro.probability.hypergeometric import overlap_survival
        from repro.probability.limits import edge_probability_from_alpha

        target = edge_probability_from_alpha(
            max(deviation_alpha(params, 1), -math.log(math.log(n))), n, 1
        )
        k_hat = result.confined.key_ring_size
        assert overlap_survival(k_hat, P, q) <= target
        assert overlap_survival(k_hat + 1, P, q) > target

    def test_confined_alpha_never_below_original(self):
        for alpha in (-6.0, -3.0, -2.5):
            params = params_at_alpha(alpha)
            result = confine_below(params, k=1)
            assert result.alpha_confined >= result.alpha_original - 1e-9

    def test_supergraph_edge_probability_dominates(self):
        # The lifted design must have a larger edge probability — the
        # analytic face of "spanning supergraph".
        params = params_at_alpha(-5.0)
        result = confine_below(params, k=1)
        assert (
            result.confined.edge_probability()
            >= params.edge_probability() - 1e-15
        )

    def test_to_dict(self):
        result = confine_below(params_at_alpha(-4.0), k=1)
        d = result.to_dict()
        assert "case" in d and "alpha_confined" in d
