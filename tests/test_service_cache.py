"""Content-addressed cache: cold/warm/extension bit-identity.

The contract: whatever the cache holds, ``run_cached`` returns values
bit-identical to a cold one-shot run — a hit truncates absolute-indexed
trial slots, an extension reruns only the identically-seeded missing
window, and fault reports from stored and delta runs fold without
double-counting.  Exercised with the warm pool on and off and with
chaos injection active, mirroring the PR 6 convergence proofs.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.service.cache import CACHE_FORMAT, CacheEntry, ResultCache, run_cached
from repro.service import events
from repro.simulation.faults import ChaosSpec, FaultStrategy
from repro.simulation.scheduler import SchedulerPolicy, combine_fault_reports
from repro.study.compiler import Study
from repro.study.scenario import MetricSpec, Scenario

WORKERS = 2


def _scenario(trials=6):
    return Scenario(
        name="cached",
        num_nodes_grid=(30, 40),
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        trials=trials,
        seed=11,
        metrics=(MetricSpec("connectivity"),),
    )


def _chaos_policy():
    spec = ChaosSpec(
        seed=5,
        strategies=(
            FaultStrategy(kind="crash", probability=0.9, max_attempt=2),
        ),
    )
    return SchedulerPolicy(max_retries=4, backoff_base=0.01, chaos=spec)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.mark.parametrize("persistent", ["0", "1"])
class TestDispositionsBitIdentical:
    """Cold → warm → extension, pool off and on, always exact."""

    def test_cold_warm_extension(self, cache, persistent, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
        study = Study((_scenario(),))
        baseline = study.run(workers=WORKERS)

        cold = run_cached(study, cache, workers=WORKERS)
        assert cold.provenance["cache"]["disposition"] == "miss"
        assert cold.provenance["cache"]["executed_units"] > 0
        assert np.array_equal(baseline["cached"].values, cold["cached"].values)

        warm = run_cached(study, cache, workers=WORKERS)
        assert warm.provenance["cache"]["disposition"] == "hit"
        assert warm.provenance["cache"]["executed_units"] == 0
        assert warm.provenance["units"] == 0
        assert np.array_equal(baseline["cached"].values, warm["cached"].values)

        extended = Study((_scenario(trials=10),))
        base_ext = extended.run(workers=WORKERS)
        ext = run_cached(extended, cache, workers=WORKERS)
        info = ext.provenance["cache"]
        assert info["disposition"] == "extension"
        assert info["delta_window"] == [6, 10]
        # Only the delta window executed: work units still span every
        # grid column, but the deployments they computed cover only the
        # 4-trial delta, not the full 10.
        assert info["executed_units"] == ext.provenance["units"] > 0
        assert ext.provenance["deployments"] < base_ext.provenance["deployments"]
        assert np.array_equal(base_ext["cached"].values, ext["cached"].values)

        # The extension stored back: the original request now truncates.
        trunc = run_cached(study, cache, workers=WORKERS)
        assert trunc.provenance["cache"]["disposition"] == "hit"
        assert np.array_equal(baseline["cached"].values, trunc["cached"].values)

    def test_chaos_runs_hit_the_same_cache(self, cache, persistent, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
        study = Study((_scenario(),))
        baseline = study.run(workers=WORKERS)

        cold = run_cached(study, cache, workers=WORKERS, scheduler=_chaos_policy())
        assert cold.provenance["cache"]["disposition"] == "miss"
        assert cold.provenance["faults"]["crashes"] > 0
        assert np.array_equal(baseline["cached"].values, cold["cached"].values)

        extended = Study((_scenario(trials=10),))
        base_ext = extended.run(workers=WORKERS)
        ext = run_cached(
            extended, cache, workers=WORKERS, scheduler=_chaos_policy()
        )
        assert ext.provenance["cache"]["disposition"] == "extension"
        assert np.array_equal(base_ext["cached"].values, ext["cached"].values)


class TestFaultDedup:
    def test_extension_does_not_double_count_stored_faults(self, cache):
        study = Study((_scenario(),))
        cold = run_cached(study, cache, workers=WORKERS, scheduler=_chaos_policy())
        cold_faults = cold.provenance["faults"]

        extended = Study((_scenario(trials=10),))
        ext = run_cached(
            extended, cache, workers=WORKERS, scheduler=_chaos_policy()
        )
        ext_faults = ext.provenance["faults"]
        # The stored report rides along exactly once; the delta round
        # adds its own on top.  A double-count would at least double
        # the cold attempt total.
        assert ext_faults["attempts"] > cold_faults["attempts"]
        assert ext_faults["attempts"] < 2 * cold_faults["attempts"] + 1

        # Re-requesting the extended study is a pure hit: this run
        # executed nothing, so it reports no faults of its own — the
        # folded history comes back unchanged from the store under the
        # cache record, not re-summed and not resurrected as "faults".
        again = run_cached(extended, cache, workers=WORKERS)
        assert again.provenance["cache"]["disposition"] == "hit"
        assert "faults" not in again.provenance
        stored = again.provenance["cache"]["stored_faults"]
        assert stored["attempts"] == ext_faults["attempts"]

    def test_hit_after_faulted_run_has_fault_free_provenance(self, cache):
        """Regression: cached-with-faults → fault-free rerun provenance.

        A chaos-supervised cold run stores its fault report with the
        result.  A later fault-free rerun answered entirely from the
        cache must not claim those crashes as its own execution: no
        top-level ``"faults"``, zero units — while the history stays
        inspectable under ``cache.stored_faults``.
        """
        study = Study((_scenario(),))
        cold = run_cached(study, cache, workers=WORKERS, scheduler=_chaos_policy())
        assert cold.provenance["faults"]["crashes"] > 0

        rerun = run_cached(study, cache, workers=WORKERS)
        info = rerun.provenance["cache"]
        assert info["disposition"] == "hit"
        assert info["executed_units"] == 0
        assert "faults" not in rerun.provenance
        assert info["stored_faults"]["crashes"] == cold.provenance["faults"]["crashes"]
        assert np.array_equal(cold["cached"].values, rerun["cached"].values)

    def test_fault_free_history_leaves_hit_provenance_clean(self, cache):
        """A hit on an entry stored without faults carries neither key."""
        study = Study((_scenario(),))
        run_cached(study, cache, workers=WORKERS)
        hit = run_cached(study, cache, workers=WORKERS)
        assert hit.provenance["cache"]["disposition"] == "hit"
        assert "faults" not in hit.provenance
        assert "stored_faults" not in hit.provenance["cache"]

    def test_combine_is_idempotent_on_duplicates(self):
        report = {
            "units": 2,
            "attempts": 3,
            "completed": 2,
            "crashes": 1,
            "window": [0, 6],
            "events": [
                {"unit": 0, "attempt": 0, "kind": "crash", "detail": "boom"}
            ],
            "dead_units": [],
        }
        twice = combine_fault_reports([report, json.loads(json.dumps(report))])
        assert twice["attempts"] == 3
        assert twice["crashes"] == 1
        assert len(twice["events"]) == 1

    def test_distinct_windows_both_survive(self):
        base = {
            "units": 1,
            "attempts": 1,
            "completed": 1,
            "events": [{"unit": 0, "attempt": 0, "kind": "crash"}],
            "dead_units": [],
        }
        first = dict(base, window=[0, 6])
        second = dict(base, window=[6, 10])
        combined = combine_fault_reports([first, second])
        # Same (unit, attempt, kind) in different trial windows are
        # genuinely different events.
        assert combined["attempts"] == 2
        assert len(combined["events"]) == 2
        # The service folds folded reports: a stored combined report
        # re-entering the fold verbatim stays fully deduplicated, and
        # even a constituent resurfacing cannot duplicate its events
        # (they carry their window stamps).
        refolded = combine_fault_reports([combined, json.loads(json.dumps(combined))])
        assert refolded["attempts"] == 2
        assert len(refolded["events"]) == 2
        with_constituent = combine_fault_reports([combined, first])
        assert len(with_constituent["events"]) == 2


class TestStorePolicy:
    def test_store_rejects_partial_results(self, cache):
        study = Study((_scenario(),))
        result = study.run(workers=WORKERS)["cached"]
        holed = result.values.copy()
        holed[0, 0, 0, 0, 0] = np.nan
        assert cache.store(dataclasses.replace(result, values=holed)) is False
        assert cache.lookup(result.scenario) is None

    def test_store_rejects_window_shards(self, cache):
        study = Study((_scenario(),))
        shard = study.run_extension(2, 4, workers=WORKERS)["cached"]
        assert shard.trial_offset == 2
        assert cache.store(shard) is False

    def test_store_keeps_the_widest_result(self, cache):
        wide = Study((_scenario(trials=10),)).run(workers=WORKERS)["cached"]
        narrow = Study((_scenario(trials=4),)).run(workers=WORKERS)["cached"]
        assert cache.store(wide) is True
        assert cache.store(narrow) is False  # does not regress coverage
        entry = cache.lookup(wide.scenario)
        assert isinstance(entry, CacheEntry) and entry.trials == 10

    def test_lookup_survives_corrupt_entries(self, cache):
        scenario = _scenario()
        key = scenario.content_hash()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")
        assert cache.lookup(scenario) is None
        path.write_text(json.dumps({"format": "wrong/v9", "scenario_hash": key}))
        assert cache.lookup(scenario) is None
        path.write_text(
            json.dumps({"format": CACHE_FORMAT, "scenario_hash": "0" * 64})
        )
        assert cache.lookup(scenario) is None


class TestBypass:
    def test_mixed_trial_counts_bypass(self, cache):
        study = Study(
            (
                _scenario(trials=4),
                dataclasses.replace(_scenario(trials=6), name="other"),
            )
        )
        result = run_cached(study, cache, workers=WORKERS)
        assert result.provenance["cache"]["disposition"] == "bypass"
        assert cache.lookup(study.scenarios[0]) is None

    def test_protocol_scenarios_bypass(self, cache):
        protocol = Scenario(
            name="proto",
            kind="protocol",
            num_nodes=30,
            pool_size=200,
            trials=2,
            seed=3,
            protocol="coupling",
            protocol_params={"key_ring_size": 12, "q": 1},
        )
        result = run_cached(Study((protocol,)), cache, workers=1)
        assert result.provenance["cache"]["disposition"] == "bypass"

    def test_rejects_non_cache(self):
        with pytest.raises(ParameterError, match="ResultCache"):
            run_cached(Study((_scenario(),)), cache="/tmp/nope", workers=1)


class TestCacheEvents:
    def test_dispositions_emit(self, cache):
        study = Study((_scenario(),))
        with events.capture_events(
            kinds=("cache_miss", "cache_hit", "cache_extension")
        ) as captured:
            run_cached(study, cache, workers=WORKERS)
            run_cached(study, cache, workers=WORKERS)
            run_cached(Study((_scenario(trials=8),)), cache, workers=WORKERS)
        kinds = [event.kind for event in captured]
        assert kinds == ["cache_miss", "cache_hit", "cache_extension"]
        assert captured[2].fields["delta_window"] == [6, 8]
