"""Tests for Lemma 2 asymptotics of the edge probability."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ParameterError
from repro.probability.asymptotics import (
    asymptotic_relative_error,
    asymptotics_report,
    edge_probability_asymptotic,
    key_ring_size_for_edge_probability,
)
from repro.probability.hypergeometric import overlap_survival


class TestAsymptoticFormula:
    def test_formula_value(self):
        # (1/2!) (K^2/P)^2 at K=35, P=10000.
        expect = 0.5 * (35 * 35 / 10000) ** 2
        assert edge_probability_asymptotic(35, 10000, 2) == pytest.approx(expect)

    def test_accepts_real_K(self):
        v = edge_probability_asymptotic(34.5, 10000, 2)
        assert 0 < v < 1

    def test_relative_error_shrinks_with_both_conditions(self):
        # Lemma 2 needs K = ω(1) AND K²/P = o(1): grow K while K²/P
        # shrinks, and the relative error must decrease toward 0.
        configs = [(35, 10_000), (70, 80_000), (140, 640_000), (280, 5_120_000)]
        errs = [abs(asymptotic_relative_error(K, P, 2)) for K, P in configs]
        assert all(a > b for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 0.02

    def test_asymptotic_overestimates_at_figure1_scale(self):
        # Documented behaviour behind the K* discrepancy: the Lemma 2
        # form exceeds the exact tail at the paper's (K, P).
        assert asymptotic_relative_error(35, 10000, 2) > 0.0
        assert asymptotic_relative_error(60, 10000, 3) > 0.0

    def test_report_fields(self):
        rep = asymptotics_report(40, 10000, 2)
        assert set(rep) == {
            "exact",
            "asymptotic",
            "relative_error",
            "ratio_K2_over_P",
        }
        assert rep["exact"] == pytest.approx(overlap_survival(40, 10000, 2))
        assert rep["ratio_K2_over_P"] == pytest.approx(0.16)


class TestInverse:
    def test_roundtrip(self):
        for q in (1, 2, 3):
            target = 0.007
            K = key_ring_size_for_edge_probability(target, 10000, q)
            assert edge_probability_asymptotic(K, 10000, q) == pytest.approx(
                target, rel=1e-9
            )

    def test_target_one_rejected(self):
        with pytest.raises(ParameterError):
            key_ring_size_for_edge_probability(1.0, 10000, 2)

    def test_target_zero_rejected(self):
        with pytest.raises(ParameterError):
            key_ring_size_for_edge_probability(0.0, 10000, 2)

    def test_matches_paper_kstar_q2(self):
        # ceil of the continuous solution reproduces the paper's 35.
        tau = math.log(1000) / 1000
        K = key_ring_size_for_edge_probability(tau, 10000, 2)
        assert math.ceil(K) == 35
