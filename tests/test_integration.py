"""Integration tests: Monte Carlo vs theory at moderate scale.

These are end-to-end checks of the headline claims with enough trials
to be statistically meaningful but small enough networks to stay fast.
Tolerances are deliberately generous: at these ``n`` the limit law has
finite-size bias of a few percentage points (the Poisson refinement
tracks tighter, which is asserted too).
"""

from __future__ import annotations

import math


from repro.core.mindegree import min_degree_probability_poisson
from repro.core.scaling import channel_prob_for_alpha
from repro.params import QCompositeParams
from repro.simulation.runners import (
    estimate_agreement,
    estimate_connectivity,
    estimate_min_degree,
    sample_degree_counts,
)

N = 400
POOL = 10000
RING = 60
Q = 2
TRIALS = 150


def params_at(alpha: float, k: int = 1) -> QCompositeParams:
    p = channel_prob_for_alpha(N, RING, POOL, Q, alpha, k)
    return QCompositeParams(
        num_nodes=N, key_ring_size=RING, pool_size=POOL, overlap=Q, channel_prob=p
    )


class TestConnectivityLaw:
    def test_deep_subcritical_rarely_connected(self):
        est = estimate_connectivity(params_at(-3.0), TRIALS, seed=101)
        assert est.estimate < 0.15

    def test_deep_supercritical_usually_connected(self):
        est = estimate_connectivity(params_at(4.0), TRIALS, seed=102)
        assert est.estimate > 0.85

    def test_critical_point_tracks_refined_prediction(self):
        params = params_at(0.0)
        est = estimate_connectivity(params, TRIALS, seed=103)
        refined = min_degree_probability_poisson(params, 1)
        # Wilson CI at 150 trials has half-width ~0.08; allow bias room.
        assert abs(est.estimate - refined) < 0.15
        # And the limit law itself is in the right neighbourhood.
        assert abs(est.estimate - math.exp(-1.0)) < 0.2

    def test_monotone_in_alpha(self):
        estimates = [
            estimate_connectivity(params_at(a), 100, seed=104 + int(a)).estimate
            for a in (-2.0, 0.0, 2.0, 4.0)
        ]
        assert estimates[0] < estimates[-1]
        assert estimates == sorted(estimates)


class TestMinDegreeLaw:
    def test_min_degree_tracks_poisson_refinement(self):
        for alpha in (-1.0, 1.0):
            params = params_at(alpha)
            est = estimate_min_degree(params, 1, TRIALS, seed=110 + int(alpha))
            refined = min_degree_probability_poisson(params, 1)
            assert abs(est.estimate - refined) < 0.12, alpha

    def test_k2_ordering_and_agreement(self):
        params = params_at(1.0, k=2)
        deg, conn, agreement = estimate_agreement(params, 2, 80, seed=112)
        assert conn.estimate <= deg.estimate
        # Lemma 8/Theorem 1 equivalence: disagreement is rare.
        assert agreement > 0.85


class TestDegreePoissonLaw:
    def test_isolated_count_mean_matches_lambda(self):
        from repro.core.degree_distribution import lambda_nh_exact

        params = params_at(0.0)
        counts = sample_degree_counts(params, 0, 200, seed=120)
        lam = lambda_nh_exact(N, params.edge_probability(), 0)
        # Poisson(λ): mean λ, sd sqrt(λ); sample-mean sd = sqrt(λ/200).
        assert abs(counts.mean() - lam) < 5 * math.sqrt(lam / 200) + 0.05

    def test_degree_one_count_matches_lambda(self):
        from repro.core.degree_distribution import lambda_nh_exact

        params = params_at(0.0)
        counts = sample_degree_counts(params, 1, 200, seed=121)
        lam = lambda_nh_exact(N, params.edge_probability(), 1)
        assert abs(counts.mean() - lam) < 5 * math.sqrt(lam / 200) + 0.1


class TestEschenauerGligorSpecialCase:
    def test_q1_threshold_behaviour(self):
        # The q = 1 (EG scheme) case: K chosen at the threshold for n.
        n, pool = 300, 5000
        from repro.core.design import minimal_key_ring_size

        kstar = minimal_key_ring_size(n, pool, 1, 1.0)
        below = QCompositeParams(
            num_nodes=n, key_ring_size=max(kstar - 4, 2), pool_size=pool, overlap=1
        )
        above = QCompositeParams(
            num_nodes=n, key_ring_size=kstar + 4, pool_size=pool, overlap=1
        )
        p_below = estimate_connectivity(below, 100, seed=130).estimate
        p_above = estimate_connectivity(above, 100, seed=131).estimate
        assert p_above - p_below > 0.3
