"""Chaos-injection harness: specs, determinism, and the middleware."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InjectedFailure, ParameterError
from repro.simulation.faults import (
    CHAOS_ENV_VAR,
    STRATEGY_KINDS,
    ChaosSpec,
    FailureInjector,
    FaultStrategy,
    chaos_from_env,
    corrupt_payload,
    load_chaos,
)


class TestFaultStrategy:
    def test_round_trip(self):
        strategy = FaultStrategy(kind="delay", probability=0.3, delay=0.1, max_attempt=2)
        assert FaultStrategy.from_dict(strategy.to_dict()) == strategy

    def test_non_delay_omits_delay_field(self):
        assert "delay" not in FaultStrategy(kind="crash", probability=0.5).to_dict()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode", "probability": 0.5},
            {"kind": "crash", "probability": 1.5},
            {"kind": "crash", "probability": -0.1},
            {"kind": "delay", "probability": 0.5, "delay": -1.0},
            {"kind": "crash", "probability": 0.5, "max_attempt": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            FaultStrategy(**kwargs)

    def test_unknown_dict_fields_rejected(self):
        with pytest.raises(ParameterError, match="unknown chaos strategy fields"):
            FaultStrategy.from_dict({"kind": "crash", "probability": 0.5, "p": 1})

    def test_eligibility_window(self):
        strategy = FaultStrategy(kind="crash", probability=1.0, max_attempt=2)
        assert strategy.eligible(0) and strategy.eligible(1)
        assert not strategy.eligible(2)
        unbounded = FaultStrategy(kind="crash", probability=1.0)
        assert unbounded.eligible(10**6)


class TestChaosSpec:
    def test_json_round_trip(self):
        spec = ChaosSpec(
            seed=7,
            strategies=(
                FaultStrategy(kind="crash", probability=0.3, max_attempt=2),
                FaultStrategy(kind="delay", probability=0.5, delay=0.1),
            ),
        )
        assert ChaosSpec.from_json(spec.to_json()) == spec

    def test_coerces_strategy_dicts(self):
        spec = ChaosSpec(seed=1, strategies=({"kind": "drop", "probability": 0.2},))
        assert spec.strategies == (FaultStrategy(kind="drop", probability=0.2),)

    def test_seed_validation(self):
        with pytest.raises(ParameterError):
            ChaosSpec(seed=-1)
        with pytest.raises(ParameterError):
            ChaosSpec(seed=True)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ParameterError, match="unknown chaos spec fields"):
            ChaosSpec.from_dict({"seed": 1, "strategy": []})


class TestFailureInjectorPlan:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(
            seed=3,
            strategies=tuple(
                FaultStrategy(kind=kind, probability=0.5) for kind in STRATEGY_KINDS
            ),
        )
        a, b = FailureInjector(spec), FailureInjector(spec)
        for unit in range(20):
            for attempt in range(3):
                assert a.plan(unit, attempt) == b.plan(unit, attempt)

    def test_probability_extremes(self):
        always = ChaosSpec(seed=0, strategies=(FaultStrategy(kind="crash", probability=1.0),))
        never = ChaosSpec(seed=0, strategies=(FaultStrategy(kind="crash", probability=0.0),))
        assert all(FailureInjector(always).plan(u, 0).crash for u in range(10))
        assert not any(FailureInjector(never).plan(u, 0).crash for u in range(10))

    def test_max_attempt_caps_injection(self):
        spec = ChaosSpec(
            seed=0,
            strategies=(FaultStrategy(kind="crash", probability=1.0, max_attempt=2),),
        )
        injector = FailureInjector(spec)
        assert injector.plan(4, 0).crash and injector.plan(4, 1).crash
        assert not injector.plan(4, 2).any

    def test_strategies_decide_independently(self):
        spec = ChaosSpec(
            seed=9,
            strategies=(
                FaultStrategy(kind="crash", probability=1.0),
                FaultStrategy(kind="delay", probability=1.0, delay=0.01),
                FaultStrategy(kind="drop", probability=1.0),
            ),
        )
        injection = FailureInjector(spec).plan(0, 0)
        assert injection.fired == ("crash", "delay", "drop")
        assert injection.crash and injection.drop and injection.delay == 0.01


class TestFailureInjectorApply:
    def test_crash_raises_injected_failure(self):
        spec = ChaosSpec(seed=0, strategies=(FaultStrategy(kind="crash", probability=1.0),))
        injector = FailureInjector(spec)
        injection = injector.plan(2, 1)
        with pytest.raises(InjectedFailure) as excinfo:
            injector.apply_before(injection, 2, 1, inline=False)
        assert excinfo.value.unit_index == 2
        assert excinfo.value.attempt == 1

    def test_broken_pool_degrades_to_crash_inline(self):
        # os._exit in the caller process would kill the test runner;
        # inline mode must degrade to a catchable crash instead.
        spec = ChaosSpec(
            seed=0, strategies=(FaultStrategy(kind="broken_pool", probability=1.0),)
        )
        injector = FailureInjector(spec)
        with pytest.raises(InjectedFailure):
            injector.apply_before(injector.plan(0, 0), 0, 0, inline=True)

    def test_drop_discards_payload(self):
        spec = ChaosSpec(seed=0, strategies=(FaultStrategy(kind="drop", probability=1.0),))
        injector = FailureInjector(spec)
        payload, dropped = injector.apply_after(
            injector.plan(0, 0), 0, 0, np.arange(3.0)
        )
        assert dropped and payload is None

    def test_partial_corrupts_payload_deterministically(self):
        spec = ChaosSpec(seed=5, strategies=(FaultStrategy(kind="partial", probability=1.0),))
        injector = FailureInjector(spec)
        original = np.arange(16.0)
        damaged_a, _ = injector.apply_after(injector.plan(1, 0), 1, 0, original.copy())
        damaged_b, _ = injector.apply_after(injector.plan(1, 0), 1, 0, original.copy())
        assert not np.array_equal(damaged_a, original)
        assert np.array_equal(damaged_a, damaged_b)


class TestCorruptPayload:
    def test_array_keeps_shape_but_changes_values(self):
        rng = np.random.default_rng(0)
        original = np.ones((4, 5))
        damaged = corrupt_payload(original, rng)
        assert damaged.shape == original.shape
        assert not np.array_equal(damaged, original)
        assert np.array_equal(original, np.ones((4, 5)))  # input untouched

    def test_non_array_replaced(self):
        assert corrupt_payload({"a": 1}, np.random.default_rng(0)) is None


class TestLoadChaos:
    def test_passthrough(self):
        spec = ChaosSpec(seed=1)
        assert load_chaos(None) is None
        assert load_chaos(spec) is spec

    def test_dict_and_inline_json(self):
        data = {"seed": 4, "strategies": [{"kind": "crash", "probability": 0.5}]}
        from_dict = load_chaos(data)
        from_inline = load_chaos('{"seed": 4, "strategies": [{"kind": "crash", "probability": 0.5}]}')
        assert from_dict == from_inline == ChaosSpec.from_dict(data)

    def test_file_path(self, tmp_path):
        spec = ChaosSpec(seed=11, strategies=(FaultStrategy(kind="drop", probability=0.1),))
        path = tmp_path / "chaos.json"
        path.write_text(spec.to_json())
        assert load_chaos(str(path)) == spec

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ParameterError, match="chaos spec file not found"):
            load_chaos(str(tmp_path / "nope.json"))

    def test_bad_inline_json_is_an_error(self):
        with pytest.raises(ParameterError, match="does not parse"):
            load_chaos('{"seed": ')

    def test_env_var(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, '{"seed": 2, "strategies": []}')
        assert chaos_from_env() == ChaosSpec(seed=2)
