"""Edge-case tests targeting less-traveled code paths."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import hypergeom

from repro.channels.onoff import OnOffChannel
from repro.keygraphs.schemes import QCompositeScheme
from repro.probability.hypergeometric import (
    log_overlap_survival,
    overlap_pmf_vector,
    overlap_survival,
)
from repro.wsn.failures import worst_case_failure_search
from repro.wsn.network import SecureWSN


class _PathScheme(QCompositeScheme):
    """Deterministic rings that force a path topology under q = 2.

    Ring i = {2i, 2i+1, 2i+2, 2i+3}: consecutive rings share exactly
    two keys, rings two apart share none — so the q = 2 key graph is
    the path graph, whose interior nodes are all cut vertices.
    """

    def __init__(self, num_nodes: int) -> None:
        super().__init__(key_ring_size=4, pool_size=2 * num_nodes + 4, q=2)

    def assign_rings(self, num_nodes, seed=None):  # noqa: D102 - see class
        return np.array(
            [[2 * i, 2 * i + 1, 2 * i + 2, 2 * i + 3] for i in range(num_nodes)],
            dtype=np.int64,
        )


class TestWorstCaseWitness:
    def test_path_topology_has_single_node_witness(self):
        n = 8
        wsn = SecureWSN(n, _PathScheme(n), OnOffChannel(1.0), seed=1)
        # Sanity: the crafted topology is the path graph.
        expect = {(i, i + 1) for i in range(n - 1)}
        assert {tuple(map(int, e)) for e in wsn.secure_edges()} == expect

        survives, witness = worst_case_failure_search(wsn, 1)
        assert not survives
        assert len(witness) == 1
        assert witness[0] not in (0, n - 1)  # an interior cut vertex

    def test_random_probing_mode(self):
        # Force the sampled (non-exhaustive) branch with a tiny budget.
        n = 12
        wsn = SecureWSN(n, _PathScheme(n), OnOffChannel(1.0), seed=2)
        survives, witness = worst_case_failure_search(
            wsn, 3, max_combinations=10, seed=3
        )
        # With a path graph, any sampled triple not made solely of the
        # two endpoints disconnects; 10 random probes find one w.h.p.
        assert not survives
        assert len(witness) == 3


class TestHypergeometricFallbacks:
    def test_dense_rings_2k_exceeds_pool(self):
        # 2K > P disables the recurrence; the log-space path must agree
        # with scipy (support starts at 2K - P).
        K, P = 8, 10
        for q in (1, 5, 7, 8):
            assert overlap_survival(K, P, q) == pytest.approx(
                float(hypergeom.sf(q - 1, P, K, K)), rel=1e-9
            )

    def test_dense_rings_certain_overlap(self):
        # Overlap is always >= 2K - P = 6, so q <= 6 gives probability 1.
        assert overlap_survival(8, 10, 6) == pytest.approx(1.0)

    def test_pmf_vector_dense_regime(self):
        vec = overlap_pmf_vector(8, 10)
        assert vec.sum() == pytest.approx(1.0, abs=1e-12)
        assert vec[:6].sum() == pytest.approx(0.0, abs=1e-15)

    def test_log_survival_dense_regime_finite(self):
        val = log_overlap_survival(8, 10, 8)
        expect = float(hypergeom.sf(7, 10, 8, 8))
        assert np.exp(val) == pytest.approx(expect, rel=1e-9)

    def test_extreme_underflow_regime(self):
        # K²/P >> 700 underflows the recurrence's pmf(0); the log-space
        # fallback must still return sane values.
        val = overlap_survival(2000, 4000, 1)
        assert val == pytest.approx(1.0)  # overlap >= 1 is near-certain

    def test_scheme_with_dense_rings(self):
        # End-to-end through the scheme layer in the 2K > P regime.
        scheme = QCompositeScheme(8, 10, 6)
        rings = scheme.assign_rings(6, seed=4)
        edges = scheme.key_graph_edges(rings)
        # Overlap >= 6 is certain: complete graph.
        assert edges.shape[0] == 15
