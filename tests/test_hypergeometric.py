"""Tests for the overlap (hypergeometric) distribution — Eqs. (3)-(4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import hypergeom

from repro.exceptions import ParameterError
from repro.probability.hypergeometric import (
    log_overlap_survival,
    no_overlap_probability,
    overlap_cdf,
    overlap_mean,
    overlap_pmf,
    overlap_pmf_vector,
    overlap_survival,
)


class TestOverlapPmf:
    def test_sums_to_one_small(self):
        assert overlap_pmf_vector(8, 30).sum() == pytest.approx(1.0, abs=1e-12)

    def test_sums_to_one_paper_scale(self):
        assert overlap_pmf_vector(88, 10000).sum() == pytest.approx(1.0, abs=1e-10)

    def test_matches_scipy_pointwise(self):
        K, P = 35, 10000
        for u in range(0, 8):
            assert overlap_pmf(K, P, u) == pytest.approx(
                float(hypergeom.pmf(u, P, K, K)), rel=1e-9
            )

    def test_impossible_overlap_zero(self):
        # K=5, P=8: overlap at least 2K - P = 2.
        assert overlap_pmf(5, 8, 1) == 0.0
        assert overlap_pmf(5, 8, 0) == 0.0
        assert overlap_pmf(5, 8, 2) > 0.0

    def test_full_pool_overlap_deterministic(self):
        # K = P: rings are the whole pool, overlap is exactly K.
        assert overlap_pmf(6, 6, 6) == pytest.approx(1.0)
        assert overlap_pmf(6, 6, 3) == 0.0

    @given(
        st.integers(2, 40).flatmap(
            lambda k: st.tuples(st.just(k), st.integers(2 * k, 400))
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scipy(self, kp):
        k, p = kp
        u = k // 2
        assert overlap_pmf(k, p, u) == pytest.approx(
            float(hypergeom.pmf(u, p, k, k)), rel=1e-8, abs=1e-12
        )


class TestOverlapSurvival:
    def test_q1_complement_of_no_overlap(self):
        K, P = 30, 1000
        assert overlap_survival(K, P, 1) == pytest.approx(
            1.0 - no_overlap_probability(K, P), rel=1e-12
        )

    def test_matches_scipy_sf(self):
        for K, P, q in [(35, 10000, 2), (60, 10000, 3), (20, 500, 4), (10, 50, 2)]:
            assert overlap_survival(K, P, q) == pytest.approx(
                float(hypergeom.sf(q - 1, P, K, K)), rel=1e-9
            )

    def test_monotone_decreasing_in_q(self):
        K, P = 40, 2000
        values = [overlap_survival(K, P, q) for q in range(1, 10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_increasing_in_K(self):
        P, q = 5000, 2
        values = [overlap_survival(K, P, q) for K in range(5, 80, 5)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_monotone_decreasing_in_P(self):
        K, q = 30, 2
        values = [overlap_survival(K, P, q) for P in (100, 500, 2000, 10000)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_q_equals_K(self):
        # P(overlap >= K) = P(identical rings) = 1 / C(P, K).
        K, P = 3, 12
        assert overlap_survival(K, P, K) == pytest.approx(
            1.0 / math.comb(P, K), rel=1e-12
        )

    def test_direct_and_complement_branches_agree(self):
        # q near K/2 exercises both code paths; compare with scipy.
        K, P = 16, 200
        for q in range(1, K + 1):
            assert overlap_survival(K, P, q) == pytest.approx(
                float(hypergeom.sf(q - 1, P, K, K)), rel=1e-8, abs=1e-15
            )

    def test_invalid_q_raises(self):
        with pytest.raises(ParameterError):
            overlap_survival(10, 100, 11)

    def test_log_survival_underflow_guard(self):
        val = log_overlap_survival(4, 10_000_000, 4)
        assert val < -50  # tiny but finite in log space
        assert math.isfinite(val)


class TestOverlapMoments:
    def test_mean_formula(self):
        assert overlap_mean(30, 900) == pytest.approx(1.0)

    def test_mean_matches_scipy(self):
        K, P = 45, 10000
        assert overlap_mean(K, P) == pytest.approx(
            float(hypergeom.mean(P, K, K)), rel=1e-12
        )

    def test_cdf_complements_survival(self):
        K, P = 25, 800
        for u in range(0, K):
            assert overlap_cdf(K, P, u) + overlap_survival(K, P, u + 1) == (
                pytest.approx(1.0, abs=1e-10)
            )

    def test_cdf_at_K_is_one(self):
        assert overlap_cdf(12, 100, 12) == 1.0

    def test_empirical_overlap_distribution(self, rng):
        # Monte Carlo sanity: sample rings, measure overlap frequencies.
        K, P, trials = 10, 60, 4000
        counts = np.zeros(K + 1)
        for _ in range(trials):
            a = rng.choice(P, size=K, replace=False)
            b = rng.choice(P, size=K, replace=False)
            counts[len(np.intersect1d(a, b))] += 1
        emp = counts / trials
        ref = overlap_pmf_vector(K, P)
        # Allow generous Monte Carlo tolerance.
        assert np.abs(emp - ref).max() < 0.03
