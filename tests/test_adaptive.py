"""Adaptive trial allocation: merge substrate, stopping rules, driver.

The load-bearing property is *determinism equivalence*: an adaptive
run that converges after k extension rounds must produce, cell by
cell, exactly the values a one-shot run at the same total trial count
produces — merging trial windows is bookkeeping, never resampling.
Everything else (merge validation, Wilson/standard-error stopping
rules, per-cell raggedness) supports that contract.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.simulation.estimators import wilson_half_width, wilson_interval
from repro.study import (
    AdaptivePolicy,
    MetricSpec,
    Scenario,
    Study,
    StudyResult,
    run_adaptive_study,
    trial_allocation,
)
from repro.study.adaptive import mean_standard_error, stopping_half_width
from repro.study.result import ScenarioResult


def plain_scenario(name="plain", trials=6, seed=11, **overrides):
    kwargs = dict(
        name=name,
        num_nodes=40,
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        metrics=(MetricSpec("connectivity"),),
        trials=trials,
        seed=seed,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def sized_scenario(name="sized", trials=6, seed=11, **overrides):
    kwargs = dict(
        name=name,
        num_nodes_grid=(40, 60),
        pool_size=300,
        ring_sizes=((12, 15), (10, 13)),
        curves=((2, 0.6), (2, 1.0)),
        metrics=(MetricSpec("connectivity"), MetricSpec("giant_fraction")),
        trials=trials,
        seed=seed,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


# -- determinism equivalence ------------------------------------------


class TestDeterminismEquivalence:
    """Adaptive == one-shot, bit for bit, at equal total trials."""

    def _assert_equivalent(self, scenario, policy, workers):
        adaptive = run_adaptive_study(
            Study((scenario,)), policy, workers=workers
        )[scenario.name]
        # Cells converge at different trial counts; each must equal the
        # prefix of a one-shot run at the overall maximum.
        alloc = trial_allocation(
            StudyResult(results=(adaptive,), provenance={})
        )
        total = alloc["max_cell_trials"]
        assert total > scenario.trials  # the run actually extended
        one_shot = Study(
            (dataclasses.replace(scenario, trials=total),)
        ).run(workers=workers)[scenario.name]
        for si in range(scenario.num_sizes):
            for ri in range(len(scenario.ring_sizes_at(si))):
                for ci in range(len(scenario.curves_at(si))):
                    for mi in range(len(scenario.metrics)):
                        got = adaptive.series_at(si, ri, ci, mi)
                        ref = one_shot.series_at(si, ri, ci, mi)[: got.size]
                        assert np.array_equal(got, ref), (si, ri, ci, mi)
        return adaptive, one_shot

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fully_extended_tensors_bit_equal(self, workers):
        # An unreachable target forces every cell to max_trials, so the
        # whole tensor (all sizes, all K columns) must match exactly.
        scenario = sized_scenario(trials=5)
        policy = AdaptivePolicy(ci_target=1e-6, max_trials=17, block_trials=5)
        adaptive, one_shot = self._assert_equivalent(scenario, policy, workers)
        assert adaptive.values.shape == one_shot.values.shape
        assert np.array_equal(adaptive.values, one_shot.values)

    @pytest.mark.slow
    def test_partial_convergence_per_cell_prefixes(self):
        # A loose target lets some cells stop early: per-cell series
        # must be exact prefixes of the one-shot run's cells.
        scenario = sized_scenario(trials=8)
        policy = AdaptivePolicy(ci_target=0.12, max_trials=64, block_trials=8)
        adaptive, _ = self._assert_equivalent(scenario, policy, 1)
        counts = {
            adaptive.series_at(si, ri, ci, 0).size
            for si in range(2)
            for ri in range(2)
            for ci in range(2)
        }
        assert len(counts) > 1  # allocation is genuinely ragged

    @pytest.mark.slow
    @pytest.mark.parametrize("persistent", ["0", "1"])
    def test_warm_pool_on_and_off(self, persistent, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
        scenario = plain_scenario(trials=5)
        policy = AdaptivePolicy(ci_target=1e-6, max_trials=15, block_trials=5)
        adaptive = run_adaptive_study(
            Study((scenario,)), policy, workers=2
        )[scenario.name]
        one_shot = Study(
            (dataclasses.replace(scenario, trials=15),)
        ).run(workers=2)[scenario.name]
        assert np.array_equal(adaptive.values, one_shot.values)

    def test_extension_rounds_match_one_shot_windows(self):
        # The raw extension primitive: [0, 4) + [4, 7) + [7, 12) == [0, 12).
        scenario = plain_scenario(trials=4)
        study = Study((scenario,))
        acc = study.run(workers=1)[scenario.name]
        for start, stop in ((4, 7), (7, 12)):
            acc = acc.merge(study.run_extension(start, stop, workers=1)[scenario.name])
        one_shot = Study(
            (dataclasses.replace(scenario, trials=12),)
        ).run(workers=1)[scenario.name]
        assert np.array_equal(acc.values, one_shot.values)
        assert acc.scenario.trials == 12
        assert acc.trial_range == (0, 12)

    def test_masked_curves_do_not_change_evaluated_values(self):
        # Evaluating a subset of curves must not perturb the values of
        # the curves that are evaluated (exact lattice deduction).
        scenario = plain_scenario(trials=4)
        study = Study((scenario,))
        full = study.run_extension(4, 8, workers=1)[scenario.name]
        masked = study.run_extension(
            4, 8, active={(0, 0, 0): ((0,),), (0, 0, 1): ((0, 1),)}, workers=1
        )[scenario.name]
        assert np.array_equal(masked.values[0, :, 0, :], full.values[0, :, 0, :])
        assert np.isnan(masked.values[0, :, 1, :]).all()
        assert np.array_equal(masked.values[1], full.values[1])


# -- run_extension validation -----------------------------------------


class TestRunExtension:
    def test_rejects_empty_window(self):
        study = Study((plain_scenario(),))
        with pytest.raises(ParameterError, match="empty extension window"):
            study.run_extension(6, 6, workers=1)
        with pytest.raises(ParameterError, match="empty extension window"):
            study.run_extension(8, 6, workers=1)

    def test_rejects_negative_start(self):
        with pytest.raises(ParameterError, match="trial_start"):
            Study((plain_scenario(),)).run_extension(-1, 4, workers=1)

    def test_rejects_protocol_scenarios(self):
        protocol = Scenario(
            name="proto",
            kind="protocol",
            num_nodes=30,
            pool_size=200,
            trials=4,
            protocol="coupling",
            protocol_params={"key_ring_size": 12, "q": 1},
        )
        with pytest.raises(ParameterError, match="protocol"):
            Study((protocol,)).run_extension(4, 8, workers=1)

    def test_rejects_bad_active_maps(self):
        study = Study((plain_scenario(),))
        with pytest.raises(ParameterError, match="all 1 member scenarios"):
            study.run_extension(4, 8, active={(0, 0, 0): ((0,), (1,))}, workers=1)
        with pytest.raises(ParameterError, match="out of range"):
            study.run_extension(4, 8, active={(0, 0, 0): ((5,),)}, workers=1)

    def test_unlisted_columns_are_skipped(self):
        study = Study((plain_scenario(),))
        shard = study.run_extension(4, 8, active={(0, 0, 1): ((0, 1),)}, workers=1)
        res = shard["plain"]
        assert np.isnan(res.values[0]).all()
        assert not np.isnan(res.values[1]).any()
        assert shard.provenance["deployments"] == 4  # only one column sampled


# -- merge validation --------------------------------------------------


def manual_result(scenario, values, offset=0):
    return ScenarioResult(
        scenario=scenario,
        values=np.asarray(values, dtype=np.float64),
        metric_labels=scenario.metric_labels(),
        trial_offset=offset,
    )


class TestMergeValidation:
    def _pair(self, trials_a=4, trials_b=3, offset_b=4, seed_b=11):
        a = plain_scenario(trials=trials_a)
        b = plain_scenario(trials=trials_b, seed=seed_b)
        va = np.zeros((2, trials_a, 2, 1))
        vb = np.ones((2, trials_b, 2, 1))
        return manual_result(a, va), manual_result(b, vb, offset=offset_b)

    def test_merges_adjacent_in_either_order(self):
        ra, rb = self._pair()
        merged = ra.merge(rb)
        flipped = rb.merge(ra)
        assert merged.scenario.trials == 7
        assert merged.trial_range == (0, 7)
        assert np.array_equal(merged.values, flipped.values)
        assert np.array_equal(merged.values[:, :4], ra.values)
        assert np.array_equal(merged.values[:, 4:], rb.values)

    def test_rejects_mismatched_scenarios(self):
        ra, _ = self._pair()
        other = manual_result(
            plain_scenario(trials=3, seed=99), np.ones((2, 3, 2, 1)), offset=4
        )
        with pytest.raises(ExperimentError, match=r"fields \['seed'\] differ"):
            ra.merge(other)

    def test_rejects_overlapping_trial_ranges(self):
        ra, rb = self._pair(offset_b=3)
        with pytest.raises(ExperimentError, match="overlapping trial ranges"):
            ra.merge(rb)
        # identical ranges are the extreme overlap
        with pytest.raises(ExperimentError, match="overlapping trial ranges"):
            ra.merge(ra)

    def test_rejects_gapped_trial_ranges(self):
        ra, rb = self._pair(offset_b=6)
        with pytest.raises(ExperimentError, match="gap of 2 trials"):
            ra.merge(rb)

    def test_rejects_axis_shape_mismatch(self):
        ra, _ = self._pair()
        bad = manual_result(
            plain_scenario(trials=3), np.ones((1, 3, 2, 1)), offset=4
        )
        with pytest.raises(ExperimentError, match="axis shapes differ"):
            ra.merge(bad)

    def test_rejects_non_result(self):
        ra, _ = self._pair()
        with pytest.raises(ExperimentError, match="can only merge"):
            ra.merge("not a result")

    def test_study_result_merge_requires_same_scenarios(self):
        ra, rb = self._pair()
        study_a = StudyResult(results=(ra,), provenance={"deployments": 8})
        study_b = StudyResult(results=(rb,), provenance={"deployments": 6})
        merged = study_a.merge(study_b)
        assert merged["plain"].scenario.trials == 7
        assert merged.provenance["deployments"] == 14
        other = StudyResult(
            results=(manual_result(
                plain_scenario(name="other", trials=3), np.ones((2, 3, 2, 1)), 4
            ),),
            provenance={},
        )
        with pytest.raises(ExperimentError, match="different scenario sets"):
            study_a.merge(other)

    def test_merged_result_roundtrips_through_json(self):
        ra, rb = self._pair()
        vb = rb.values.copy()
        vb[0, :, 0, 0] = np.nan  # ragged cell, as adaptive runs produce
        rb = manual_result(rb.scenario, vb, offset=4)
        merged = ra.merge(rb)
        # Shard JSONs are the multi-host interchange format: they must
        # be strict RFC 8259 (no bare NaN tokens), so non-Python
        # consumers can parse them.  Unevaluated slots become null.
        text = json.dumps(merged.to_dict(), allow_nan=False)
        restored = ScenarioResult.from_dict(json.loads(text))
        assert restored.scenario == merged.scenario
        assert restored.trial_offset == merged.trial_offset
        assert np.array_equal(restored.values, merged.values, equal_nan=True)
        # NaN-aware accessors agree after the round-trip
        assert restored.cell_trials(
            "connectivity", (2, 0.6), 12
        ) == merged.cell_trials("connectivity", (2, 0.6), 12) == 4

    def test_unevaluated_cells_raise_clear_errors(self):
        # A shard that skipped a curve: bernoulli()/mean()/agreement()
        # must say "no evaluated trials", not fail deep in estimators.
        scenario = sized_scenario(trials=3)
        shard = Study((scenario,)).run_extension(
            3, 6, active={(0, 0, 0): ((1,),)}, workers=1
        )["sized"]
        skipped = scenario.curves_at(0)[0]
        assert shard.cell_trials("connectivity", skipped, 12, size=40) == 0
        with pytest.raises(ExperimentError, match="no evaluated trials"):
            shard.bernoulli("connectivity", skipped, 12, size=40)
        with pytest.raises(ExperimentError, match="no evaluated trials"):
            shard.mean("giant_fraction", skipped, 12, size=40)
        with pytest.raises(ExperimentError, match="no trials evaluated both"):
            shard.agreement(
                "connectivity", "giant_fraction", skipped, 12, size=40
            )
        # the evaluated curve still estimates normally
        evaluated = scenario.curves_at(0)[1]
        assert shard.bernoulli("connectivity", evaluated, 12, size=40).trials == 3

    def test_shard_offset_survives_json(self):
        _, rb = self._pair()
        restored = ScenarioResult.from_dict(rb.to_dict())
        assert restored.trial_offset == 4
        assert restored.trial_range == (4, 7)


# -- stopping-rule estimators -----------------------------------------


class TestStoppingEstimators:
    def test_wilson_half_width_closed_form(self):
        # n=4, s=2, z=1: center (0.5 + 0.125) / 1.25, half-width
        # sqrt(0.25/4 + 1/64) / 1.25 — the textbook Wilson algebra.
        expected = math.sqrt(0.25 / 4 + 1 / 64) / 1.25
        assert wilson_half_width(2, 4, z=1.0) == pytest.approx(expected)
        low, high = wilson_interval(2, 4, z=1.0)
        assert wilson_half_width(2, 4, z=1.0) == pytest.approx((high - low) / 2)

    @pytest.mark.parametrize("n", [1, 5, 20, 100])
    def test_degenerate_all_zero_cells(self, n):
        # s=0: pinned interval [0, z^2/(n+z^2)], half-width half of that.
        z = 1.96
        expected = (z * z / (n + z * z)) / 2.0
        assert wilson_half_width(0, n, z=z) == pytest.approx(expected)

    @pytest.mark.parametrize("n", [1, 5, 20, 100])
    def test_degenerate_all_one_cells_mirror(self, n):
        assert wilson_half_width(n, n) == pytest.approx(wilson_half_width(0, n))
        series = np.ones(n)
        assert stopping_half_width(series, is_indicator=True) == pytest.approx(
            wilson_half_width(n, n)
        )

    def test_estimate_half_width_property_matches_stopping_statistic(self):
        # BernoulliEstimate.half_width and the driver's
        # wilson_half_width must be the same number — a drift between
        # them would make reported intervals disagree with the
        # stopping rule that produced them.
        from repro.simulation.estimators import BernoulliEstimate

        for successes, trials in ((0, 7), (3, 7), (7, 7), (50, 120)):
            est = BernoulliEstimate.from_counts(successes, trials)
            assert est.half_width == pytest.approx(
                wilson_half_width(successes, trials)
            )

    def test_half_width_shrinks_with_n(self):
        widths = [wilson_half_width(0, n) for n in (10, 50, 250, 1000)]
        assert widths == sorted(widths, reverse=True)
        # the degenerate tail converges to a 0.02 target around n ~ 90
        assert wilson_half_width(0, 89) > 0.02 >= wilson_half_width(0, 93)

    def test_mean_standard_error_closed_form(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        expected = math.sqrt(5.0 / 3.0) / 2.0  # ddof=1 std over sqrt(4)
        assert mean_standard_error(series) == pytest.approx(expected)
        assert stopping_half_width(series, is_indicator=False) == pytest.approx(
            expected
        )

    def test_mean_standard_error_needs_two_samples(self):
        assert mean_standard_error(np.array([3.0])) == math.inf
        assert mean_standard_error(np.array([])) == math.inf

    def test_empty_cell_is_unresolved(self):
        assert stopping_half_width(np.array([]), is_indicator=True) == math.inf

    def test_indicator_uses_wilson_not_wald(self):
        # At p-hat = 0 a Wald interval has width 0 and would stop a
        # 1-trial cell instantly; Wilson must not.
        assert stopping_half_width(np.zeros(1), is_indicator=True) > 0.3


# -- the adaptive policy and driver -----------------------------------


class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(ParameterError, match="ci_target"):
            AdaptivePolicy(ci_target=0.0)
        with pytest.raises(ParameterError, match="max_trials"):
            AdaptivePolicy(max_trials=0)
        with pytest.raises(ParameterError, match="block_trials"):
            AdaptivePolicy(block_trials=-3)
        with pytest.raises(ParameterError, match="indicator_band"):
            AdaptivePolicy(indicator_band=(0.9, 0.1))
        with pytest.raises(ParameterError, match="ci_targets"):
            AdaptivePolicy(ci_targets={"connectivity": -0.5})

    def test_targets_above_one_allowed_for_value_metric_scales(self):
        # Wilson half-widths live in (0, 0.5], but standard-error
        # targets apply to value metrics on any scale (degree counts,
        # attack exposure) — a target of 2.0 counts is legitimate.
        policy = AdaptivePolicy(ci_target=2.0, ci_targets={"degree_count[h=0]": 5.0})
        assert policy.target_for("degree_count[h=0]", is_indicator=False) == 5.0

    def test_per_metric_targets(self):
        policy = AdaptivePolicy(ci_target=0.02, ci_targets={"connectivity": 0.1})
        assert policy.target_for("connectivity", is_indicator=True) == 0.1
        assert policy.target_for("giant_fraction", is_indicator=False) == 0.02

    def test_band_loosens_tails_only(self):
        policy = AdaptivePolicy(
            ci_target=0.02,
            indicator_band=(0.1, 0.9),
            tail_ci_target=0.05,
        )
        in_band = policy.target_for("connectivity", is_indicator=True, estimate=0.5)
        low_tail = policy.target_for("connectivity", is_indicator=True, estimate=0.0)
        high_tail = policy.target_for("connectivity", is_indicator=True, estimate=0.97)
        assert in_band == 0.02
        assert low_tail == high_tail == 0.05
        # value metrics never see the band
        assert policy.target_for("giant_fraction", is_indicator=False, estimate=0.0) == 0.02

    def test_tail_target_never_tighter_than_base(self):
        policy = AdaptivePolicy(
            ci_target=0.1, indicator_band=(0.1, 0.9), tail_ci_target=0.01
        )
        assert policy.target_for("connectivity", is_indicator=True, estimate=0.0) == 0.1


class TestAdaptiveDriver:
    def test_caps_at_max_trials(self):
        scenario = plain_scenario(trials=4)
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=1e-9, max_trials=11, block_trials=4),
            workers=1,
        )
        alloc = result.provenance["adaptive"]
        assert alloc["max_cell_trials"] == 11
        assert alloc["min_cell_trials"] == 11
        windows = [r["trial_window"] for r in alloc["rounds"]]
        assert windows == [[4, 8], [8, 11]]  # final block clamped to the cap

    def test_block_larger_than_remainder_clamps(self):
        scenario = plain_scenario(trials=4)
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=1e-9, max_trials=6, block_trials=100),
            workers=1,
        )
        assert [r["trial_window"] for r in result.provenance["adaptive"]["rounds"]] == [
            [4, 6]
        ]

    def test_already_satisfied_study_adds_no_rounds(self):
        scenario = plain_scenario(trials=5)
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=0.999, max_trials=50),
            workers=1,
        )
        adaptive = result.provenance["adaptive"]
        assert adaptive["rounds"] == []
        assert adaptive["trials_spent"] == 5 * 4  # 2 rings x 2 curves x 5 trials
        assert adaptive["savings_vs_fixed"] == 1.0

    def test_max_trials_at_or_below_initial_adds_no_rounds(self):
        scenario = plain_scenario(trials=5)
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=1e-9, max_trials=5),
            workers=1,
        )
        assert result.provenance["adaptive"]["rounds"] == []

    def test_unknown_ci_target_labels_rejected(self):
        # A typoed label would otherwise silently fall back to the
        # default target and "converge" at the wrong precision.
        study = Study((plain_scenario(),))
        with pytest.raises(ParameterError, match="never measures.*connectivty"):
            run_adaptive_study(
                study,
                AdaptivePolicy(ci_target=0.2, ci_targets={"connectivty": 0.005}),
                workers=1,
            )

    def test_policy_object_and_kwargs_are_exclusive(self):
        study = Study((plain_scenario(),))
        with pytest.raises(ParameterError, match="not both"):
            run_adaptive_study(
                study, AdaptivePolicy(), ci_target=0.5, workers=1
            )

    def test_protocol_scenarios_pass_through(self):
        protocol = Scenario(
            name="proto",
            kind="protocol",
            num_nodes=30,
            pool_size=200,
            trials=4,
            protocol="coupling",
            protocol_params={"key_ring_size": 12, "q": 1},
        )
        mixed = Study((plain_scenario(trials=4), protocol))
        result = run_adaptive_study(
            mixed,
            AdaptivePolicy(ci_target=0.4, max_trials=12, block_trials=4),
            workers=1,
        )
        assert result["proto"].scenario.trials == 4
        one_shot = Study((protocol,)).run(workers=1)["proto"]
        assert np.array_equal(result["proto"].values, one_shot.values)

    @pytest.mark.slow
    def test_ragged_allocation_spends_less_than_fixed(self):
        # Two curves with very different variances: the saturated
        # p = 1.0 curve converges long before p = 0.6 does.
        scenario = plain_scenario(trials=10, ring_sizes=(15,))
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=0.08, max_trials=200, block_trials=20),
            workers=1,
        )
        alloc = result.provenance["adaptive"]
        assert alloc["trials_spent"] < alloc["fixed_trial_cost"]
        assert alloc["savings_vs_fixed"] > 1.0

    def test_render_shows_ragged_trials(self):
        from repro.study import render_study_result

        scenario = plain_scenario(trials=4)
        result = run_adaptive_study(
            Study((scenario,)),
            AdaptivePolicy(ci_target=0.15, max_trials=40, block_trials=8),
            workers=1,
        )
        text = render_study_result(result)
        assert "trials" in text  # the per-cell allocation column


# -- zero_one adaptive mode -------------------------------------------


class TestZeroOneAdaptive:
    KW = dict(
        trials=20,
        num_nodes_grid=(80, 120),
        alpha_offsets=(-2.0, 2.0),
        pool_size=2000,
        workers=1,
    )

    def test_adaptive_backend_runs_and_reports(self):
        from repro.experiments.zero_one import render_zero_one, run_zero_one

        result = run_zero_one(
            backend="adaptive",
            ci_target=0.15,
            max_trials=60,
            tail_ci_target=0.2,
            **self.KW,
        )
        assert result.config["backend"] == "adaptive"
        adaptive = result.config["adaptive"]
        assert adaptive["trials_spent"] <= adaptive["fixed_trial_cost"]
        assert {pt.estimate.trials for pt in result.points} <= set(range(20, 61))
        assert "adaptive" in render_zero_one(result)

    def test_adaptive_estimates_match_one_shot_prefix(self):
        from repro.experiments.zero_one import run_zero_one

        adaptive = run_zero_one(
            backend="adaptive", ci_target=1e-6, max_trials=40, **self.KW
        )
        kw = dict(self.KW)
        kw["trials"] = 40
        fixed = run_zero_one(backend="study", **kw)
        for pa, pf in zip(adaptive.points, fixed.points):
            assert pa.estimate.successes == pf.estimate.successes
            assert pa.estimate.trials == pf.estimate.trials

    def test_bad_band_rejected(self):
        from repro.experiments.zero_one import run_zero_one

        with pytest.raises(ParameterError, match="transition_band"):
            run_zero_one(
                backend="adaptive", transition_band=(0.1, 0.5, 0.9), **self.KW
            )
