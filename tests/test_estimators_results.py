"""Tests for estimators and result containers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.simulation.estimators import BernoulliEstimate, wilson_interval
from repro.simulation.results import (
    CurvePoint,
    ExperimentResult,
    load_result,
    save_result,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low <= 0.3 <= high

    @given(st.integers(1, 500).flatmap(
        lambda n: st.tuples(st.integers(0, n), st.just(n))
    ))
    @settings(max_examples=100)
    def test_property_valid_interval(self, sn):
        s, n = sn
        low, high = wilson_interval(s, n)
        assert 0.0 <= low <= s / n <= high <= 1.0

    def test_narrows_with_trials(self):
        w1 = wilson_interval(5, 10)
        w2 = wilson_interval(500, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_extreme_counts_nondegenerate(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low < 1.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            wilson_interval(5, 0)
        with pytest.raises(SimulationError):
            wilson_interval(11, 10)
        with pytest.raises(SimulationError):
            wilson_interval(5, 10, z=0.0)


class TestBernoulliEstimate:
    def test_from_counts(self):
        est = BernoulliEstimate.from_counts(25, 100)
        assert est.estimate == 0.25
        assert est.ci_low < 0.25 < est.ci_high

    def test_stderr(self):
        est = BernoulliEstimate.from_counts(50, 100)
        assert est.stderr() == pytest.approx(math.sqrt(0.25 / 100))

    def test_contains(self):
        est = BernoulliEstimate.from_counts(50, 100)
        assert est.contains(0.5)
        assert not est.contains(0.99)

    def test_to_dict_roundtrip(self):
        est = BernoulliEstimate.from_counts(7, 20)
        assert BernoulliEstimate(**est.to_dict()) == est


class TestResultContainers:
    def _sample_result(self) -> ExperimentResult:
        pts = [
            CurvePoint(
                point={"K": 30.0},
                estimate=BernoulliEstimate.from_counts(3, 10),
                prediction=0.25,
            ),
            CurvePoint(
                point={"K": 40.0},
                estimate=BernoulliEstimate.from_counts(9, 10),
                prediction=0.95,
            ),
        ]
        return ExperimentResult(name="demo", config={"trials": 10}, points=pts)

    def test_gap(self):
        result = self._sample_result()
        assert result.points[0].gap() == pytest.approx(0.05)

    def test_gap_none_without_prediction(self):
        pt = CurvePoint(point={}, estimate=BernoulliEstimate.from_counts(1, 2))
        assert pt.gap() is None

    def test_max_abs_gap(self):
        assert self._sample_result().max_abs_gap() == pytest.approx(0.05)

    def test_json_roundtrip(self, tmp_path):
        result = self._sample_result()
        path = tmp_path / "out" / "demo.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded == result

    def test_loaded_types(self, tmp_path):
        result = self._sample_result()
        path = tmp_path / "demo.json"
        save_result(result, path)
        loaded = load_result(path)
        assert isinstance(loaded.points[0].estimate, BernoulliEstimate)
        assert loaded.config["trials"] == 10
