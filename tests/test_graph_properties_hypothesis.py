"""Property-based tests (hypothesis) for graph-algorithm invariants.

These complement the networkx cross-checks with structural invariants
that must hold on *every* graph, generated adversarially by hypothesis
rather than sampled from a fixed random model.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.biconnectivity import articulation_points, is_biconnected
from repro.graphs.graph import Graph
from repro.graphs.operators import intersection, is_spanning_subgraph, union
from repro.graphs.properties import degrees_from_edges
from repro.graphs.traversal import connected_components, is_connected, shortest_path
from repro.graphs.unionfind import count_components_edges, is_connected_edges
from repro.graphs.vertex_connectivity import is_k_connected, vertex_connectivity


@st.composite
def graphs(draw, max_nodes: int = 12, max_edges: int = 30):
    """Arbitrary small graph: node count plus a set of edges."""
    n = draw(st.integers(2, max_nodes))
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    raw = draw(st.lists(pairs, max_size=max_edges))
    g = Graph(n)
    for u, v in raw:
        if u != v:
            g.add_edge(u, v)
    return g


class TestConnectivityInvariants:
    @given(graphs())
    @settings(max_examples=120, deadline=None)
    def test_kappa_at_most_min_degree(self, g):
        assert vertex_connectivity(g) <= int(g.degrees().min())

    @given(graphs())
    @settings(max_examples=120, deadline=None)
    def test_is_k_connected_matches_kappa(self, g):
        kappa = vertex_connectivity(g)
        assert is_k_connected(g, kappa)
        assert not is_k_connected(g, kappa + 1)

    @given(graphs())
    @settings(max_examples=120, deadline=None)
    def test_is_k_connected_monotone_in_k(self, g):
        previous = True
        for k in range(0, g.num_nodes + 1):
            current = is_k_connected(g, k)
            if current:
                assert previous  # once False, stays False
            previous = current

    @given(graphs())
    @settings(max_examples=120, deadline=None)
    def test_component_counts_agree(self, g):
        edges = g.to_edge_array()
        assert count_components_edges(g.num_nodes, edges) == len(
            connected_components(g)
        )
        assert is_connected_edges(g.num_nodes, edges) == is_connected(g)

    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_biconnected_iff_kappa_two(self, g):
        assert is_biconnected(g) == (vertex_connectivity(g) >= 2)

    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_removing_articulation_point_disconnects(self, g):
        if not is_connected(g) or g.num_nodes < 3:
            return
        for ap in articulation_points(g):
            reduced = g.subgraph_without_node(ap)
            # The removed node stays as an isolated vertex, so the live
            # part must have split: total components > 2 means the
            # remainder is disconnected.
            comps = connected_components(reduced)
            assert len(comps) > 2 or (len(comps) == 2 and g.num_nodes == 2)


class TestPathInvariants:
    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_shortest_path_is_valid_and_minimal_stepwise(self, g):
        path = shortest_path(g, 0, g.num_nodes - 1)
        if path is None:
            comps = connected_components(g)
            comp_of_0 = next(c for c in comps if 0 in c)
            assert g.num_nodes - 1 not in comp_of_0
            return
        assert path[0] == 0 and path[-1] == g.num_nodes - 1
        assert len(set(path)) == len(path)  # simple path
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)


class TestOperatorInvariants:
    @given(graphs(max_nodes=8), graphs(max_nodes=8))
    @settings(max_examples=80, deadline=None)
    def test_intersection_union_lattice(self, a, b):
        n = max(a.num_nodes, b.num_nodes)
        a2 = Graph(n, a.edges())
        b2 = Graph(n, b.edges())
        inter = intersection(a2, b2)
        uni = union(a2, b2)
        assert is_spanning_subgraph(inter, a2)
        assert is_spanning_subgraph(inter, b2)
        assert is_spanning_subgraph(a2, uni)
        assert is_spanning_subgraph(b2, uni)
        assert inter.num_edges + uni.num_edges == a2.num_edges + b2.num_edges

    @given(graphs(max_nodes=8), graphs(max_nodes=8))
    @settings(max_examples=60, deadline=None)
    def test_connectivity_monotone_under_supergraph(self, a, b):
        # Adding edges never disconnects: κ(union) >= κ(intersection).
        n = max(a.num_nodes, b.num_nodes)
        a2 = Graph(n, a.edges())
        b2 = Graph(n, b.edges())
        assert vertex_connectivity(union(a2, b2)) >= vertex_connectivity(
            intersection(a2, b2)
        )


class TestDegreeInvariants:
    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_handshake_lemma(self, g):
        degs = degrees_from_edges(g.num_nodes, g.to_edge_array())
        assert int(degs.sum()) == 2 * g.num_edges

    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_degrees_match_graph_view(self, g):
        assert np.array_equal(
            degrees_from_edges(g.num_nodes, g.to_edge_array()), g.degrees()
        )
