"""Tests for the Erdős–Rényi generator and pair-index codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.graphs.generators import (
    edge_to_pair_index,
    erdos_renyi_edges,
    erdos_renyi_graph,
    expected_edge_count,
    pair_index_to_edge,
)


class TestPairIndexCodec:
    def test_enumeration_order(self):
        n = 4
        edges = pair_index_to_edge(n, np.arange(6))
        expect = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert [tuple(e) for e in edges] == expect

    @given(st.integers(2, 5000))
    @settings(max_examples=60)
    def test_roundtrip_random_indices(self, n):
        total = n * (n - 1) // 2
        rng = np.random.default_rng(n)
        idx = rng.integers(0, total, size=min(200, total))
        edges = pair_index_to_edge(n, idx)
        assert np.array_equal(edge_to_pair_index(n, edges), idx)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_boundary_indices(self):
        n = 100
        total = n * (n - 1) // 2
        edges = pair_index_to_edge(n, np.array([0, total - 1]))
        assert tuple(edges[0]) == (0, 1)
        assert tuple(edges[1]) == (n - 2, n - 1)

    def test_out_of_range_raises(self):
        with pytest.raises(ParameterError):
            pair_index_to_edge(4, np.array([6]))

    def test_large_n_no_float_error(self):
        # Indices near the top of a large triangle stress the sqrt path.
        n = 100_000
        total = n * (n - 1) // 2
        idx = np.array([0, 1, total // 2, total - 2, total - 1], dtype=np.int64)
        edges = pair_index_to_edge(n, idx)
        assert np.array_equal(edge_to_pair_index(n, edges), idx)


class TestErdosRenyi:
    def test_p_zero(self):
        assert erdos_renyi_edges(50, 0.0, seed=1).shape == (0, 2)

    def test_p_one_complete(self):
        edges = erdos_renyi_edges(20, 1.0, seed=1)
        assert edges.shape == (190, 2)

    def test_single_node(self):
        assert erdos_renyi_edges(1, 0.5, seed=1).shape == (0, 2)

    def test_canonical_rows(self):
        edges = erdos_renyi_edges(100, 0.1, seed=3)
        assert (edges[:, 0] < edges[:, 1]).all()
        keys = edges[:, 0] * 100 + edges[:, 1]
        assert np.unique(keys).size == keys.size  # no duplicates

    def test_deterministic_with_seed(self):
        a = erdos_renyi_edges(60, 0.2, seed=7)
        b = erdos_renyi_edges(60, 0.2, seed=7)
        assert np.array_equal(a, b)

    def test_edge_count_concentrates(self):
        n, p = 300, 0.1
        counts = [
            erdos_renyi_edges(n, p, seed=s).shape[0] for s in range(30)
        ]
        mean = np.mean(counts)
        expect = expected_edge_count(n, p)
        # 30 samples of Binomial(44850, 0.1): std ≈ 63, mean ≈ 4485.
        assert abs(mean - expect) < 5 * 63 / np.sqrt(30) + 1

    def test_sparse_backend_matches_dense_statistics(self):
        n, p = 400, 0.02
        dense_counts = [
            erdos_renyi_edges(n, p, seed=s, method="dense").shape[0]
            for s in range(25)
        ]
        sparse_counts = [
            erdos_renyi_edges(n, p, seed=1000 + s, method="sparse").shape[0]
            for s in range(25)
        ]
        expect = expected_edge_count(n, p)
        sd = np.sqrt(expect * (1 - p))
        assert abs(np.mean(dense_counts) - expect) < 5 * sd / 5
        assert abs(np.mean(sparse_counts) - expect) < 5 * sd / 5

    def test_sparse_backend_no_duplicates(self):
        edges = erdos_renyi_edges(500, 0.01, seed=11, method="sparse")
        keys = edges[:, 0] * 500 + edges[:, 1]
        assert np.unique(keys).size == keys.size

    def test_unknown_method_raises(self):
        with pytest.raises(ParameterError):
            erdos_renyi_edges(10, 0.5, method="quantum")

    def test_graph_wrapper(self):
        g = erdos_renyi_graph(30, 0.3, seed=2)
        assert g.num_nodes == 30
        assert g.num_edges > 0

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            erdos_renyi_edges(10, 1.5)

    def test_marginal_rate_per_edge(self):
        # Each specific pair appears with probability ~p across seeds.
        n, p, reps = 30, 0.25, 400
        hits = 0
        for s in range(reps):
            edges = erdos_renyi_edges(n, p, seed=s)
            hits += int(((edges[:, 0] == 0) & (edges[:, 1] == 1)).any())
        rate = hits / reps
        assert abs(rate - p) < 0.08
