"""Tests for scheme objects and the key pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.keygraphs.pool import KeyPool
from repro.keygraphs.schemes import (
    EschenauerGligorScheme,
    QCompositeScheme,
    shared_keys,
)


class TestKeyPool:
    def test_size(self):
        assert len(KeyPool(100)) == 100

    def test_contains(self):
        pool = KeyPool(10)
        assert pool.contains(0) and pool.contains(9)
        assert not pool.contains(10) and not pool.contains(-1)

    def test_key_material_deterministic(self):
        a = KeyPool(10, b"s").key_material(3)
        b = KeyPool(10, b"s").key_material(3)
        assert a == b and len(a) == 16

    def test_key_material_distinct(self):
        pool = KeyPool(10)
        assert pool.key_material(1) != pool.key_material(2)

    def test_different_secret_different_material(self):
        assert KeyPool(10, b"a").key_material(0) != KeyPool(10, b"b").key_material(0)

    def test_out_of_pool_raises(self):
        with pytest.raises(ParameterError):
            KeyPool(5).key_material(5)

    def test_bad_secret_type(self):
        with pytest.raises(TypeError):
            KeyPool(5, "not-bytes")  # type: ignore[arg-type]


class TestSharedKeys:
    def test_intersection(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 7, 9])
        assert shared_keys(a, b).tolist() == [3, 7]

    def test_empty(self):
        assert shared_keys(np.array([1]), np.array([2])).size == 0


class TestQCompositeScheme:
    def test_assign_shapes(self):
        scheme = QCompositeScheme(10, 100, 2)
        rings = scheme.assign_rings(20, seed=1)
        assert rings.shape == (20, 10)

    def test_can_establish_respects_q(self):
        scheme = QCompositeScheme(4, 50, 2)
        a = np.array([1, 2, 3, 4])
        assert scheme.can_establish(a, np.array([3, 4, 10, 11]))  # 2 shared
        assert not scheme.can_establish(a, np.array([4, 10, 11, 12]))  # 1 shared

    def test_link_key_none_below_q(self):
        scheme = QCompositeScheme(3, 50, 2)
        assert scheme.link_key(np.array([1, 2, 3]), np.array([3, 4, 5])) is None

    def test_link_key_deterministic_and_symmetric(self):
        scheme = QCompositeScheme(4, 50, 2)
        a = np.array([1, 2, 3, 4])
        b = np.array([2, 3, 9, 10])
        k1 = scheme.link_key(a, b)
        k2 = scheme.link_key(b, a)
        assert k1 is not None and k1 == k2 and len(k1) == 16

    def test_link_key_depends_on_all_shared(self):
        # Adding one more shared key must change the link key.
        scheme = QCompositeScheme(4, 50, 2)
        a = np.array([1, 2, 3, 4])
        k_two_shared = scheme.link_key(a, np.array([1, 2, 30, 31]))
        k_three_shared = scheme.link_key(a, np.array([1, 2, 3, 31]))
        assert k_two_shared != k_three_shared

    def test_link_compromised_requires_all_keys(self):
        scheme = QCompositeScheme(4, 50, 2)
        a = np.array([1, 2, 3, 4])
        b = np.array([2, 3, 9, 10])  # shares {2, 3}
        assert scheme.link_compromised(a, b, [2, 3])
        assert not scheme.link_compromised(a, b, [2])
        assert not scheme.link_compromised(a, b, [])

    def test_link_compromised_false_without_link(self):
        scheme = QCompositeScheme(3, 50, 2)
        assert not scheme.link_compromised(
            np.array([1, 2, 3]), np.array([3, 8, 9]), [1, 2, 3, 8, 9]
        )

    def test_edge_probability_matches_hypergeometric(self):
        from repro.probability.hypergeometric import overlap_survival

        scheme = QCompositeScheme(12, 300, 2)
        assert scheme.edge_probability() == pytest.approx(
            overlap_survival(12, 300, 2)
        )

    def test_sample_key_graph(self):
        g = QCompositeScheme(8, 100, 1).sample_key_graph(25, seed=4)
        assert g.num_nodes == 25

    def test_pool_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            QCompositeScheme(5, 100, 1, pool=KeyPool(50))

    def test_key_graph_edges_respect_rule(self):
        scheme = QCompositeScheme(10, 60, 3)
        rings = scheme.assign_rings(15, seed=5)
        edges = scheme.key_graph_edges(rings)
        for u, v in edges:
            assert shared_keys(rings[int(u)], rings[int(v)]).size >= 3


class TestEschenauerGligor:
    def test_is_q_one(self):
        scheme = EschenauerGligorScheme(8, 100)
        assert scheme.q == 1

    def test_single_shared_key_suffices(self):
        scheme = EschenauerGligorScheme(3, 50)
        assert scheme.can_establish(np.array([1, 2, 3]), np.array([3, 10, 20]))
