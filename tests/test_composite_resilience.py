"""Tests for CompositeChannel and resilient connectivity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.composite import CompositeChannel
from repro.channels.disk import DiskChannel
from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.keygraphs.schemes import QCompositeScheme
from repro.wsn.network import SecureWSN
from repro.wsn.resilience import evaluate_resilience


class TestCompositeChannel:
    def test_marginal_is_product(self):
        chan = CompositeChannel([OnOffChannel(0.5), OnOffChannel(0.4)])
        assert chan.edge_probability() == pytest.approx(0.2)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            CompositeChannel([])

    def test_mask_is_and_of_members(self):
        chan = CompositeChannel([OnOffChannel(0.6), OnOffChannel(0.6)])
        real = chan.sample(50, seed=3)
        edges = np.array([(u, v) for u in range(50) for v in range(u + 1, 50)])
        mask = real.edge_mask(edges)
        m0 = real.members[0].edge_mask(edges)
        m1 = real.members[1].edge_mask(edges)
        assert np.array_equal(mask, m0 & m1)

    def test_mask_consistent_on_requery(self):
        real = CompositeChannel([OnOffChannel(0.5), OnOffChannel(0.5)]).sample(
            20, seed=4
        )
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        first = real.edge_mask(edges)
        assert np.array_equal(real.edge_mask(edges), first)

    def test_channel_edges_subset_of_each_member(self):
        chan = CompositeChannel([OnOffChannel(0.7), DiskChannel(0.5, torus=True)])
        real = chan.sample(30, seed=5)
        composite_edges = {tuple(map(int, e)) for e in real.channel_edges()}
        for member in real.members:
            member_mask = member.edge_mask(
                np.array(sorted(composite_edges), dtype=np.int64).reshape(-1, 2)
            )
            assert member_mask.all()

    def test_triple_intersection_in_wsn(self):
        # G_q ∩ G(n,p) ∩ RGG(n,r): reference [38]'s model, end to end.
        chan = CompositeChannel([OnOffChannel(0.8), DiskChannel(0.6, torus=True)])
        wsn = SecureWSN(40, QCompositeScheme(15, 200, 2), chan, seed=6)
        onoff_only = SecureWSN(
            40, QCompositeScheme(15, 200, 2), OnOffChannel(0.8), seed=6
        )
        # Same seed gives same rings; extra constraint can only thin links.
        assert np.array_equal(wsn.rings, onoff_only.rings)
        assert wsn.secure_edges().shape[0] <= onoff_only.secure_edges().shape[0]


class TestResilience:
    @pytest.fixture
    def net(self) -> SecureWSN:
        return SecureWSN(
            60, QCompositeScheme(25, 300, 2), OnOffChannel(0.9), seed=11
        )

    def test_zero_captured_matches_plain_connectivity(self, net):
        out = evaluate_resilience(net, 0, seed=1)
        assert out.compromised_links == 0
        assert out.survivors == 60
        assert out.resiliently_connected == out.connected_ignoring_compromise
        assert out.connected_ignoring_compromise == net.is_connected()

    def test_resilient_implies_plain(self, net):
        for seed in range(8):
            out = evaluate_resilience(net, 10, seed=seed)
            if out.resiliently_connected:
                assert out.connected_ignoring_compromise

    def test_survivor_count(self, net):
        out = evaluate_resilience(net, 15, seed=2)
        assert out.survivors == 45
        assert len(out.captured_nodes) == 15

    def test_compromise_fraction_bounds(self, net):
        out = evaluate_resilience(net, 20, seed=3)
        assert 0.0 <= out.compromise_fraction <= 1.0
        assert (
            out.surviving_links + out.compromised_links
            >= out.surviving_links
        )

    def test_nondestructive(self, net):
        before = net.live_count()
        evaluate_resilience(net, 12, seed=4)
        assert net.live_count() == before

    def test_capture_too_many_raises(self, net):
        with pytest.raises(ParameterError):
            evaluate_resilience(net, 59)

    def test_negative_captured_raises(self, net):
        with pytest.raises(ParameterError):
            evaluate_resilience(net, -1)

    def test_heavy_capture_degrades(self):
        # With a tiny pool, capturing most sensors compromises nearly
        # everything: resilient connectivity should fail far more often
        # than plain connectivity.
        resilient_hits = plain_hits = 0
        for seed in range(10):
            net = SecureWSN(
                40, QCompositeScheme(12, 60, 1), OnOffChannel(1.0), seed=seed
            )
            out = evaluate_resilience(net, 25, seed=seed)
            resilient_hits += out.resiliently_connected
            plain_hits += out.connected_ignoring_compromise
        assert resilient_hits <= plain_hits

    def test_experiment_registered(self):
        from repro.experiments.registry import get_experiment

        assert get_experiment("resilience").name == "resilience"

    def test_experiment_quick_run(self):
        from repro.experiments.resilience import render_resilience, run_resilience

        result = run_resilience(
            trials=3,
            qs=(1,),
            captured_grid=(0, 10),
            num_nodes=80,
            design_nodes=80,
            pool_size=1000,
            workers=1,
        )
        assert len(result.points) == 2
        zero_row = result.points[0]
        assert zero_row.point["mean_compromise_fraction"] == 0.0
        assert "resiliently conn." in render_resilience(result)