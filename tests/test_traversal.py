"""Tests for BFS/DFS traversal, components, shortest paths."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_order,
    connected_components,
    eccentricity,
    is_connected,
    shortest_path,
)
from tests.conftest import random_gnp_graph


def _to_nx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(range(g.num_nodes))
    ng.add_edges_from(g.edges())
    return ng


class TestBfs:
    def test_order_starts_at_source(self):
        g = Graph.path(4)
        assert bfs_order(g, 2)[0] == 2

    def test_reaches_component_only(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert set(bfs_order(g, 0)) == {0, 1}

    def test_bad_source_raises(self):
        with pytest.raises(GraphError):
            bfs_order(Graph(2), 5)


class TestComponents:
    def test_isolated_nodes_are_components(self):
        g = Graph(3)
        assert len(connected_components(g)) == 3

    def test_largest_first(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1]

    def test_matches_networkx_on_random(self, rng):
        for _ in range(25):
            g = random_gnp_graph(int(rng.integers(2, 40)), 0.08, rng)
            ours = sorted(len(c) for c in connected_components(g))
            theirs = sorted(len(c) for c in nx.connected_components(_to_nx(g)))
            assert ours == theirs


class TestIsConnected:
    def test_singleton(self):
        assert is_connected(Graph(1))

    def test_cycle(self):
        assert is_connected(Graph.cycle(5))

    def test_two_parts(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))


class TestShortestPath:
    def test_trivial(self):
        assert shortest_path(Graph(3), 1, 1) == [1]

    def test_disconnected_returns_none(self):
        assert shortest_path(Graph(3, [(0, 1)]), 0, 2) is None

    def test_path_validity_and_length(self, rng):
        for _ in range(25):
            g = random_gnp_graph(int(rng.integers(3, 30)), 0.15, rng)
            ng = _to_nx(g)
            s, t = 0, g.num_nodes - 1
            ours = shortest_path(g, s, t)
            if ours is None:
                assert not nx.has_path(ng, s, t)
                continue
            # Each hop must be a real edge, length must be optimal.
            for a, b in zip(ours, ours[1:]):
                assert g.has_edge(a, b)
            assert len(ours) - 1 == nx.shortest_path_length(ng, s, t)

    def test_bad_nodes_raise(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            shortest_path(g, 0, 7)
        with pytest.raises(GraphError):
            shortest_path(g, 7, 0)


class TestEccentricity:
    def test_path_graph_endpoint(self):
        assert eccentricity(Graph.path(5), 0) == 4

    def test_path_graph_center(self):
        assert eccentricity(Graph.path(5), 2) == 2

    def test_isolated(self):
        assert eccentricity(Graph(3), 0) == 0
