"""Tests for the shared-deployment batched sweep engine.

Covers the three properties the engine's exactness rests on:

1. the nested-thinning coupling invariant (smaller ``p`` / larger ``q``
   masks are subsets of larger ``p`` / smaller ``q`` masks within one
   deployment);
2. statistical consistency between the sweep backend and the legacy
   per-point path (same model marginally, only the joint law differs);
3. determinism: both backends are bit-exact under a fixed seed, and the
   sweep result is invariant to the worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments.figure1 import run_figure1
from repro.experiments.zero_one import run_zero_one
from repro.graphs.generators import erdos_renyi_edges
from repro.graphs.traversal import connected_components
from repro.graphs.graph import Graph
from repro.graphs.unionfind import (
    connected_components_labels,
    count_components_pair_keys,
    is_connected_pair_keys,
)
from repro.simulation.sweep import (
    SweepSpec,
    run_sweep_trials,
    sweep_connectivity_estimates,
    sweep_curve_masks,
    sweep_deployment_outcomes,
)

SIX_CURVES = [(2, 1.0), (2, 0.5), (2, 0.2), (3, 1.0), (3, 0.5), (3, 0.2)]


def _subset(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether boolean mask *a* selects a subset of mask *b*."""
    return not bool((a & ~b).any())


class TestVectorizedKernel:
    def test_matches_bfs_on_random_er_graphs(self):
        rng = np.random.default_rng(42)
        for n in (2, 3, 7, 25, 120):
            for p in (0.0, 0.01, 0.05, 0.2, 0.8):
                edges = erdos_renyi_edges(n, p, rng)
                g = Graph.from_edge_array(n, edges)
                comps = len(connected_components(g))
                labels = connected_components_labels(n, edges)
                assert np.unique(labels).size == comps
                keys = (
                    edges[:, 0] * n + edges[:, 1]
                    if edges.size
                    else np.empty(0, dtype=np.int64)
                )
                assert count_components_pair_keys(n, keys) == comps
                assert is_connected_pair_keys(n, keys) == (comps == 1)

    def test_label_is_component_minimum(self):
        # Two components {0,1,2} and {3,4}: labels collapse to minima.
        edges = np.array([[1, 2], [0, 2], [3, 4]])
        labels = connected_components_labels(5, edges)
        assert labels.tolist() == [0, 0, 0, 3, 3]

    def test_pair_keys_edge_cases(self):
        assert is_connected_pair_keys(1, np.empty(0, dtype=np.int64))
        assert not is_connected_pair_keys(2, np.empty(0, dtype=np.int64))
        assert is_connected_pair_keys(2, np.array([1]))  # key 0*2+1
        assert count_components_pair_keys(4, np.empty(0, dtype=np.int64)) == 4


class TestCouplingInvariant:
    def test_masks_nested_in_p_and_q(self):
        rng = np.random.default_rng(2017)
        for _ in range(5):
            cand, masks = sweep_curve_masks(200, 2000, 40, SIX_CURVES, rng)
            by_curve = dict(zip(SIX_CURVES, masks))
            # p-nesting at fixed q (nested thinning of one uniform draw).
            for q in (2, 3):
                assert _subset(by_curve[(q, 0.2)], by_curve[(q, 0.5)])
                assert _subset(by_curve[(q, 0.5)], by_curve[(q, 1.0)])
            # q-nesting at fixed p (counts >= 3 implies counts >= 2).
            for p in (1.0, 0.5, 0.2):
                assert _subset(by_curve[(3, p)], by_curve[(2, p)])
            # p = 1 keeps every candidate with enough overlap.
            assert by_curve[(2, 1.0)].all()

    def test_channel_marginal_rate(self):
        # Thinning at p keeps ~p of the q-filtered candidates.
        rng = np.random.default_rng(5)
        cand, masks = sweep_curve_masks(300, 1000, 30, [(2, 1.0), (2, 0.5)], rng)
        full = int(masks[0].sum())
        kept = int(masks[1].sum())
        assert full > 500  # sanity: the point is non-degenerate
        assert abs(kept / full - 0.5) < 0.05

    def test_outcomes_monotone_across_curves(self):
        # Connectivity is monotone in the edge set, so within one
        # deployment outcome(p small) implies outcome(p large).
        rng = np.random.default_rng(11)
        for _ in range(10):
            out = sweep_deployment_outcomes(
                120, 2000, 30, [(2, 1.0), (2, 0.5), (2, 0.2)], rng
            )
            assert (not out[1]) or out[0]
            assert (not out[2]) or out[1]


class TestSweepDeterminism:
    def test_bit_exact_repeat_and_worker_invariance(self):
        spec = SweepSpec(
            num_nodes=100,
            pool_size=1500,
            ring_sizes=(25, 35),
            curves=((2, 1.0), (2, 0.5)),
            trials=8,
            seed=99,
        )
        a = run_sweep_trials(spec, workers=1)
        b = run_sweep_trials(spec, workers=1)
        c = run_sweep_trials(spec, workers=2)
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)
        assert a.shape == (2, 2)

    def test_estimates_shape_and_counts(self):
        spec = SweepSpec(
            num_nodes=80,
            pool_size=1000,
            ring_sizes=(20,),
            curves=((2, 1.0), (3, 1.0)),
            trials=5,
            seed=7,
        )
        estimates = sweep_connectivity_estimates(spec, workers=1)
        assert set(estimates) == {(2, 1.0), (3, 1.0)}
        for per_ring in estimates.values():
            assert set(per_ring) == {20}
            assert per_ring[20].trials == 5

    def test_invalid_specs_rejected(self):
        with pytest.raises(ParameterError):
            SweepSpec(
                num_nodes=10, pool_size=100, ring_sizes=(), curves=((2, 1.0),),
                trials=3,
            )
        with pytest.raises(ParameterError):
            SweepSpec(
                num_nodes=10, pool_size=100, ring_sizes=(5,), curves=(),
                trials=3,
            )
        with pytest.raises(ParameterError):
            # q exceeds the ring size.
            SweepSpec(
                num_nodes=10, pool_size=100, ring_sizes=(2,),
                curves=((3, 1.0),), trials=3,
            )


class TestBackendConsistency:
    def test_legacy_backend_bit_exact(self):
        kwargs = dict(
            trials=6, ring_sizes=[28, 34], curves=[(2, 0.5)],
            num_nodes=120, pool_size=2000, workers=1, backend="legacy",
        )
        a = run_figure1(**kwargs)
        b = run_figure1(**kwargs)
        assert [p.estimate.successes for p in a.points] == [
            p.estimate.successes for p in b.points
        ]
        assert a.config["backend"] == "legacy"

    def test_sweep_backend_bit_exact(self):
        kwargs = dict(
            trials=6, ring_sizes=[28, 34], curves=[(2, 0.5), (2, 1.0)],
            num_nodes=120, pool_size=2000, workers=1, backend="sweep",
        )
        a = run_figure1(**kwargs)
        b = run_figure1(**kwargs)
        assert [p.estimate.successes for p in a.points] == [
            p.estimate.successes for p in b.points
        ]

    def test_point_layout_matches_legacy(self):
        common = dict(
            trials=4, ring_sizes=[26, 32], curves=[(2, 1.0), (2, 0.5)],
            num_nodes=100, pool_size=1500, workers=1,
        )
        sweep = run_figure1(backend="sweep", **common)
        legacy = run_figure1(backend="legacy", **common)
        assert [p.point for p in sweep.points] == [p.point for p in legacy.points]
        assert [p.prediction for p in sweep.points] == [
            p.prediction for p in legacy.points
        ]

    def test_sweep_statistically_consistent_with_legacy(self):
        # Same model, matched trial counts: every sweep CI must overlap
        # the legacy CI at the same point (deterministic under the
        # fixed seeds; trial counts keep the CIs wide enough that a
        # correct implementation passes with large margin).
        common = dict(
            trials=120, ring_sizes=[26, 30], curves=[(2, 1.0), (2, 0.5)],
            num_nodes=150, pool_size=2000, workers=1,
        )
        sweep = run_figure1(backend="sweep", **common)
        legacy = run_figure1(backend="legacy", **common)
        for ps, pl in zip(sweep.points, legacy.points):
            assert ps.point == pl.point
            assert ps.estimate.ci_low <= pl.estimate.ci_high
            assert pl.estimate.ci_low <= ps.estimate.ci_high

    def test_zero_one_runs_on_sweep_engine(self):
        result = run_zero_one(
            trials=3, num_nodes_grid=(100,), alpha_offsets=(-2.0, 2.0),
            pool_size=2000, workers=1,
        )
        assert len(result.points) == 2
        # Shared deployments + monotone thinning: the higher-alpha
        # (higher-p) point can never estimate below the lower one.
        low, high = result.points
        assert low.point["alpha"] < high.point["alpha"]
        assert low.estimate.successes <= high.estimate.successes


class TestKernelBackendConsistency:
    """Every available kernel backend is bit-identical on the Figure-1
    fixture — the registry-wide extension of the PR 1 sweep/legacy
    backend-consistency pattern, run with the warm pool on and off.
    (The numba CI leg runs this file with numba installed, so the
    parametrization covers the jitted backend there.)
    """

    FIXTURE = dict(
        num_nodes=120,
        pool_size=2000,
        ring_sizes=(28, 34),
        curves=tuple(SIX_CURVES),
        trials=5,
        seed=2017,
    )

    def _available(self):
        from repro.kernels import available_backends

        return [b["name"] for b in available_backends() if b["available"]]

    def test_all_backends_identical_sweep_counts(self):
        baseline = run_sweep_trials(SweepSpec(**self.FIXTURE), workers=1)
        for name in self._available():
            spec = SweepSpec(kernel_backend=name, **self.FIXTURE)
            assert np.array_equal(
                run_sweep_trials(spec, workers=1), baseline
            ), name

    @pytest.mark.parametrize("persistent_pool", ["0", "1"])
    def test_backends_worker_invariant_pool_on_and_off(
        self, persistent_pool, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent_pool)
        baseline = run_sweep_trials(SweepSpec(**self.FIXTURE), workers=1)
        for name in self._available():
            spec = SweepSpec(kernel_backend=name, **self.FIXTURE)
            assert np.array_equal(
                run_sweep_trials(spec, workers=2), baseline
            ), (name, persistent_pool)
