"""Tests for the SecureWSN façade — the Eq. (1) composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.keygraphs.schemes import QCompositeScheme, shared_keys
from repro.params import QCompositeParams
from repro.wsn.network import SecureWSN


@pytest.fixture
def net() -> SecureWSN:
    return SecureWSN(
        30, QCompositeScheme(10, 100, 2), OnOffChannel(0.6), seed=77
    )


class TestConstruction:
    def test_sensor_count(self, net):
        assert len(net.sensors) == 30
        assert net.live_count() == 30

    def test_rings_match_scheme(self, net):
        assert net.rings.shape == (30, 10)

    def test_needs_two_sensors(self):
        with pytest.raises(ParameterError):
            SecureWSN(1, QCompositeScheme(5, 50, 1))

    def test_default_channel_perfect(self):
        wsn = SecureWSN(10, QCompositeScheme(5, 30, 1), seed=1)
        # p = 1: secure edges equal key-graph edges.
        assert np.array_equal(wsn.secure_edges(), wsn.key_graph_edges)

    def test_from_params(self):
        params = QCompositeParams(
            num_nodes=20, key_ring_size=8, pool_size=80, overlap=2, channel_prob=0.5
        )
        wsn = SecureWSN.from_params(params, seed=3)
        assert wsn.num_nodes == 20
        assert wsn.scheme.q == 2

    def test_deterministic_given_seed(self):
        a = SecureWSN(15, QCompositeScheme(6, 60, 1), OnOffChannel(0.5), seed=9)
        b = SecureWSN(15, QCompositeScheme(6, 60, 1), OnOffChannel(0.5), seed=9)
        assert np.array_equal(a.secure_edges(), b.secure_edges())


class TestTopologySemantics:
    def test_secure_edges_subset_of_key_edges(self, net):
        key = {tuple(map(int, e)) for e in net.key_graph_edges}
        secure = {tuple(map(int, e)) for e in net.secure_edges()}
        assert secure <= key

    def test_key_edges_satisfy_overlap(self, net):
        for u, v in net.key_graph_edges:
            assert shared_keys(net.rings[int(u)], net.rings[int(v)]).size >= 2

    def test_secure_edge_iff_key_and_channel(self, net):
        # Every key edge with an on channel appears; off channels don't.
        mask = net.channel_state.edge_mask(net.key_graph_edges)
        expect = {
            tuple(map(int, e))
            for e, m in zip(net.key_graph_edges, mask)
            if m
        }
        assert {tuple(map(int, e)) for e in net.secure_edges()} == expect

    def test_can_communicate_matches_graph(self, net):
        g = net.graph()
        for u in range(0, 10):
            for v in range(u + 1, 10):
                assert net.can_communicate(u, v) == g.has_edge(u, v)

    def test_can_communicate_same_node_raises(self, net):
        with pytest.raises(ParameterError):
            net.can_communicate(3, 3)

    def test_link_key_present_iff_link(self, net):
        g = net.graph()
        checked_with = checked_without = False
        for u in range(10):
            for v in range(u + 1, 10):
                key = net.link_key(u, v)
                if g.has_edge(u, v):
                    assert key is not None and len(key) == 16
                    checked_with = True
                else:
                    assert key is None
                    checked_without = True
        assert checked_with and checked_without


class TestFailures:
    def test_failed_node_drops_edges(self, net):
        before = net.graph().degrees()
        victim = int(np.argmax(before))
        net.fail_nodes([victim])
        edges = net.secure_edges()
        assert not ((edges[:, 0] == victim) | (edges[:, 1] == victim)).any()
        assert net.live_count() == 29

    def test_can_communicate_false_for_dead(self, net):
        net.fail_nodes([0])
        assert not net.can_communicate(0, 1)

    def test_restore_all(self, net):
        original = net.secure_edges().copy()
        net.fail_nodes([0, 1, 2])
        net.restore_all()
        assert np.array_equal(net.secure_edges(), original)
        assert net.live_count() == 30

    def test_connectivity_on_live_subgraph(self):
        # Fail everything except two linked sensors: connected again.
        wsn = SecureWSN(10, QCompositeScheme(9, 10, 1), seed=2)  # dense rings
        edges = wsn.secure_edges()
        assert edges.shape[0] > 0
        u, v = map(int, edges[0])
        wsn.fail_nodes([x for x in range(10) if x not in (u, v)])
        assert wsn.is_connected()

    def test_graph_cache_invalidation(self, net):
        g1 = net.graph()
        net.fail_nodes([5])
        g2 = net.graph()
        assert g2.degree(5) == 0
        assert g1 is not g2

    def test_bad_node_id_raises(self, net):
        with pytest.raises(ParameterError):
            net.fail_nodes([99])


class TestKConnectivity:
    def test_k_connectivity_consistent_with_graph(self, net):
        from repro.graphs.vertex_connectivity import is_k_connected

        for k in (1, 2):
            assert net.is_k_connected(k) == is_k_connected(net.graph(), k)

    def test_k_connectivity_after_failures(self, net):
        net.fail_nodes([0, 1])
        # Should evaluate on the 28-node live subgraph without crashing.
        result = net.is_k_connected(1)
        assert isinstance(result, bool)
        assert result == net.is_connected()
