"""Headline chaos proof: faulted runs converge to the fault-free answer.

Under every injection strategy — crash, delay, drop, partial result,
broken pool — with a bounded retry budget, a supervised study run must
produce a ``ScenarioResult`` bit-identical to the fault-free one-shot
run, with the warm pool on and off.  This is the determinism contract
the fault-tolerant scheduler is built on: work units carry their own
absolute-trial seeds, so a retried or speculatively re-executed unit
recomputes exactly the same values.

Every chaos strategy here caps injection at ``max_attempt=2`` while the
scheduler budgets ``max_retries=4``: convergence within the budget is
*guaranteed*, not merely probable, so these tests are deterministic.
The degradation test drops the cap to prove the other half of the
contract: exhausted units dead-letter into a partial (NaN-bearing)
result plus a fault report, never discarding completed shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.faults import STRATEGY_KINDS, ChaosSpec, FaultStrategy
from repro.simulation.scheduler import SchedulerPolicy
from repro.study.adaptive import run_adaptive_study
from repro.study.compiler import Study
from repro.study.scenario import ClassMix, MetricSpec, Scenario

WORKERS = 2


def _zero_one_scenario(trials=6):
    return Scenario(
        name="zero_one",
        num_nodes=40,
        pool_size=300,
        ring_sizes=(12, 15),
        curves=((2, 0.6), (2, 1.0)),
        trials=trials,
        seed=11,
        metrics=(MetricSpec("connectivity"),),
    )


def _chaos_policy(kind, probability=0.95, max_retries=4):
    spec = ChaosSpec(
        seed=5,
        strategies=(
            FaultStrategy(kind=kind, probability=probability, delay=0.05, max_attempt=2),
        ),
    )
    return SchedulerPolicy(max_retries=max_retries, backoff_base=0.01, chaos=spec)


@pytest.fixture(scope="module")
def baseline():
    return Study((_zero_one_scenario(),)).run(workers=WORKERS)


@pytest.mark.parametrize("kind", STRATEGY_KINDS)
@pytest.mark.parametrize("persistent", ["0", "1"])
def test_faulted_run_is_bit_identical(kind, persistent, baseline, monkeypatch):
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
    faulted = Study((_zero_one_scenario(),)).run(
        workers=WORKERS, scheduler=_chaos_policy(kind)
    )
    assert np.array_equal(
        baseline["zero_one"].values, faulted["zero_one"].values
    )
    assert not np.isnan(faulted["zero_one"].values).any()
    report = faulted.provenance["faults"]
    assert report["completed"] == report["units"]
    assert not report["dead_units"]
    # The chaos campaign actually fired: every strategy leaves its own
    # signature counter (delay completes on the first attempt, the rest
    # force retries).
    fired = (
        report["crashes"] + report["drops"] + report["corrupt"]
        + report["pool_breaks"] + report["delays"]
    )
    assert fired > 0


def _het_scenario(trials=6):
    return Scenario(
        name="het",
        num_nodes_grid=(30, 40),
        pool_size=300,
        ring_sizes=((10, 16),),
        curves=((1, 0.5), (1, 1.0)),
        trials=trials,
        seed=11,
        metrics=(MetricSpec("connectivity"),),
        classes=ClassMix(mu=(0.5, 0.5), channel_probs=((0.9, 0.6), (0.6, 0.4))),
    )


@pytest.mark.parametrize("persistent", ["0", "1"])
def test_class_mix_scenario_converges_under_chaos(persistent, monkeypatch):
    # The heterogeneous axis adds draws (labels, per-class rings) to
    # every work unit; retried units must still recompute identically.
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
    clean = Study((_het_scenario(),)).run(workers=WORKERS)
    faulted = Study((_het_scenario(),)).run(
        workers=WORKERS, scheduler=_chaos_policy("crash")
    )
    assert np.array_equal(clean["het"].values, faulted["het"].values)
    report = faulted.provenance["faults"]
    assert report["crashes"] > 0
    assert report["completed"] == report["units"]


@pytest.mark.parametrize("persistent", ["0", "1"])
def test_adaptive_study_converges_under_chaos(persistent, monkeypatch):
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent)
    clean = run_adaptive_study(
        Study((_zero_one_scenario(),)),
        max_trials=24,
        ci_target=0.15,
        workers=WORKERS,
    )
    spec = ChaosSpec(
        seed=5,
        strategies=(FaultStrategy(kind="crash", probability=0.7, max_attempt=2),),
    )
    faulted = run_adaptive_study(
        Study((_zero_one_scenario(),)),
        max_trials=24,
        ci_target=0.15,
        workers=WORKERS,
        scheduler=SchedulerPolicy(max_retries=4, backoff_base=0.01, chaos=spec),
    )
    # NaN-aware equality: adaptive results hold NaN beyond each cell's
    # stopping point, and both runs must stop at identical points.
    assert np.array_equal(
        clean["zero_one"].values, faulted["zero_one"].values, equal_nan=True
    )
    report = faulted.provenance["faults"]
    assert report["crashes"] > 0
    assert report["completed"] == report["units"]


def test_exhausted_retries_degrade_to_partial_result(baseline):
    # Unbounded injection (no max_attempt) with drop probability 0.7 and
    # chaos seed 3: unit 1's coin flips fail every attempt in the budget
    # while unit 0 recovers — deterministic, seeded, worker-independent.
    spec = ChaosSpec(
        seed=3, strategies=(FaultStrategy(kind="drop", probability=0.7),)
    )
    faulted = Study((_zero_one_scenario(),)).run(
        workers=WORKERS,
        scheduler=SchedulerPolicy(max_retries=2, backoff_base=0.01, chaos=spec),
    )
    report = faulted.provenance["faults"]
    assert report["dead_units"], "expected at least one dead-lettered unit"
    assert report["completed"] >= 1, "expected at least one surviving unit"
    values = faulted["zero_one"].values
    base = baseline["zero_one"].values
    evaluated = ~np.isnan(values)
    assert evaluated.any() and not evaluated.all()
    # Completed shards are kept and bit-identical; dead units degrade to
    # NaN (unevaluated) cells rather than failing the run.
    assert np.array_equal(values[evaluated], base[evaluated])
    assert report["drops"] > 0


def test_fault_report_lands_in_provenance_with_policy():
    policy = _chaos_policy("crash")
    result = Study((_zero_one_scenario(trials=4),)).run(
        workers=WORKERS, scheduler=policy
    )
    assert result.provenance["scheduler"] == policy.to_dict()
    report = result.provenance["faults"]
    assert report["units"] > 0 and report["completed"] == report["units"]
