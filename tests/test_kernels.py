"""Tests for the pluggable kernel-backend layer (:mod:`repro.kernels`).

Four pillars:

1. registry semantics — names, availability gating, resolution
   precedence (explicit > active > env > reference), context restore;
2. the Nagamochi–Ibaraki sparse certificate — structural guarantees
   (subset, <= k(n-1) edges) and the certificate-equivalence property:
   ``is_k_connected`` with the certificate agrees bit-for-bit with the
   plain Dinic decision on random ER and key-ring graphs across a k
   grid, including the k <= 2 shortcut paths and n < k + 1 edge cases;
3. backend consistency — every *available* registered backend produces
   identical sweep metrics on the shared Figure-1 fixture, warm pool on
   and off (the corpus the numba CI leg runs with numba installed);
4. config threading — Scenario/SweepSpec fields, JSON round-trip, CLI
   flag and ``repro kernels``, provenance stamping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import KernelError, ParameterError
from repro.graphs.generators import erdos_renyi_edges
from repro.graphs.graph import Graph
from repro.graphs.vertex_connectivity import (
    is_k_connected,
    is_k_connected_edges,
    vertex_connectivity,
)
from repro.kernels import (
    ENV_VAR,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_backend,
    use_backend,
)
from repro.kernels.probe import probe_backends
from repro.kernels.reference import ReferenceBackend, scan_first_certificate
from repro.keygraphs.uniform_graph import uniform_intersection_edges
from repro.simulation.sweep import SweepSpec, run_sweep_trials
from repro.study import MetricSpec, Scenario, Study

AVAILABLE = [info["name"] for info in available_backends() if info["available"]]


@pytest.fixture(autouse=True)
def _reset_active_backend():
    """Never leak set_backend/use_backend state across tests."""
    yield
    set_backend(None)


def _key_ring_graph(n, ring, pool, p, seed):
    """A q=2 key-ring graph with Bernoulli(p) channel thinning."""
    edges = uniform_intersection_edges(n, ring, pool, 2, seed=seed)
    if p < 1.0:
        rng = np.random.default_rng(seed + 1)
        edges = edges[rng.random(edges.shape[0]) < p]
    return edges


class TestRegistry:
    def test_reference_always_registered_and_default(self):
        assert backend_names()[0] == "reference"
        assert resolve_backend_name() == "reference"
        assert get_backend().name == "reference"
        infos = {info["name"]: info for info in available_backends()}
        assert infos["reference"]["available"]
        assert "numba" in infos  # registered even when unavailable

    def test_unknown_backend_raises(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            resolve_backend_name("no-such-backend")
        with pytest.raises(KernelError):
            get_backend("no-such-backend")
        with pytest.raises(KernelError):
            set_backend("no-such-backend")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert resolve_backend_name() == "reference"
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(KernelError, match="REPRO_KERNEL_BACKEND"):
            resolve_backend_name()

    def test_active_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        set_backend("reference")  # CLI flag precedence over env
        assert resolve_backend_name() == "reference"

    def test_use_backend_restores(self):
        assert resolve_backend_name() == "reference"
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert resolve_backend_name() == "reference"
        assert resolve_backend_name() == "reference"

    def test_register_replace_roundtrip(self):
        class Probe(ReferenceBackend):
            name = "test-probe"

        register_backend("test-probe", Probe)
        try:
            assert get_backend("test-probe").name == "test-probe"
            assert "test-probe" in backend_names()
        finally:
            # De-register by rebuilding the entry as unavailable.
            register_backend(
                "test-probe", Probe, available=lambda: False,
                unavailable_reason=lambda: "test cleanup",
            )

    def test_numba_gate_when_missing(self):
        infos = {info["name"]: info for info in available_backends()}
        if infos["numba"]["available"]:
            pytest.skip("numba installed; the gate path needs it absent")
        with pytest.raises(KernelError, match="numba"):
            get_backend("numba")


class TestSparseCertificate:
    def test_subset_and_size_bound(self):
        rng = np.random.default_rng(7)
        for n, p in ((30, 0.4), (60, 0.2), (25, 0.9)):
            edges = erdos_renyi_edges(n, p, rng)
            for k in (1, 2, 3, 4):
                cert = scan_first_certificate(n, edges, k)
                assert cert.shape[0] <= k * (n - 1)
                keys = set((edges[:, 0] * n + edges[:, 1]).tolist())
                cert_keys = (cert[:, 0] * n + cert[:, 1]).tolist()
                assert set(cert_keys) <= keys
                assert len(cert_keys) == len(set(cert_keys))

    def test_sparse_input_returned_unchanged(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
        cert = scan_first_certificate(4, edges, 2)
        assert cert is edges

    def test_first_forest_spans_components(self):
        # k = 1 certificate of a connected graph is a spanning tree.
        rng = np.random.default_rng(3)
        edges = erdos_renyi_edges(40, 0.3, rng)
        g = Graph.from_edge_array(40, edges)
        from repro.graphs.traversal import is_connected

        if is_connected(g):
            cert = scan_first_certificate(40, edges, 1)
            assert cert.shape[0] == 39
            assert is_connected(Graph.from_edge_array(40, cert))

    def test_certificate_preserves_kappa_up_to_k(self):
        # The certificate preserves the decision for every k' <= k.
        rng = np.random.default_rng(11)
        for _ in range(5):
            edges = erdos_renyi_edges(24, 0.5, rng)
            k = 4
            cert = scan_first_certificate(24, edges, k)
            kappa_full = vertex_connectivity(Graph.from_edge_array(24, edges))
            kappa_cert = vertex_connectivity(Graph.from_edge_array(24, cert))
            assert min(kappa_cert, k) == min(kappa_full, k)


class TestCertificateEquivalence:
    """Satellite: cert and plain decisions agree bit-for-bit."""

    def test_er_graphs_across_k_grid(self):
        rng = np.random.default_rng(2017)
        for n in (8, 15, 30, 60):
            for p in (0.05, 0.15, 0.4, 0.8):
                edges = erdos_renyi_edges(n, p, rng)
                g = Graph.from_edge_array(n, edges)
                for k in range(0, 6):
                    plain = is_k_connected(g, k, certificate=False)
                    with_cert = is_k_connected(g, k, certificate=True)
                    from_edges = is_k_connected_edges(n, edges, k)
                    assert plain == with_cert == from_edges, (n, p, k)

    def test_key_ring_graphs_across_k_grid(self):
        for seed, p in ((1, 1.0), (2, 0.6), (3, 0.35)):
            n = 80
            edges = _key_ring_graph(n, 18, 600, p, seed)
            g = Graph.from_edge_array(n, edges)
            for k in (1, 2, 3, 4):
                plain = is_k_connected(g, k, certificate=False)
                with_cert = is_k_connected(g, k, certificate=True)
                assert plain == with_cert, (seed, p, k)

    def test_k_le_2_shortcut_paths(self):
        # k <= 2 goes through union-find / Tarjan; both certificate
        # settings must agree with the dedicated implementations.
        from repro.graphs.biconnectivity import is_biconnected
        from repro.graphs.traversal import is_connected

        rng = np.random.default_rng(5)
        for n, p in ((12, 0.2), (40, 0.1), (40, 0.3)):
            edges = erdos_renyi_edges(n, p, rng)
            g = Graph.from_edge_array(n, edges)
            assert is_k_connected(g, 1, certificate=True) == is_connected(g)
            assert is_k_connected(g, 1, certificate=False) == is_connected(g)
            assert is_k_connected(g, 2, certificate=True) == is_biconnected(g)
            assert is_k_connected(g, 2, certificate=False) == is_biconnected(g)

    def test_small_n_edge_cases(self):
        # n < k + 1 is False for every certificate setting; k <= 0 True.
        for cert in (True, False):
            assert is_k_connected(Graph(3), 0, certificate=cert)
            assert is_k_connected(Graph(1), 0, certificate=cert)
            assert not is_k_connected(Graph.complete(3), 3, certificate=cert)
            assert not is_k_connected(Graph.complete(4), 4, certificate=cert)
            assert is_k_connected(Graph.complete(4), 3, certificate=cert)
        assert not is_k_connected_edges(3, np.empty((0, 2), dtype=np.int64), 1)
        assert is_k_connected_edges(1, np.empty((0, 2), dtype=np.int64), 0)
        assert not is_k_connected_edges(2, np.empty((0, 2), dtype=np.int64), 2)

    def test_matches_exact_kappa(self):
        rng = np.random.default_rng(99)
        for _ in range(8):
            edges = erdos_renyi_edges(14, 0.45, rng)
            g = Graph.from_edge_array(14, edges)
            kappa = vertex_connectivity(g)
            for k in range(1, 6):
                assert is_k_connected(g, k, certificate=True) == (kappa >= k)


def _fixture_study(kernel_backend=None, trials=5):
    """The shared Figure-1-style consistency fixture: every kernel on."""
    return Study(
        (
            Scenario(
                name="consistency",
                num_nodes=70,
                pool_size=600,
                ring_sizes=(14, 18),
                curves=((2, 1.0), (2, 0.6), (3, 1.0)),
                metrics=(
                    MetricSpec("connectivity"),
                    MetricSpec("k_connectivity", k=2),
                    MetricSpec("k_connectivity", k=3),
                    MetricSpec("min_degree", k=3),
                    MetricSpec("giant_fraction"),
                    MetricSpec("degree_count", h=2),
                ),
                trials=trials,
                seed=424242,
                kernel_backend=kernel_backend,
            ),
        )
    )


class TestBackendConsistency:
    """Satellite: all registered backends identical on the fixture."""

    def test_reference_is_available_here(self):
        assert "reference" in AVAILABLE

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_study_metrics_identical_across_backends(self, backend):
        baseline = _fixture_study(kernel_backend=None).run(workers=1)
        result = _fixture_study(kernel_backend=backend).run(workers=1)
        np.testing.assert_array_equal(
            result["consistency"].values, baseline["consistency"].values
        )
        assert result.provenance["kernel_backends"] == [backend]

    @pytest.mark.parametrize("backend", AVAILABLE)
    @pytest.mark.parametrize("persistent_pool", ["0", "1"])
    def test_warm_pool_on_and_off(self, backend, persistent_pool, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", persistent_pool)
        serial = _fixture_study(kernel_backend=backend).run(workers=1)
        pooled = _fixture_study(kernel_backend=backend).run(workers=2)
        np.testing.assert_array_equal(
            serial["consistency"].values, pooled["consistency"].values
        )

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_sweep_engine_identical_across_backends(self, backend):
        spec = SweepSpec(
            num_nodes=80,
            pool_size=900,
            ring_sizes=(16, 20),
            curves=((2, 1.0), (2, 0.5)),
            trials=6,
            seed=31,
        )
        baseline = run_sweep_trials(spec, workers=1)
        import dataclasses

        pinned = dataclasses.replace(spec, kernel_backend=backend)
        result = run_sweep_trials(pinned, workers=1)
        assert np.array_equal(result, baseline)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_probe_passes(self, backend):
        (probe,) = probe_backends(backend)
        assert probe["available"]
        assert probe["ok"], probe["checks"]


class TestConfigThreading:
    def test_scenario_round_trip_with_backend(self):
        scenario = _fixture_study(kernel_backend="reference").scenarios[0]
        assert scenario.to_dict()["kernel_backend"] == "reference"
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario

    def test_scenario_omits_unset_backend(self):
        scenario = _fixture_study(kernel_backend=None).scenarios[0]
        assert "kernel_backend" not in scenario.to_dict()

    def test_scenario_rejects_unknown_backend(self):
        with pytest.raises(ParameterError, match="unknown kernel backend"):
            _fixture_study(kernel_backend="bogus")

    def test_protocol_scenario_rejects_backend(self):
        with pytest.raises(ParameterError, match="protocol"):
            Scenario(
                name="coupled",
                kind="protocol",
                protocol="lemma5_coupling",
                num_nodes=30,
                pool_size=200,
                trials=3,
                protocol_params={"ring_size": 8, "channel_prob": 0.9},
                kernel_backend="reference",
            )

    def test_group_conflicting_backends_raise(self):
        base = _fixture_study(kernel_backend="reference").scenarios[0]
        import dataclasses

        other = dataclasses.replace(
            base, name="other", kernel_backend=None
        )
        conflicting = dataclasses.replace(other, kernel_backend="numba")
        with pytest.raises(ParameterError, match="different kernel backends"):
            Study((base, conflicting)).compile()
        # None + explicit is not a conflict: None means ambient.
        plans = Study((base, other)).compile()
        assert len(plans) == 1
        assert plans[0].kernel_backend == "reference"

    def test_sweep_spec_rejects_unknown_backend(self):
        with pytest.raises(KernelError):
            SweepSpec(
                num_nodes=10,
                pool_size=100,
                ring_sizes=(5,),
                curves=((2, 1.0),),
                trials=2,
                kernel_backend="bogus",
            )

    def test_env_override_threads_into_provenance(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        result = _fixture_study(trials=2).run(workers=1)
        assert result.provenance["kernel_backends"] == ["reference"]
        assert result.provenance["groups"][0]["kernel_backend"] == "reference"


class TestCli:
    def test_kernels_subcommand_smoke(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out
        assert "numba" in out

    def test_kernels_single_backend(self, capsys):
        assert main(["kernels", "--backend", "reference"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out

    def test_kernels_unknown_backend_errors(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["kernels", "--backend", "bogus"])

    def test_run_with_kernel_backend_flag(self, capsys):
        code = main(
            [
                "run",
                "figure1",
                "--trials",
                "2",
                "--workers",
                "1",
                "--kernel-backend",
                "reference",
                "--set",
                "ring_sizes=[16]",
                "--set",
                "num_nodes=50",
                "--set",
                "pool_size=500",
            ]
        )
        assert code == 0
        assert "K" in capsys.readouterr().out

    def test_run_with_bad_kernel_backend_fails_fast(self):
        with pytest.raises(KernelError):
            main(["run", "figure1", "--kernel-backend", "bogus"])

    def test_study_set_kernel_backend(self, tmp_path, capsys):
        study = _fixture_study(trials=2)
        path = tmp_path / "study.json"
        path.write_text(study.to_json())
        code = main(
            [
                "study",
                str(path),
                "--workers",
                "1",
                "--set",
                "kernel_backend=reference",
                "--set",
                "trials=2",
            ]
        )
        assert code == 0
        assert "consistency" in capsys.readouterr().out
