"""Tests for trial protocols and estimation runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import QCompositeParams
from repro.simulation.runners import (
    estimate_agreement,
    estimate_connectivity,
    estimate_k_connectivity,
    estimate_min_degree,
    sample_degree_counts,
)
from repro.simulation.trials import (
    connectivity_trial,
    degree_count_trial,
    k_connectivity_trial,
    min_degree_trial,
    min_degree_vs_kconn_trial,
    sample_secure_edges,
)


@pytest.fixture
def mid_params() -> QCompositeParams:
    """Near-threshold point at small n: outcomes vary across trials."""
    return QCompositeParams(
        num_nodes=80, key_ring_size=14, pool_size=600, overlap=2, channel_prob=0.7
    )


class TestSampleSecureEdges:
    def test_deterministic_per_generator_state(self, mid_params):
        a = sample_secure_edges(mid_params, np.random.default_rng(1))
        b = sample_secure_edges(mid_params, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_channel_thins_edges(self, mid_params):
        full = mid_params.with_updates(channel_prob=1.0)
        thin = mid_params.with_updates(channel_prob=0.3)
        e_full = sample_secure_edges(full, np.random.default_rng(2))
        e_thin = sample_secure_edges(thin, np.random.default_rng(2))
        assert e_thin.shape[0] < e_full.shape[0]

    def test_p_one_equals_key_graph(self, mid_params):
        from repro.keygraphs.rings import sample_uniform_rings
        from repro.keygraphs.uniform_graph import edges_from_rings

        params = mid_params.with_updates(channel_prob=1.0)
        rng = np.random.default_rng(3)
        ours = sample_secure_edges(params, rng)
        rng2 = np.random.default_rng(3)
        rings = sample_uniform_rings(80, 14, 600, rng2)
        expect = edges_from_rings(rings, 2)
        assert np.array_equal(ours, expect)


class TestTrialProtocols:
    def test_connectivity_trial_bool(self, mid_params):
        assert isinstance(connectivity_trial(mid_params, np.random.default_rng(1)), bool)

    def test_k1_trial_matches_connectivity_trial(self, mid_params):
        for seed in range(5):
            a = connectivity_trial(mid_params, np.random.default_rng(seed))
            b = k_connectivity_trial(mid_params, 1, np.random.default_rng(seed))
            assert a == b

    def test_kconn_implies_mindegree(self, mid_params):
        for seed in range(10):
            deg_ok, conn_ok = min_degree_vs_kconn_trial(
                mid_params, 2, np.random.default_rng(seed)
            )
            if conn_ok:
                assert deg_ok

    def test_min_degree_trial_matches_joint(self, mid_params):
        for seed in range(5):
            solo = min_degree_trial(mid_params, 2, np.random.default_rng(seed))
            joint, _ = min_degree_vs_kconn_trial(
                mid_params, 2, np.random.default_rng(seed)
            )
            assert solo == joint

    def test_degree_count_consistent(self, mid_params):
        # Sum of counts over all h equals n for any single sample.
        rng_master = np.random.default_rng(4)
        edges = sample_secure_edges(mid_params, rng_master)
        from repro.graphs.properties import degrees_from_edges

        degs = degrees_from_edges(80, edges)
        total = sum(
            int((degs == h).sum()) for h in range(int(degs.max()) + 1)
        )
        assert total == 80

    def test_degree_count_trial_nonnegative(self, mid_params):
        v = degree_count_trial(mid_params, 1, np.random.default_rng(5))
        assert isinstance(v, int) and v >= 0


class TestRunners:
    def test_connectivity_estimate_fields(self, mid_params):
        est = estimate_connectivity(mid_params, 20, seed=1, workers=1)
        assert est.trials == 20
        assert est.successes == round(est.estimate * 20)

    def test_k1_dispatches_to_connectivity(self, mid_params):
        a = estimate_connectivity(mid_params, 15, seed=2, workers=1)
        b = estimate_k_connectivity(mid_params, 1, 15, seed=2, workers=1)
        assert a == b

    def test_parallel_equals_serial(self, mid_params):
        a = estimate_connectivity(mid_params, 12, seed=3, workers=1)
        b = estimate_connectivity(mid_params, 12, seed=3, workers=4)
        assert a == b

    def test_min_degree_at_least_kconn(self, mid_params):
        # P[min deg >= k] >= P[k-connected] on identical seeds.
        deg, conn, agreement = estimate_agreement(
            mid_params, 2, 30, seed=4, workers=1
        )
        assert deg.estimate >= conn.estimate
        assert 0.0 <= agreement <= 1.0

    def test_degree_counts_array(self, mid_params):
        counts = sample_degree_counts(mid_params, 0, 25, seed=5, workers=1)
        assert counts.shape == (25,)
        assert (counts >= 0).all()

    def test_min_degree_estimate(self, mid_params):
        est = estimate_min_degree(mid_params, 1, 20, seed=6, workers=1)
        assert 0.0 <= est.estimate <= 1.0
