"""Tests for articulation points / biconnectivity vs networkx."""

from __future__ import annotations

import networkx as nx

from repro.graphs.biconnectivity import articulation_points, is_biconnected
from repro.graphs.graph import Graph
from tests.conftest import random_gnp_graph


def _to_nx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(range(g.num_nodes))
    ng.add_edges_from(g.edges())
    return ng


class TestArticulationPoints:
    def test_path_interior_nodes(self):
        g = Graph.path(5)
        assert articulation_points(g) == {1, 2, 3}

    def test_cycle_has_none(self):
        assert articulation_points(Graph.cycle(6)) == set()

    def test_star_center(self):
        g = Graph(5, [(0, i) for i in range(1, 5)])
        assert articulation_points(g) == {0}

    def test_bowtie_center(self, bowtie_graph):
        assert articulation_points(bowtie_graph) == {2}

    def test_complete_has_none(self):
        assert articulation_points(Graph.complete(6)) == set()

    def test_disconnected_components_processed(self):
        # Two paths: both interiors are articulation points.
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert articulation_points(g) == {1, 4}

    def test_matches_networkx_on_random(self, rng):
        for _ in range(60):
            n = int(rng.integers(3, 40))
            g = random_gnp_graph(n, float(rng.uniform(0.05, 0.3)), rng)
            ours = articulation_points(g)
            theirs = set(nx.articulation_points(_to_nx(g)))
            assert ours == theirs

    def test_deep_path_no_recursion_limit(self):
        # 5000-node path would blow Python's default recursion limit if
        # the DFS were recursive.
        n = 5000
        g = Graph.path(n)
        assert len(articulation_points(g)) == n - 2


class TestIsBiconnected:
    def test_k2_not_biconnected(self):
        assert not is_biconnected(Graph(2, [(0, 1)]))

    def test_triangle(self):
        assert is_biconnected(Graph.complete(3))

    def test_cycle(self):
        assert is_biconnected(Graph.cycle(8))

    def test_diamond(self, diamond_graph):
        assert is_biconnected(diamond_graph)

    def test_bowtie_not(self, bowtie_graph):
        assert not is_biconnected(bowtie_graph)

    def test_disconnected_not(self):
        assert not is_biconnected(Graph(4, [(0, 1), (2, 3)]))

    def test_matches_networkx_on_random(self, rng):
        for _ in range(60):
            n = int(rng.integers(3, 35))
            g = random_gnp_graph(n, float(rng.uniform(0.1, 0.4)), rng)
            assert is_biconnected(g) == nx.is_biconnected(_to_nx(g))
