"""Common-random-numbers regression: worker-count invariance.

``theorem1``, ``mindegree``, and ``degree_poisson`` ride the shared-
deployment study path, so for one seed they must produce *bit-exact*
identical estimates regardless of worker count or trial-block layout —
the determinism contract the compiler inherits from ``SeedSequence(
seed, spawn_key=(ring_index, trial))`` addressing plus assign-only
block assembly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.degree_poisson import run_degree_poisson
from repro.experiments.mindegree_equiv import run_mindegree_equiv
from repro.experiments.theorem1_check import run_theorem1_check

SMALL = dict(num_nodes=100, key_ring_size=40, pool_size=2000, workers=None)


def _estimates(result):
    return [
        (pt.estimate.successes, pt.estimate.trials, dict(pt.point))
        for pt in result.points
    ]


@pytest.mark.parametrize("workers_b", [2, 3])
class TestWorkerInvariance:
    def test_theorem1(self, workers_b):
        kwargs = dict(trials=6, alphas=(0.0, 2.0), ks=(1, 2), **SMALL)
        kwargs["workers"] = 1
        a = run_theorem1_check(**kwargs)
        kwargs["workers"] = workers_b
        b = run_theorem1_check(**kwargs)
        assert _estimates(a) == _estimates(b)

    def test_mindegree(self, workers_b):
        kwargs = dict(trials=6, ks=(1, 2), alphas=(0.0,), **SMALL)
        kwargs["workers"] = 1
        a = run_mindegree_equiv(**kwargs)
        kwargs["workers"] = workers_b
        b = run_mindegree_equiv(**kwargs)
        assert _estimates(a) == _estimates(b)
        assert [pt.point["agreement"] for pt in a.points] == [
            pt.point["agreement"] for pt in b.points
        ]

    def test_degree_poisson(self, workers_b):
        kwargs = dict(trials=8, degrees=(0, 1), **SMALL)
        kwargs["workers"] = 1
        a = run_degree_poisson(**kwargs)
        kwargs["workers"] = workers_b
        b = run_degree_poisson(**kwargs)
        assert _estimates(a) == _estimates(b)
        assert [pt.point["empirical_mean"] for pt in a.points] == [
            pt.point["empirical_mean"] for pt in b.points
        ]


class TestSharedDeployments:
    def test_theorem1_ks_share_deployments(self):
        # k = 1 and k = 2 scenarios pin the same deployment family, so
        # the k = 2 indicator can never exceed the k = 1 indicator at
        # the same (alpha -> p) *only* per deployment; here we check the
        # provenance records exactly one group.
        from repro.experiments.theorem1_check import build_theorem1_study

        study = build_theorem1_study(
            trials=3, alphas=(0.0,), ks=(1, 2), num_nodes=100,
            key_ring_size=40, pool_size=2000,
        )
        plans = study.compile()
        assert len(plans) == 1
        assert len(plans[0].scenarios) == 2

    def test_mindegree_kconn_implies_mindeg_per_trial(self):
        # On shared deployments the implication holds sample-by-sample,
        # not just in the mean.
        from repro.experiments.mindegree_equiv import build_mindegree_study

        study = build_mindegree_study(
            trials=6, ks=(2,), alphas=(0.0,), num_nodes=100,
            key_ring_size=40, pool_size=2000,
        )
        result = study.run(workers=1)["mindegree_k2"]
        deg = result.series("min_degree[k=2]")
        conn = result.series("k_connectivity[k=2]")
        assert (conn <= deg).all()

    def test_degree_counts_sum_to_n_consistency(self):
        # All h-metrics come from one bincount per deployment: counts
        # for h = 0..2 can never sum above n.
        from repro.experiments.degree_poisson import build_degree_poisson_study

        study = build_degree_poisson_study(
            trials=5, degrees=(0, 1, 2), num_nodes=100,
            key_ring_size=40, pool_size=2000,
        )
        result = study.run(workers=1)["degree_poisson"]
        total = sum(
            result.series(f"degree_count[h={h}]") for h in (0, 1, 2)
        )
        assert (total <= 100).all()


class TestBackendCrossCheck:
    def test_theorem1_study_vs_legacy_ci_overlap(self):
        kwargs = dict(
            trials=60, alphas=(2.0,), ks=(1,), num_nodes=120,
            key_ring_size=40, pool_size=2000, workers=1,
        )
        study = run_theorem1_check(backend="study", **kwargs)
        legacy = run_theorem1_check(backend="legacy", **kwargs)
        for ps, pl in zip(study.points, legacy.points):
            assert ps.estimate.ci_low <= pl.estimate.ci_high
            assert pl.estimate.ci_low <= ps.estimate.ci_high

    def test_degree_poisson_study_vs_legacy_means_close(self):
        kwargs = dict(
            trials=40, degrees=(0,), num_nodes=150, key_ring_size=40,
            pool_size=2000, workers=1,
        )
        study = run_degree_poisson(backend="study", **kwargs)
        legacy = run_degree_poisson(backend="legacy", **kwargs)
        lam = study.points[0].point["lambda_exact"]
        for result in (study, legacy):
            mean = result.points[0].point["empirical_mean"]
            # Poisson-ish counts: means from 40 trials stay within a few
            # standard errors of the analytic mean.
            assert abs(mean - lam) < 4.0 * np.sqrt(lam / 40) + 1.0
