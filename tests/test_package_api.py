"""Tests for the public package surface: exports and exceptions."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    DesignError,
    ExperimentError,
    GraphError,
    ParameterError,
    ReproError,
    SimulationError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ParameterError,
            GraphError,
            SimulationError,
            DesignError,
            ExperimentError,
        ):
            assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        # Generic callers catching ValueError keep working.
        assert issubclass(ParameterError, ValueError)
        with pytest.raises(ValueError):
            raise ParameterError("boom")

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise DesignError("infeasible")


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_headline_api_present(self):
        assert callable(repro.predict_k_connectivity)
        assert callable(repro.design_network)
        assert callable(repro.minimal_key_ring_size)
        params = repro.QCompositeParams(
            num_nodes=100, key_ring_size=10, pool_size=100, overlap=2
        )
        assert params.edge_probability() > 0

    def test_subpackage_all_exports_resolve(self):
        import repro.core
        import repro.channels
        import repro.graphs
        import repro.keygraphs
        import repro.probability
        import repro.simulation
        import repro.utils
        import repro.wsn

        for module in (
            repro.core,
            repro.channels,
            repro.graphs,
            repro.keygraphs,
            repro.probability,
            repro.simulation,
            repro.utils,
            repro.wsn,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)
