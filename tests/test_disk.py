"""Tests for the disk (random geometric) channel model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.channels.disk import DiskChannel, DiskRealization


def _brute_force_edges(real: DiskRealization) -> set:
    n = real.num_nodes
    out = set()
    for u in range(n):
        for v in range(u + 1, n):
            d = np.abs(real.positions[u] - real.positions[v])
            if real.torus:
                d = np.minimum(d, 1.0 - d)
            if float(np.sqrt((d * d).sum())) <= real.radius:
                out.add((u, v))
    return out


class TestDiskRealization:
    def test_positions_in_unit_square(self):
        real = DiskChannel(0.2).sample(50, seed=1)
        assert real.positions.min() >= 0.0 and real.positions.max() <= 1.0

    def test_edge_mask_matches_distances(self):
        real = DiskChannel(0.3, torus=False).sample(30, seed=2)
        edges = np.array([(u, v) for u in range(30) for v in range(u + 1, 30)])
        mask = real.edge_mask(edges)
        brute = _brute_force_edges(real)
        got = {tuple(map(int, e)) for e, m in zip(edges, mask) if m}
        assert got == brute

    def test_channel_edges_grid_matches_bruteforce_square(self):
        for seed in range(5):
            real = DiskChannel(0.25, torus=False).sample(40, seed=seed)
            got = {tuple(map(int, e)) for e in real.channel_edges()}
            assert got == _brute_force_edges(real)

    def test_channel_edges_grid_matches_bruteforce_torus(self):
        for seed in range(5):
            real = DiskChannel(0.25, torus=True).sample(40, seed=seed)
            got = {tuple(map(int, e)) for e in real.channel_edges()}
            assert got == _brute_force_edges(real)

    def test_torus_wraps(self):
        real = DiskChannel(0.2, torus=True).sample(2, seed=3)
        real.positions[0] = (0.01, 0.5)
        real.positions[1] = (0.99, 0.5)  # distance 0.02 on the torus
        assert real.edge_mask(np.array([[0, 1]]))[0]

    def test_square_does_not_wrap(self):
        real = DiskChannel(0.2, torus=False).sample(2, seed=3)
        real.positions[0] = (0.01, 0.5)
        real.positions[1] = (0.99, 0.5)
        assert not real.edge_mask(np.array([[0, 1]]))[0]

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            DiskChannel(0.0)
        with pytest.raises(ValueError):
            DiskChannel(2.0)


class TestEdgeProbability:
    def test_torus_closed_form(self):
        chan = DiskChannel(0.2, torus=True)
        assert chan.edge_probability() == pytest.approx(math.pi * 0.04)

    def test_torus_monte_carlo(self):
        chan = DiskChannel(0.15, torus=True)
        rng = np.random.default_rng(4)
        hits = 0
        reps = 40000
        a = rng.random((reps, 2))
        b = rng.random((reps, 2))
        d = np.abs(a - b)
        d = np.minimum(d, 1 - d)
        hits = (np.sqrt((d * d).sum(axis=1)) <= 0.15).sum()
        assert hits / reps == pytest.approx(chan.edge_probability(), rel=0.05)

    def test_square_monte_carlo(self):
        chan = DiskChannel(0.3, torus=False)
        rng = np.random.default_rng(5)
        reps = 40000
        a = rng.random((reps, 2))
        b = rng.random((reps, 2))
        d = np.sqrt(((a - b) ** 2).sum(axis=1))
        emp = (d <= 0.3).mean()
        assert emp == pytest.approx(chan.edge_probability(), rel=0.05)

    def test_for_edge_probability_roundtrip_torus(self):
        chan = DiskChannel.for_edge_probability(0.25, torus=True)
        assert chan.edge_probability() == pytest.approx(0.25, rel=1e-9)

    def test_for_edge_probability_roundtrip_square(self):
        chan = DiskChannel.for_edge_probability(0.25, torus=False)
        assert chan.edge_probability() == pytest.approx(0.25, rel=1e-6)

    def test_for_edge_probability_rejects_extremes(self):
        with pytest.raises(ValueError):
            DiskChannel.for_edge_probability(0.0)
        with pytest.raises(ValueError):
            DiskChannel.for_edge_probability(1.0)
