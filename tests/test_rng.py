"""Tests for repro.utils.rng seed management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    grid_seed_sequence,
    sample_distinct_integers,
    spawn_generators,
    spawn_seed_sequences,
    trial_seed_sequence,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.array_equal(a, b)


class TestSpawning:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_children_independent(self):
        a, b = spawn_generators(123, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_int(self):
        a1, b1 = spawn_generators(9, 2)
        a2, b2 = spawn_generators(9, 2)
        assert np.array_equal(a1.random(4), a2.random(4))
        assert np.array_equal(b1.random(4), b2.random(4))

    def test_spawn_from_generator_deterministic(self):
        g1 = np.random.default_rng(5)
        g2 = np.random.default_rng(5)
        c1 = spawn_generators(g1, 3)
        c2 = spawn_generators(g2, 3)
        for x, y in zip(c1, c2):
            assert np.array_equal(x.random(4), y.random(4))


class TestTrialSeedSequence:
    def test_distinct_trials_distinct_streams(self):
        a = np.random.default_rng(trial_seed_sequence(0, 0)).random(8)
        b = np.random.default_rng(trial_seed_sequence(0, 1)).random(8)
        assert not np.array_equal(a, b)

    def test_reproducible_per_trial(self):
        a = np.random.default_rng(trial_seed_sequence(77, 13)).random(8)
        b = np.random.default_rng(trial_seed_sequence(77, 13)).random(8)
        assert np.array_equal(a, b)

    def test_none_root_equals_zero_root(self):
        a = np.random.default_rng(trial_seed_sequence(None, 4)).random(4)
        b = np.random.default_rng(trial_seed_sequence(0, 4)).random(4)
        assert np.array_equal(a, b)

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            trial_seed_sequence(0, -1)


class TestGridSeedSequence:
    def test_matches_trial_seed_sequence_in_1d(self):
        a = np.random.default_rng(grid_seed_sequence(9, 4)).random(6)
        b = np.random.default_rng(trial_seed_sequence(9, 4)).random(6)
        assert np.array_equal(a, b)

    def test_cells_distinct_and_reproducible(self):
        a = np.random.default_rng(grid_seed_sequence(0, 1, 2)).random(6)
        b = np.random.default_rng(grid_seed_sequence(0, 2, 1)).random(6)
        c = np.random.default_rng(grid_seed_sequence(0, 1, 2)).random(6)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_none_root_equals_zero_root(self):
        a = np.random.default_rng(grid_seed_sequence(None, 3, 5)).random(4)
        b = np.random.default_rng(grid_seed_sequence(0, 3, 5)).random(4)
        assert np.array_equal(a, b)

    def test_invalid_keys_raise(self):
        with pytest.raises(ValueError):
            grid_seed_sequence(0)
        with pytest.raises(ValueError):
            grid_seed_sequence(0, 1, -2)


class TestSampleDistinctIntegers:
    def test_exact_subset_properties(self):
        rng = np.random.default_rng(0)
        out = sample_distinct_integers(1000, 50, rng)
        assert out.shape == (50,) and out.dtype == np.int64
        assert (np.diff(out) > 0).all()
        assert out.min() >= 0 and out.max() < 1000

    def test_degenerate_sizes(self):
        rng = np.random.default_rng(1)
        assert sample_distinct_integers(10, 0, rng).size == 0
        assert np.array_equal(
            sample_distinct_integers(7, 7, rng), np.arange(7)
        )

    def test_invalid_arguments(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            sample_distinct_integers(5, 6, rng)
        with pytest.raises(ValueError):
            sample_distinct_integers(5, -1, rng)

    def test_uniform_marginal(self):
        # Every element should be included with probability size/high.
        rng = np.random.default_rng(3)
        high, size, reps = 40, 10, 3000
        counts = np.zeros(high)
        for _ in range(reps):
            counts[sample_distinct_integers(high, size, rng)] += 1
        rate = counts / reps
        # Binomial(3000, 0.25) std ≈ 0.0079; 5 sigma.
        assert np.abs(rate - size / high).max() < 0.04

    def test_high_density_still_exact(self):
        # size close to high forces many collision rounds; stays exact.
        rng = np.random.default_rng(4)
        out = sample_distinct_integers(20, 19, rng)
        assert (np.diff(out) > 0).all() and out.size == 19
