"""Tests for `repro lint`: rules, suppression, baseline, exit codes, CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import (
    Baseline,
    collect_modules,
    lint_paths,
    list_rules,
    render_json,
    render_text,
)
from repro.analysis.baseline import BaselineEntry, finding_hash
from repro.cli import main
from repro.exceptions import AnalysisError

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"

ALL_RULE_IDS = [
    "R000", "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
]


def lint_fixture(tree, select=None, **kwargs):
    return lint_paths([str(FIXTURES / tree)], select=select, **kwargs)


def findings_by_file(result):
    grouped = {}
    for finding in result.findings:
        name = finding.path.rsplit("/", 1)[-1]
        grouped.setdefault(name, []).append(finding)
    return grouped


class TestRegistry:
    def test_all_rules_registered(self):
        assert [rule.id for rule in list_rules()] == ALL_RULE_IDS

    def test_unknown_rule_select_is_config_error(self):
        with pytest.raises(AnalysisError):
            lint_fixture("r001", select=["R777"])

    def test_unknown_severity_rule_is_config_error(self):
        with pytest.raises(AnalysisError):
            lint_fixture("r001", severities={"R777": "warning"})


class TestRuleDetection:
    """Each rule: pinned true positives in bad.py, zero findings in good.py."""

    @pytest.mark.parametrize(
        "tree, rule, bad_lines",
        [
            ("r001", "R001", [3, 10, 14, 18, 22]),
            ("r002", "R002", [10, 14, 18, 22]),
            ("r003", "R003", [6, 12, 16, 21]),
            ("r004", "R004", [3, 7, 11, 14]),
            ("r005", "R005", [7, 8, 9, 10]),
            # r006 spans two fixture packages: keygraphs/bad.py sorts
            # before service/bad.py, each pinning lines 6/12/16.
            ("r006", "R006", [6, 12, 16, 6, 12, 16]),
            ("r008", "R008", [5, 9]),
        ],
    )
    def test_bad_flagged_good_clean(self, tree, rule, bad_lines):
        result = lint_fixture(tree, select=[rule])
        grouped = findings_by_file(result)
        bad = [f for fs in grouped.values() for f in fs if "bad" in f.path]
        assert [f.line for f in bad] == bad_lines
        assert all(f.rule == rule for f in bad)
        assert not [f for fs in grouped.values() for f in fs if "good" in f.path]
        assert result.exit_code == 1

    def test_r007_unclassified_flag_flagged(self):
        result = lint_fixture("r007_bad", select=["R007"])
        assert [(f.rule, f.line) for f in result.findings] == [("R007", 9)]
        assert "mystery" in result.findings[0].message

    def test_r007_classified_and_written_clean(self):
        result = lint_fixture("r007_good", select=["R007"])
        assert result.findings == []
        assert result.exit_code == 0

    def test_r007_mapped_key_must_be_written(self):
        # The good cli.py linted WITHOUT its provenance writer: the
        # `workers` flag now promises a key nobody writes.
        result = lint_paths(
            [str(FIXTURES / "r007_good" / "cli.py")], select=["R007"]
        )
        assert len(result.findings) == 1
        assert "workers" in result.findings[0].message

    def test_r002_allows_monotonic_timers(self):
        result = lint_fixture("r002", select=["R002"])
        assert not [f for f in result.findings if "good" in f.path]

    def test_select_restricts_rules(self):
        result = lint_fixture("ci_gate", select=["R002"])
        assert {f.rule for f in result.findings} == {"R002"}

    def test_ignore_drops_rules(self):
        result = lint_fixture("ci_gate", ignore=["R001", "R002"])
        assert result.findings == []
        assert result.exit_code == 0


class TestSuppression:
    def test_valid_noqa_suppresses(self):
        result = lint_fixture("suppress", select=["R002"])
        suppressed = [f for f in result.suppressed if "suppressed.py" in f.path]
        assert len(suppressed) == 1
        assert not [f for f in result.findings if "suppressed.py" in f.path]

    def test_invalid_noqa_is_r000_and_suppresses_nothing(self):
        result = lint_fixture("suppress")
        invalid = [f for f in result.findings if "invalid.py" in f.path]
        assert [(f.rule, f.line) for f in invalid] == [
            ("R000", 7), ("R002", 7), ("R000", 11), ("R002", 11),
        ]

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()"
            "  # repro: noqa[R001] -- wrong rule named\n"
        )
        pkg = tmp_path / "simulation"
        pkg.mkdir()
        (pkg / "mod.py").write_text(src)
        result = lint_paths([str(tmp_path)], select=["R002"])
        assert len(result.findings) == 1
        assert result.suppressed == []


class TestSeverity:
    def test_warning_downgrade_makes_exit_zero(self):
        result = lint_fixture(
            "r008", select=["R008"], severities={"R008": "warning"}
        )
        assert len(result.findings) == 2
        assert all(f.severity == "warning" for f in result.findings)
        assert result.exit_code == 0


class TestBaseline:
    def test_round_trip(self, tmp_path):
        found = lint_fixture("r001", select=["R001"])
        baseline = Baseline.from_findings(
            found.findings, justification="fixture grandfathering"
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        active, baselined = reloaded.split(found.findings)
        assert active == []
        assert len(baselined) == len(found.findings)

    def test_baselined_findings_do_not_fail(self, tmp_path):
        found = lint_fixture("r001", select=["R001"])
        path = tmp_path / "baseline.json"
        Baseline.from_findings(found.findings, justification="pinned").save(path)
        result = lint_fixture(
            "r001", select=["R001"], baseline=Baseline.load(path)
        )
        assert result.findings == []
        assert len(result.baselined) == len(found.findings)
        assert result.exit_code == 0

    def test_count_budget_is_consumed(self, tmp_path):
        found = lint_fixture("r008", select=["R008"])
        assert len(found.findings) == 2
        # Both findings share a file; give the baseline budget for one.
        entry_hash = finding_hash(found.findings[0])
        partial = Baseline(
            entries=[
                BaselineEntry(
                    rule="R008",
                    path=found.findings[0].path,
                    hash=entry_hash,
                    justification="only one grandfathered",
                    count=1,
                )
            ]
        )
        active, baselined = partial.split(found.findings)
        assert len(baselined) == 1
        assert len(active) == 1

    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-lint-baseline/v1",
                    "entries": [
                        {
                            "rule": "R001",
                            "path": "x.py",
                            "hash": "0" * 16,
                            "count": 1,
                            "justification": "",
                        }
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "something-else", "entries": []}))
        with pytest.raises(AnalysisError):
            Baseline.load(path)


class TestReporters:
    def test_json_report_shape(self):
        result = lint_fixture("ci_gate")
        payload = json.loads(render_json(result))
        assert payload["format"] == "repro-lint-report/v1"
        assert payload["summary"]["exit_code"] == 1
        assert payload["summary"]["active"] == len(result.findings)
        first = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message", "severity"} <= set(first)

    def test_text_report_mentions_each_finding(self):
        result = lint_fixture("ci_gate")
        text = render_text(result)
        for finding in result.findings:
            assert f"{finding.path}:{finding.line}" in text

    def test_parse_error_reported_not_crashed(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        modules, errors = collect_modules([str(tmp_path)])
        assert modules == []
        assert [e.rule for e in errors] == ["R999"]
        result = lint_paths([str(tmp_path)])
        assert result.exit_code == 1


class TestCli:
    def test_exit_zero_on_clean_tree(self):
        assert main(["lint", str(FIXTURES / "r007_good"), "--no-baseline"]) == 0

    def test_exit_one_on_violation_tree(self, capsys):
        code = main(["lint", str(FIXTURES / "ci_gate"), "--no-baseline"])
        assert code == 1
        assert "R001" in capsys.readouterr().out

    def test_exit_two_on_config_error(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "ci_gate"), "--select", "R777"]
        )
        assert code == 2
        assert "R777" in capsys.readouterr().err

    def test_json_format(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "ci_gate"), "--no-baseline",
             "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] > 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_severity_override_flag(self):
        code = main(
            ["lint", str(FIXTURES / "r008"), "--no-baseline",
             "--select", "R008", "--severity", "R008=warning"]
        )
        assert code == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        code = main(
            ["lint", str(FIXTURES / "r008"), "--select", "R008",
             "--write-baseline", str(baseline_path)]
        )
        assert code == 0
        assert baseline_path.exists()
        capsys.readouterr()
        code = main(
            ["lint", str(FIXTURES / "r008"), "--select", "R008",
             "--baseline", str(baseline_path)]
        )
        assert code == 0
        assert "baselined" in capsys.readouterr().out


class TestCiGate:
    """Pin the exact commands the CI lint leg runs."""

    def test_src_tree_clean_against_committed_baseline(self, capsys):
        """`repro lint src/` must be green with the committed baseline."""
        assert BASELINE.exists()
        code = main(["lint", str(SRC), "--baseline", str(BASELINE),
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0, payload["findings"]
        assert payload["summary"]["active"] == 0

    def test_committed_baseline_entries_are_justified(self):
        baseline = Baseline.load(BASELINE)
        assert baseline.entries, "baseline exists but grandfathers nothing"
        for entry in baseline.entries:
            assert len(entry.justification.split()) >= 3

    def test_gate_fails_on_seeded_violation(self):
        """A synthetic violation tree must trip the gate (exit 1)."""
        assert main(["lint", str(FIXTURES / "ci_gate"), "--no-baseline"]) == 1
