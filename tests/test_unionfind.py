"""Tests for union-find and edge-array connectivity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components
from repro.graphs.unionfind import (
    UnionFind,
    count_components_edges,
    is_connected_edges,
)


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.num_components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.num_components == 3

    def test_redundant_union_returns_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_components == 2

    def test_transitive_connected(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_sizes_sorted(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.component_sizes() == [3, 2, 1]


class TestIsConnectedEdges:
    def test_single_node(self):
        assert is_connected_edges(1, np.empty((0, 2)))

    def test_two_isolated(self):
        assert not is_connected_edges(2, np.empty((0, 2)))

    def test_path_connected(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert is_connected_edges(4, edges)

    def test_missing_link(self):
        edges = np.array([[0, 1], [2, 3]])
        assert not is_connected_edges(4, edges)

    def test_too_few_edges_shortcut(self):
        # n-2 edges can never connect n nodes.
        edges = np.array([[0, 1], [1, 2]])
        assert not is_connected_edges(4, edges)

    def test_duplicate_edges_handled(self):
        edges = np.array([[0, 1], [0, 1], [1, 2]])
        assert is_connected_edges(3, edges)

    def test_bad_endpoint_raises(self):
        with pytest.raises(GraphError):
            is_connected_edges(3, np.array([[0, 3]]))

    def test_bad_shape_raises(self):
        with pytest.raises(GraphError):
            is_connected_edges(3, np.array([[0, 1, 2]]))

    def test_agrees_with_bfs_on_random_graphs(self, rng):
        for _ in range(50):
            n = int(rng.integers(2, 30))
            m = int(rng.integers(0, n * 2))
            edges = rng.integers(0, n, size=(m, 2))
            edges = edges[edges[:, 0] != edges[:, 1]]
            g = Graph(n, (tuple(e) for e in edges))
            expected = len(connected_components(g)) == 1
            assert is_connected_edges(n, edges) == expected


class TestCountComponents:
    def test_empty_graph(self):
        assert count_components_edges(5, np.empty((0, 2))) == 5

    def test_matches_bfs_on_random_graphs(self, rng):
        for _ in range(50):
            n = int(rng.integers(2, 30))
            m = int(rng.integers(0, n * 2))
            edges = rng.integers(0, n, size=(m, 2))
            edges = edges[edges[:, 0] != edges[:, 1]]
            g = Graph(n, (tuple(e) for e in edges))
            assert count_components_edges(n, edges) == len(connected_components(g))
