"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.params import QCompositeParams


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that sample."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> QCompositeParams:
    """A small but non-trivial parameter tuple used across suites."""
    return QCompositeParams(
        num_nodes=50, key_ring_size=20, pool_size=500, overlap=2, channel_prob=0.7
    )


@pytest.fixture
def figure1_params() -> QCompositeParams:
    """One Figure 1 point (q=2, p=0.5 curve at K=60)."""
    return QCompositeParams(
        num_nodes=1000,
        key_ring_size=60,
        pool_size=10000,
        overlap=2,
        channel_prob=0.5,
    )


@pytest.fixture
def diamond_graph() -> Graph:
    """4-cycle plus one chord: 2-connected, not 3-connected."""
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    return g


@pytest.fixture
def bowtie_graph() -> Graph:
    """Two triangles sharing node 2: connected with articulation point 2."""
    return Graph(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])


def random_gnp_graph(n: int, p: float, rng: np.random.Generator) -> Graph:
    """Plain-python ER sampler for cross-checks (independent of repro code)."""
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g
