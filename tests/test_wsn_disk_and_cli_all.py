"""Remaining coverage: disk-channel WSN wiring and the CLI `all` path."""

from __future__ import annotations

import numpy as np

from repro.channels.disk import DiskChannel
from repro.keygraphs.schemes import QCompositeScheme
from repro.wsn.network import SecureWSN


class TestDiskChannelWsn:
    def test_sensor_positions_populated(self):
        wsn = SecureWSN(20, QCompositeScheme(8, 100, 1), DiskChannel(0.4), seed=1)
        for sensor in wsn.sensors:
            assert sensor.position is not None
            x, y = sensor.position
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_onoff_wsn_has_no_positions(self):
        wsn = SecureWSN(10, QCompositeScheme(5, 50, 1), seed=2)
        assert all(s.position is None for s in wsn.sensors)

    def test_links_respect_radius(self):
        wsn = SecureWSN(
            30, QCompositeScheme(20, 40, 1), DiskChannel(0.3, torus=False), seed=3
        )
        positions = np.array([s.position for s in wsn.sensors])
        for u, v in wsn.secure_edges():
            dist = float(np.linalg.norm(positions[int(u)] - positions[int(v)]))
            assert dist <= 0.3 + 1e-12

    def test_geometry_only_thins_key_graph(self):
        wsn = SecureWSN(
            30, QCompositeScheme(10, 100, 2), DiskChannel(0.25), seed=4
        )
        key = {tuple(map(int, e)) for e in wsn.key_graph_edges}
        secure = {tuple(map(int, e)) for e in wsn.secure_edges()}
        assert secure <= key


class TestCliAll:
    def test_all_runs_every_registered_experiment(self, capsys, monkeypatch):
        # Substitute a micro registry so `all` completes in milliseconds
        # while still exercising the real dispatch loop.
        from repro import cli
        from repro.experiments import registry as reg
        from repro.experiments.kstar import render_kstar, run_kstar

        micro = {
            "kstar": reg.ExperimentSpec(
                name="kstar",
                paper_anchor="Eq. (9)",
                description="thresholds",
                run=run_kstar,
                render=render_kstar,
            )
        }
        monkeypatch.setattr(reg, "REGISTRY", micro)
        assert cli.main(["all"]) == 0
        out = capsys.readouterr().out
        assert "=== kstar" in out
        assert "paper K*" in out

    def test_all_forwards_workers_flag(self, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry as reg

        seen = {}

        def fake_run(**kwargs):
            seen.update(kwargs)
            from repro.experiments.kstar import run_kstar

            return run_kstar()

        micro = {
            "demo": reg.ExperimentSpec(
                name="demo",
                paper_anchor="-",
                description="-",
                run=fake_run,
                render=lambda result: "ok",
            )
        }
        monkeypatch.setattr(reg, "REGISTRY", micro)
        assert cli.main(["all", "--trials", "7", "--workers", "2"]) == 0
        assert seen == {"trials": 7, "workers": 2}
