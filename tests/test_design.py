"""Tests for the design guidelines (Eq. 9 and generalizations)."""

from __future__ import annotations

import math

import pytest

from repro.core.design import (
    PAPER_REPORTED_KSTAR,
    design_network,
    maximal_pool_size,
    minimal_key_ring_size,
    paper_kstar_table,
    required_channel_probability,
)
from repro.exceptions import DesignError
from repro.probability.hypergeometric import overlap_survival
from repro.probability.limits import critical_edge_probability


class TestPaperTable:
    def test_exact_values_locked(self):
        # Regression lock on the literal Eq. (9) hypergeometric values.
        assert paper_kstar_table(method="exact") == [
            (2, 1.0, 36),
            (2, 0.5, 43),
            (2, 0.2, 55),
            (3, 1.0, 63),
            (3, 0.5, 71),
            (3, 0.2, 85),
        ]

    def test_asymptotic_values_locked(self):
        assert paper_kstar_table(method="asymptotic") == [
            (2, 1.0, 35),
            (2, 0.5, 41),
            (2, 0.2, 52),
            (3, 1.0, 59),
            (3, 0.5, 67),
            (3, 0.2, 77),
        ]

    def test_asymptotic_matches_paper_within_one(self):
        ours = paper_kstar_table(method="asymptotic")
        matches = 0
        for (q, p, k_ours), (q2, p2, k_paper) in zip(ours, PAPER_REPORTED_KSTAR):
            assert (q, p) == (q2, p2)
            assert abs(k_ours - k_paper) <= 1
            matches += k_ours == k_paper
        assert matches >= 4


class TestMinimalKeyRingSize:
    def test_definition_is_tight(self):
        # K* clears the threshold, K* - 1 does not.
        n, P, q, p = 1000, 10000, 2, 0.5
        kstar = minimal_key_ring_size(n, P, q, p)
        tau = critical_edge_probability(n, 1)
        assert p * overlap_survival(kstar, P, q) > tau
        assert p * overlap_survival(kstar - 1, P, q) <= tau

    def test_monotone_in_q(self):
        vals = [minimal_key_ring_size(1000, 10000, q, 1.0) for q in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_monotone_in_p(self):
        vals = [
            minimal_key_ring_size(1000, 10000, 2, p) for p in (1.0, 0.5, 0.2, 0.1)
        ]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_monotone_in_k(self):
        vals = [minimal_key_ring_size(1000, 10000, 2, 0.5, k=k) for k in (1, 2, 3)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_target_probability_above_threshold(self):
        base = minimal_key_ring_size(1000, 10000, 2, 0.5)
        high = minimal_key_ring_size(1000, 10000, 2, 0.5, target_probability=0.99)
        assert high > base

    def test_infeasible_raises(self):
        # p so small that even K = P fails.
        with pytest.raises(DesignError):
            minimal_key_ring_size(1000, 100, 1, 1e-6)

    def test_bad_method_raises(self):
        with pytest.raises(DesignError):
            minimal_key_ring_size(1000, 10000, 2, 1.0, method="guess")

    def test_target_probability_must_be_interior(self):
        with pytest.raises(DesignError):
            minimal_key_ring_size(1000, 10000, 2, 1.0, target_probability=1.0)


class TestRequiredChannelProbability:
    def test_roundtrip_with_kstar(self):
        n, P, q = 1000, 10000, 2
        kstar = minimal_key_ring_size(n, P, q, 0.5)
        p_req = required_channel_probability(n, kstar, P, q)
        # The ring that clears the threshold at p=0.5 needs p <= 0.5.
        assert p_req <= 0.5

    def test_too_small_ring_raises(self):
        with pytest.raises(DesignError):
            required_channel_probability(1000, 5, 10000, 2)

    def test_probability_in_unit_interval(self):
        p = required_channel_probability(1000, 60, 10000, 2)
        assert 0 < p < 1


class TestMaximalPoolSize:
    def test_threshold_tight(self):
        n, K, q, p = 1000, 60, 2, 1.0
        pmax = maximal_pool_size(n, K, q, p)
        tau = critical_edge_probability(n, 1)
        assert p * overlap_survival(K, pmax, q) > tau
        assert p * overlap_survival(K, pmax + 1, q) <= tau

    def test_larger_ring_larger_pool(self):
        a = maximal_pool_size(1000, 40, 2, 1.0)
        b = maximal_pool_size(1000, 80, 2, 1.0)
        assert b > a

    def test_infeasible_raises(self):
        # Unreachable threshold: K=1, q=1 at p tiny.
        with pytest.raises(DesignError):
            maximal_pool_size(1000, 1, 1, 1e-9)


class TestMinimalNetworkSize:
    def test_feasibility_upward_closed(self):
        from repro.core.design import minimal_network_size
        from repro.probability.limits import critical_edge_probability
        from repro.probability.hypergeometric import overlap_survival

        K, P, q, p = 40, 10000, 2, 1.0
        n_min = minimal_network_size(K, P, q, p)
        t = p * overlap_survival(K, P, q)
        assert t > critical_edge_probability(n_min, 1)
        if n_min > 3:
            assert t <= critical_edge_probability(n_min - 1, 1)

    def test_smaller_ring_needs_larger_network(self):
        from repro.core.design import minimal_network_size

        big = minimal_network_size(60, 10000, 2, 1.0)
        small = minimal_network_size(40, 10000, 2, 1.0)
        assert small >= big

    def test_consistent_with_kstar(self):
        # K*(n=1000) is by definition feasible at n = 1000, so the
        # minimal supported size of that design is <= 1000.
        from repro.core.design import minimal_network_size

        kstar = minimal_key_ring_size(1000, 10000, 2, 0.5)
        assert minimal_network_size(kstar, 10000, 2, 0.5) <= 1000

    def test_infeasible_design_raises(self):
        from repro.core.design import minimal_network_size

        with pytest.raises(DesignError):
            minimal_network_size(2, 10_000_000, 2, 1e-6, target_probability=0.99)


class TestDesignNetwork:
    def test_report_consistency(self):
        rep = design_network(1000, 10000, 2, 0.5, k=2, target_probability=0.9)
        assert rep.params.key_ring_size == minimal_key_ring_size(
            1000, 10000, 2, 0.5, k=2, target_probability=0.9
        )
        # Rounding K up can only exceed the target.
        assert rep.predicted_probability >= 0.9
        assert rep.memory_per_node_bytes == rep.params.key_ring_size * 16

    def test_to_dict(self):
        d = design_network(1000, 10000, 2).to_dict()
        assert "params" in d and "predicted_probability" in d

    def test_threshold_design_near_inv_e(self):
        # Designing at the bare threshold lands just above e^{-1}.
        rep = design_network(1000, 10000, 2, 1.0)
        assert rep.predicted_probability > math.exp(-1.0)
        assert rep.predicted_probability < 0.7  # one integer step of slack
