"""Ablation bench: generator backend throughput.

Compares the two exact ``G_q`` generation strategies (inverted-index
pair counting vs dense Gram matrix) and the two exact ER samplers
(dense Bernoulli sweep vs sparse Floyd sampling) at the Figure 1 scale.
DESIGN.md §6 predicts the inverted index wins at the paper's density;
this bench verifies the numbers behind that design choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi_edges
from repro.keygraphs.rings import sample_uniform_rings
from repro.keygraphs.uniform_graph import edges_from_rings

N, K, P, Q = 1000, 60, 10000, 2


@pytest.fixture(scope="module")
def rings() -> np.ndarray:
    return sample_uniform_rings(N, K, P, seed=42)


def test_bench_keygraph_inverted_backend(benchmark, rings):
    benchmark(edges_from_rings, rings, Q, backend="inverted")


def test_bench_keygraph_dense_backend(benchmark, rings):
    benchmark(edges_from_rings, rings, Q, backend="dense")


def test_bench_ring_sampling(benchmark):
    seeds = iter(range(100000))

    def sample():
        return sample_uniform_rings(N, K, P, seed=next(seeds))

    benchmark(sample)


def test_bench_er_dense(benchmark):
    seeds = iter(range(100000))
    benchmark(lambda: erdos_renyi_edges(1000, 0.01, seed=next(seeds), method="dense"))


def test_bench_er_sparse(benchmark):
    seeds = iter(range(100000))
    benchmark(lambda: erdos_renyi_edges(1000, 0.01, seed=next(seeds), method="sparse"))


def test_backends_agree_at_bench_scale(benchmark, rings):
    """Correctness rider: both backends, one timing, identical output."""

    def both():
        inv = edges_from_rings(rings, Q, backend="inverted")
        return inv

    inv = benchmark(both)
    dense = edges_from_rings(rings, Q, backend="dense")
    assert np.array_equal(inv, dense)
