"""Eq. (9) threshold table regeneration (paper Section IV, in-text).

Asserts the reproduction contract precisely:

* with the Lemma-2 asymptotic evaluation of ``s`` the table matches the
  paper's reported 35/41/52/60/67/78 on at least 4 of 6 entries and
  never misses by more than one integer step;
* the exact hypergeometric evaluation yields the locked values
  36/43/55/63/71/85 (strictly larger — the asymptotic form
  overestimates ``s`` at the paper's K²/P).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.core.design import PAPER_REPORTED_KSTAR, paper_kstar_table
from repro.experiments.kstar import render_kstar, run_kstar


def test_bench_kstar_table(benchmark):
    result = run_once(benchmark, run_kstar)
    emit("Eq. (9) K* thresholds", render_kstar(result))

    asym = paper_kstar_table(method="asymptotic")
    exact = paper_kstar_table(method="exact")

    matches = 0
    for (q, p, k_asym), (q2, p2, k_paper) in zip(asym, PAPER_REPORTED_KSTAR):
        assert (q, p) == (q2, p2)
        assert abs(k_asym - k_paper) <= 1
        matches += k_asym == k_paper
    assert matches >= 4

    assert [k for _, _, k in exact] == [36, 43, 55, 63, 71, 85]
    for (_, _, k_exact), (_, _, k_asym) in zip(exact, asym):
        assert k_exact > k_asym
