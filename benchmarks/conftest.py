"""Shared helpers for the benchmark harness.

Every ``benchmarks/test_bench_*.py`` regenerates one of the paper's
tables/figures (or an ablation) under ``pytest benchmarks/
--benchmark-only``.  Trial counts default to quick values; set
``REPRO_TRIALS=<n>`` or ``REPRO_FULL=1`` for paper-fidelity runs.

The rendered tables are printed inside BEGIN/END banners so the
``bench_output.txt`` artifact doubles as the regenerated evaluation
section.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print a rendered experiment block with banners (visible via -s
    or in captured output summaries)."""
    banner = "=" * 72
    sys.stdout.write(f"\n{banner}\nBEGIN {title}\n{banner}\n{body}\n{banner}\nEND {title}\n{banner}\n")
    sys.stdout.flush()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
