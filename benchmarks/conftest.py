"""Shared helpers for the benchmark harness.

Every ``benchmarks/test_bench_*.py`` regenerates one of the paper's
tables/figures (or an ablation) under ``pytest benchmarks/
--benchmark-only``.  Trial counts default to quick values; set
``REPRO_TRIALS=<n>`` or ``REPRO_FULL=1`` for paper-fidelity runs.

The rendered tables are printed inside BEGIN/END banners so the
``bench_output.txt`` artifact doubles as the regenerated evaluation
section.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print a rendered experiment block with banners (visible via -s
    or in captured output summaries)."""
    banner = "=" * 72
    sys.stdout.write(f"\n{banner}\nBEGIN {title}\n{banner}\n{body}\n{banner}\nEND {title}\n{banner}\n")
    sys.stdout.flush()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


def kconn_fixture(dense: bool = False):
    """The shared k-connectivity bench fixture: ``(num_nodes, edges)``.

    One key-ring deployment at the mindegree bench scale (n = 300,
    K = 80, P = 10000, q = 2).  ``dense=False`` thins the channel near
    the k = 3 threshold (the graph the mindegree grid actually
    decides); ``dense=True`` keeps the channel fully on (~7x the
    certificate bound — the regime the Nagamochi–Ibaraki pass exists
    for).  Used by both ``test_bench_kernels.py`` and ``run_all.py``
    so the pytest-benchmark numbers and the BENCH JSON describe the
    same workload.
    """
    import numpy as np

    from repro.core.scaling import channel_prob_for_alpha
    from repro.keygraphs.uniform_graph import uniform_intersection_edges

    n, ring, pool, q = 300, 80, 10000, 2
    edges = uniform_intersection_edges(n, ring, pool, q, seed=9)
    if not dense:
        p = channel_prob_for_alpha(n, ring, pool, q, 1.5, 3)
        edges = edges[np.random.default_rng(5).random(edges.shape[0]) < p]
    return n, edges
