"""Lemmas 5-6 bench: the coupling chain holds executably.

Assertions: zero subset violations on successful couplings (exact
property, not statistical), empirical success probability within
binomial noise of the analytic product form, and success probability
approaching 1 at the paper scale.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments.coupling_check import (
    render_coupling_check,
    run_coupling_check,
)
from repro.simulation.engine import trials_from_env


def test_bench_coupling_chain(benchmark):
    trials = trials_from_env(30, full=200)
    result = run_once(benchmark, run_coupling_check, trials=trials)
    emit("Lemmas 5-6: binomial-ring coupling", render_coupling_check(result))

    for pt in result.points:
        n = int(pt.point["n"])
        assert pt.point["subset_violations"] == 0, n
        analytic = pt.prediction
        sd = math.sqrt(max(analytic * (1 - analytic), 1e-6) / trials)
        assert abs(pt.estimate.estimate - analytic) < 5 * sd + 0.05, n
        # Lemma 6 gives away edge probability: y < s strictly.
        assert 0.0 < pt.point["y_over_s"] < 1.0, n

    largest = max(result.points, key=lambda pt: pt.point["n"])
    assert largest.estimate.estimate > 0.9
