"""Ablation bench: connectivity-decision algorithms.

Times the per-sample cost of each k-connectivity decision path at the
scales the experiments use — union-find (k=1), Tarjan (k=2), and the
Dinic/Even decision (k=3) — on near-threshold topologies where the
decisions are hardest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scaling import channel_prob_for_alpha
from repro.graphs.graph import Graph
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.unionfind import is_connected_edges
from repro.graphs.vertex_connectivity import is_k_connected
from repro.params import QCompositeParams
from repro.simulation.trials import sample_secure_edges


def _threshold_params(n: int, k: int) -> QCompositeParams:
    p = channel_prob_for_alpha(n, 70, 10000, 2, 1.0, k)
    return QCompositeParams(
        num_nodes=n, key_ring_size=70, pool_size=10000, overlap=2, channel_prob=p
    )


@pytest.fixture(scope="module")
def big_sample():
    params = _threshold_params(1000, 1)
    edges = sample_secure_edges(params, np.random.default_rng(0))
    return params.num_nodes, edges


@pytest.fixture(scope="module")
def mid_sample():
    params = _threshold_params(300, 3)
    edges = sample_secure_edges(params, np.random.default_rng(1))
    return params.num_nodes, edges


def test_bench_unionfind_k1(benchmark, big_sample):
    n, edges = big_sample
    benchmark(is_connected_edges, n, edges)


def test_bench_tarjan_k2(benchmark, big_sample):
    n, edges = big_sample
    graph = Graph.from_edge_array(n, edges)
    benchmark(is_biconnected, graph)


def test_bench_even_dinic_k3(benchmark, mid_sample):
    n, edges = mid_sample
    graph = Graph.from_edge_array(n, edges)
    benchmark(is_k_connected, graph, 3)


def test_bench_graph_construction(benchmark, big_sample):
    n, edges = big_sample
    benchmark(Graph.from_edge_array, n, edges)


def test_decisions_consistent(mid_sample):
    """Correctness rider: the three deciders agree on nesting."""
    n, edges = mid_sample
    graph = Graph.from_edge_array(n, edges)
    k3 = is_k_connected(graph, 3)
    k2 = is_biconnected(graph)
    k1 = is_connected_edges(n, edges)
    if k3:
        assert k2
    if k2:
        assert k1
