"""Resilient-connectivity bench (capture attacks, paper ref. [36]).

Shape assertions: with no captures both connectivity notions agree and
are high (the design targets 0.95); as captures grow, resilient
connectivity degrades at least as fast as plain connectivity, and the
mean compromised fraction grows monotonically.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.experiments.resilience import render_resilience, run_resilience
from repro.simulation.engine import trials_from_env


def test_bench_resilience(benchmark):
    trials = trials_from_env(25, full=150)
    result = run_once(benchmark, run_resilience, trials=trials)
    emit("Resilient connectivity under capture", render_resilience(result))

    by_key = {
        (int(pt.point["q"]), int(pt.point["captured"])): pt
        for pt in result.points
    }
    qs = sorted({k[0] for k in by_key})
    grid = sorted({k[1] for k in by_key})

    for q in qs:
        baseline = by_key[(q, 0)]
        assert baseline.point["mean_compromise_fraction"] == 0.0
        assert baseline.estimate.estimate > 0.75, q  # designed for 0.95

        fracs = [by_key[(q, c)].point["mean_compromise_fraction"] for c in grid]
        assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:])), q

        for c in grid:
            pt = by_key[(q, c)]
            # Resilient connectivity can never beat plain connectivity.
            assert pt.estimate.estimate <= pt.point["plain_connected"] + 1e-9
