"""Sweep-engine bench: shared deployments vs the legacy per-point path.

The quick Figure 1 workload (all six curves, default ring grid,
``REPRO_TRIALS=20``) runs on both backends.  The batched engine samples
one deployment per ``(K, trial)`` and derives every ``(q, p)`` point
from it (nested thinning + vectorized min-label connectivity), so it
must beat the per-point path — which resamples rings and recounts key
overlaps for each of the six curves — by at least 3x end to end.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, run_once
from repro.experiments.figure1 import default_ring_sizes, render_figure1, run_figure1
from repro.simulation.engine import trials_from_env

SPEEDUP_FLOOR = 3.0


def test_bench_sweep_vs_legacy_quick_figure1(benchmark):
    trials = trials_from_env(20)
    ring_sizes = default_ring_sizes()

    start = time.perf_counter()
    legacy = run_figure1(
        trials=trials, ring_sizes=ring_sizes, backend="legacy", workers=1
    )
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    sweep = run_once(
        benchmark,
        run_figure1,
        trials=trials,
        ring_sizes=ring_sizes,
        backend="sweep",
        workers=1,
    )
    sweep_s = time.perf_counter() - start

    speedup = legacy_s / sweep_s
    emit(
        "Sweep engine vs legacy per-point path (quick Figure 1)",
        f"trials={trials}, rings={len(ring_sizes)}, curves=6\n"
        f"legacy: {legacy_s:.2f}s ({6 * len(ring_sizes) * trials} deployments)\n"
        f"sweep:  {sweep_s:.2f}s ({len(ring_sizes) * trials} deployments)\n"
        f"speedup: {speedup:.2f}x\n\n"
        + render_figure1(sweep),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"sweep engine only {speedup:.2f}x faster than legacy "
        f"(needs >= {SPEEDUP_FLOOR}x): legacy {legacy_s:.2f}s, sweep {sweep_s:.2f}s"
    )

    # Both backends estimate the same model: CIs must overlap pointwise.
    for ps, pl in zip(sweep.points, legacy.points):
        assert ps.point == pl.point
        assert ps.estimate.ci_low <= pl.estimate.ci_high
        assert pl.estimate.ci_low <= ps.estimate.ci_high


def test_bench_sweep_single_column(benchmark):
    """Micro-bench: one K column (all trials, all six curves)."""
    from repro.simulation.sweep import SweepSpec, run_sweep_trials

    spec = SweepSpec(
        num_nodes=1000,
        pool_size=10000,
        ring_sizes=(60,),
        curves=tuple((q, p) for q, p in [(2, 1.0), (2, 0.5), (2, 0.2),
                                         (3, 1.0), (3, 0.5), (3, 0.2)]),
        trials=trials_from_env(10),
        seed=1,
    )
    counts = run_once(benchmark, run_sweep_trials, spec, workers=1)
    assert counts.shape == (1, 6)
