"""Machine-readable perf tracking: run the key workloads, write JSON.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [output.json]

Runs the performance-critical workloads with quick trial counts
(``REPRO_TRIALS`` overrides) and writes per-bench wall times plus the
headline speedups to ``BENCH_PR2.json`` so the perf trajectory is
tracked across PRs.

PR 2 headline: the Scenario/Study compiler.  ``theorem1``,
``mindegree``, and ``degree_poisson`` now ride the shared-deployment
sweep (one ring sample + overlap count serving every ``(k, α)`` /
``h`` post-filter, with exact monotone deduction across nested curves),
and each is measured against its ``backend="legacy"`` per-point loop.
The ``mindegree`` grid is benched twice: the sweep-bound ``ks=[1, 2]``
grid (biconnectivity decisions; the common-random-numbers saving shows
directly) and the full default ``ks=[1, 2, 3]`` grid, where the exact
``k = 3`` Dinic scan — identical work on both backends — dominates and
dilutes the ratio.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List


def _timed(fn: Callable[[], object], repeats: int = 2) -> float:
    """Best-of-*repeats* wall time (standard noise suppression)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: List[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_PR2.json",
    )

    import numpy as np

    from repro.experiments.degree_poisson import run_degree_poisson
    from repro.experiments.figure1 import default_ring_sizes, run_figure1
    from repro.experiments.mindegree_equiv import run_mindegree_equiv
    from repro.experiments.theorem1_check import run_theorem1_check
    from repro.graphs.generators import erdos_renyi_edges
    from repro.graphs.unionfind import (
        UnionFind,
        is_connected_pair_keys,
    )
    from repro.simulation.engine import trials_from_env

    trials = trials_from_env(20)
    ring_sizes = default_ring_sizes()
    benches: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}

    def backend_pair(
        name: str, run, quick_trials: int, points: int, **kwargs
    ) -> None:
        study_s = _timed(
            lambda: run(trials=quick_trials, workers=1, backend="study", **kwargs)
        )
        legacy_s = _timed(
            lambda: run(trials=quick_trials, workers=1, backend="legacy", **kwargs)
        )
        benches.append(
            {
                "name": f"{name}_study",
                "wall_s": round(study_s, 3),
                "trials": quick_trials,
                "points": points,
                "config": dict(kwargs),
            }
        )
        benches.append(
            {
                "name": f"{name}_legacy",
                "wall_s": round(legacy_s, 3),
                "trials": quick_trials,
                "points": points,
                "config": dict(kwargs),
            }
        )
        speedups[f"{name}_study_vs_legacy"] = round(legacy_s / study_s, 2)

    # -- figure1: study path (same shared-deployment engine as PR 1) ----
    sweep_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="study", workers=1
        ),
        repeats=1,
    )
    benches.append(
        {
            "name": "figure1_quick_study",
            "wall_s": round(sweep_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": len(ring_sizes) * trials,
        }
    )
    legacy_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="legacy", workers=1
        ),
        repeats=1,
    )
    benches.append(
        {
            "name": "figure1_quick_legacy",
            "wall_s": round(legacy_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": 6 * len(ring_sizes) * trials,
        }
    )
    speedups["figure1_study_vs_legacy"] = round(legacy_s / sweep_s, 2)

    # -- the three ROADMAP CRN experiments, study vs legacy backends ----
    backend_pair("theorem1", run_theorem1_check, trials, points=12)
    backend_pair("degree_poisson", run_degree_poisson, trials, points=3)
    # Sweep-bound grid: decisions are vectorized/biconnectivity, so the
    # shared-deployment saving shows directly.
    backend_pair(
        "mindegree", run_mindegree_equiv, trials, points=6, ks=(1, 2)
    )
    # Full default grid: the exact k = 3 flow scan (same work on both
    # backends) dominates; monotone deduction still skips ~40% of it.
    backend_pair(
        "mindegree_full_grid", run_mindegree_equiv, trials, points=9
    )

    # -- connectivity kernel: vectorized vs Python union-find -----------
    edges = erdos_renyi_edges(1000, 0.008, seed=3)
    keys = edges[:, 0] * 1000 + edges[:, 1]
    reps = 200

    def kernel_vec() -> None:
        for _ in range(reps):
            is_connected_pair_keys(1000, keys)

    def kernel_py() -> None:
        for _ in range(reps):
            uf = UnionFind(1000)
            for u, v in edges:
                uf.union(int(u), int(v))

    vec_s = _timed(kernel_vec, repeats=1)
    py_s = _timed(kernel_py, repeats=1)
    benches.append(
        {
            "name": "connectivity_kernel_vectorized",
            "wall_s": round(vec_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )
    benches.append(
        {
            "name": "connectivity_kernel_python_unionfind",
            "wall_s": round(py_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )
    speedups["connectivity_kernel_vs_python"] = round(py_s / vec_s, 2)

    report = {
        "pr": 2,
        "generated_by": "benchmarks/run_all.py",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "repro_trials": trials,
        },
        "benches": benches,
        "speedups": speedups,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report["speedups"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
