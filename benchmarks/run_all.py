"""Machine-readable perf tracking: run the key workloads, write JSON.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [output.json]

Runs the performance-critical workloads (sweep engine vs legacy
Figure 1 path, the vectorized connectivity kernel, and the batched
samplers) with quick trial counts (``REPRO_TRIALS`` overrides) and
writes per-bench wall times plus the headline speedup to
``BENCH_PR1.json`` so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main(argv: List[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_PR1.json",
    )

    import numpy as np

    from repro.experiments.figure1 import default_ring_sizes, run_figure1
    from repro.graphs.generators import erdos_renyi_edges
    from repro.graphs.unionfind import (
        UnionFind,
        is_connected_edges,
        is_connected_pair_keys,
    )
    from repro.keygraphs.rings import sample_binomial_rings
    from repro.simulation.engine import trials_from_env

    trials = trials_from_env(20)
    ring_sizes = default_ring_sizes()
    benches: List[Dict[str, object]] = []

    # -- headline: quick Figure 1, sweep vs legacy ----------------------
    sweep_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="sweep", workers=1
        )
    )
    benches.append(
        {
            "name": "figure1_quick_sweep",
            "wall_s": round(sweep_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": len(ring_sizes) * trials,
        }
    )
    legacy_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="legacy", workers=1
        )
    )
    benches.append(
        {
            "name": "figure1_quick_legacy",
            "wall_s": round(legacy_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": 6 * len(ring_sizes) * trials,
        }
    )

    # -- connectivity kernel: vectorized vs Python union-find -----------
    edges = erdos_renyi_edges(1000, 0.008, seed=3)
    keys = edges[:, 0] * 1000 + edges[:, 1]
    reps = 200

    def kernel_vec() -> None:
        for _ in range(reps):
            is_connected_pair_keys(1000, keys)

    def kernel_py() -> None:
        for _ in range(reps):
            uf = UnionFind(1000)
            for u, v in edges:
                uf.union(int(u), int(v))

    vec_s = _timed(kernel_vec)
    py_s = _timed(kernel_py)
    benches.append(
        {
            "name": "connectivity_kernel_vectorized",
            "wall_s": round(vec_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )
    benches.append(
        {
            "name": "connectivity_kernel_python_unionfind",
            "wall_s": round(py_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )

    # -- batched binomial ring sampler ----------------------------------
    binom_s = _timed(lambda: sample_binomial_rings(2000, 0.008, 10000, seed=4))
    benches.append(
        {
            "name": "binomial_rings_batched_n2000",
            "wall_s": round(binom_s, 3),
            "nodes": 2000,
            "pool": 10000,
        }
    )

    report = {
        "pr": 1,
        "generated_by": "benchmarks/run_all.py",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "repro_trials": trials,
        },
        "benches": benches,
        "speedups": {
            "figure1_sweep_vs_legacy": round(legacy_s / sweep_s, 2),
            "connectivity_kernel_vs_python": round(py_s / vec_s, 2),
        },
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report["speedups"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
