"""Machine-readable perf tracking: run the key workloads, write JSON.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--output PATH]

Runs the performance-critical workloads with quick trial counts
(``REPRO_TRIALS`` overrides) and writes per-bench wall times plus the
headline speedups to ``--output`` (default ``BENCH_PR7.json``) so the
perf trajectory is tracked across PRs.  The active kernel backend and
the numba version (or ``null``) are stamped into the result's ``env``
block, so a report is always attributable to the backend that
produced it.

PR 7 headline: the sharded execution service's content-addressed
cache.  The cache-overlap fixture runs one growth study cold (sharded
over the in-process transport, stamped as ``transport`` on the bench),
resubmits it (a pure cache hit answering from disk —
``cache_hit_vs_cold`` is the wall ratio, with zero work units
executed), then doubles the trial count (an extension computing only
the ``[trials, 2*trials)`` delta — ``cache_extension_vs_cold2x``
against a cold run at the doubled count).  Bit-identity of every
disposition to the one-shot run is pinned by
``tests/test_service_cache.py``; these numbers track that the overlap
resolution actually converts coverage into saved wall-clock.

PR 5 headline (still tracked): the kernel-backend layer and the Nagamochi–Ibaraki
sparse certificate.  The exact k-connectivity decision now runs as an
ISAP scan with shared sink-rooted labels on the certificate subgraph
(``kconn_decision_per_s`` tracks decisions per second on the
mindegree-scale fixture; ``kconn_certificate_vs_plain`` the
certificate's own contribution), which un-dilutes the
``mindegree_full_grid`` ratio: the exact ``k = 3`` decisions no longer
dominate, so the shared-deployment saving shows on the full grid too
(acceptance: >= 2x over legacy; the sweep-bound ``ks=[1, 2]`` grid is
tracked unchanged).

PR 4 headline (still tracked): adaptive trial allocation.
``zero_one_adaptive_trial_savings`` is total cell-trials of a
fixed-trial design at the same worst-cell precision over the adaptive
spend (acceptance >= 3x); ``zero_one_adaptive_wall_speedup`` is the
wall-clock ratio against actually running that fixed design.
Determinism is not traded: ``tests/test_adaptive.py`` pins adaptive ==
one-shot bit-for-bit, and ``tests/test_kernels.py`` pins every kernel
backend decision- and value-identical.

PR 2 headline (still tracked): the Scenario/Study compiler.
``theorem1``, ``mindegree``, and ``degree_poisson`` ride the
shared-deployment sweep, each measured against its
``backend="legacy"`` per-point loop.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List


# `python benchmarks/run_all.py` puts benchmarks/ (not the repo root)
# on sys.path; add the root so the shared fixtures in
# benchmarks.conftest import the same way they do under pytest.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


def _timed(fn: Callable[[], object], repeats: int = 2) -> float:
    """Best-of-*repeats* wall time (standard noise suppression)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _numba_version():
    try:
        return importlib.import_module("numba").__version__
    except ImportError:
        return None


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/run_all.py",
        description="Run the key perf workloads and write a JSON report.",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_PR7.json",
        ),
        metavar="PATH",
        help="result JSON path (default: BENCH_PR7.json at the repo root)",
    )
    out_path = parser.parse_args(argv[1:]).output

    import numpy as np

    from repro.experiments.degree_poisson import run_degree_poisson
    from repro.experiments.figure1 import default_ring_sizes, run_figure1
    from repro.experiments.mindegree_equiv import run_mindegree_equiv
    from repro.experiments.theorem1_check import run_theorem1_check
    from repro.graphs.generators import erdos_renyi_edges
    from repro.graphs.unionfind import (
        UnionFind,
        is_connected_pair_keys,
    )
    from repro.simulation.engine import trials_from_env

    trials = trials_from_env(20)
    ring_sizes = default_ring_sizes()
    benches: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}

    def backend_pair(
        name: str, run, quick_trials: int, points: int, **kwargs
    ) -> None:
        study_s = _timed(
            lambda: run(trials=quick_trials, workers=1, backend="study", **kwargs)
        )
        legacy_s = _timed(
            lambda: run(trials=quick_trials, workers=1, backend="legacy", **kwargs)
        )
        benches.append(
            {
                "name": f"{name}_study",
                "wall_s": round(study_s, 3),
                "trials": quick_trials,
                "points": points,
                "config": dict(kwargs),
            }
        )
        benches.append(
            {
                "name": f"{name}_legacy",
                "wall_s": round(legacy_s, 3),
                "trials": quick_trials,
                "points": points,
                "config": dict(kwargs),
            }
        )
        speedups[f"{name}_study_vs_legacy"] = round(legacy_s / study_s, 2)

    # -- figure1: study path (same shared-deployment engine as PR 1) ----
    sweep_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="study", workers=1
        ),
        repeats=1,
    )
    benches.append(
        {
            "name": "figure1_quick_study",
            "wall_s": round(sweep_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": len(ring_sizes) * trials,
        }
    )
    legacy_s = _timed(
        lambda: run_figure1(
            trials=trials, ring_sizes=ring_sizes, backend="legacy", workers=1
        ),
        repeats=1,
    )
    benches.append(
        {
            "name": "figure1_quick_legacy",
            "wall_s": round(legacy_s, 3),
            "trials": trials,
            "points": 6 * len(ring_sizes),
            "deployments": 6 * len(ring_sizes) * trials,
        }
    )
    speedups["figure1_study_vs_legacy"] = round(legacy_s / sweep_s, 2)

    # -- the three ROADMAP CRN experiments, study vs legacy backends ----
    backend_pair("theorem1", run_theorem1_check, trials, points=12)
    backend_pair("degree_poisson", run_degree_poisson, trials, points=3)
    # Sweep-bound grid: decisions are vectorized/biconnectivity, so the
    # shared-deployment saving shows directly.
    backend_pair(
        "mindegree", run_mindegree_equiv, trials, points=6, ks=(1, 2)
    )
    # Full default grid: the exact k = 3 flow scan (same work on both
    # backends) dominates; monotone deduction still skips ~40% of it.
    backend_pair(
        "mindegree_full_grid", run_mindegree_equiv, trials, points=9
    )

    # -- adaptive zero_one: CI-targeted trial allocation -----------------
    # The PR 4 headline.  One adaptive run at the 0.02 transition-band
    # target, then the fixed-trial design of equal worst-cell precision
    # (every cell at max_cell_trials) actually executed for the wall
    # comparison.  Workload: the zero-one growth sweep with tails at
    # alpha = +-3, +-4 (converge within the first rounds under the 0.05
    # tail target) and the transition band at alpha = +-1.5 (held to
    # the strict 0.02 Wilson half-width).
    from repro.experiments.zero_one import build_zero_one_study, run_zero_one

    adaptive_kwargs = dict(
        trials=100,
        num_nodes_grid=(150, 300),
        alpha_offsets=(-4.0, -3.0, -1.5, 1.5, 3.0, 4.0),
        pool_size=3000,
        workers=1,
    )
    start = time.perf_counter()
    adaptive_result = run_zero_one(
        backend="adaptive", ci_target=0.02, max_trials=4000, **adaptive_kwargs
    )
    adaptive_s = time.perf_counter() - start
    allocation = dict(adaptive_result.config["adaptive"])
    allocation.pop("rounds", None)
    allocation.pop("policy", None)
    fixed_trials = int(allocation["max_cell_trials"])
    fixed_study = build_zero_one_study(
        trials=fixed_trials,
        num_nodes_grid=adaptive_kwargs["num_nodes_grid"],
        alpha_offsets=adaptive_kwargs["alpha_offsets"],
        pool_size=adaptive_kwargs["pool_size"],
    )
    fixed_s = _timed(lambda: fixed_study.run(workers=1), repeats=1)
    benches.append(
        {
            "name": "zero_one_adaptive_ci0.02",
            "wall_s": round(adaptive_s, 3),
            "ci_target": 0.02,
            "max_trials": 4000,
            "config": {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in adaptive_kwargs.items()
            },
            "allocation": allocation,
        }
    )
    benches.append(
        {
            "name": "zero_one_fixed_equal_precision",
            "wall_s": round(fixed_s, 3),
            "trials": fixed_trials,
            "points": int(allocation["cells"]),
        }
    )
    speedups["zero_one_adaptive_trial_savings"] = float(
        allocation["savings_vs_fixed"]
    )
    speedups["zero_one_adaptive_wall_speedup"] = round(fixed_s / adaptive_s, 2)

    # -- exact k-connectivity decision: certificate + ISAP scan ----------
    # The two shared fixtures from benchmarks.conftest.kconn_fixture
    # (same workload the per-backend pytest benches time):
    #
    # * "sparse" — channel-thinned near the k = 3 threshold, the graph
    #   the mindegree grid actually decides.  The ISAP scan sets the
    #   absolute rate (``kconn_decision_per_s``); the certificate is
    #   roughly break-even here (m is already near k·n).
    # * "dense" — the same deployment with the channel fully on
    #   (m ~ 7x the certificate bound).  Without the certificate, the
    #   scan degenerates: the pivot's neighborhood is large, so
    #   thousands of neighbor-pair queries run on the full network.
    #   The certificate caps both the network size and the pivot
    #   degree, which is the whole point of the preprocessing pass
    #   (``kconn_certificate_vs_plain_dense``).
    from benchmarks.conftest import kconn_fixture
    from repro.graphs.vertex_connectivity import is_k_connected_edges
    from repro.kernels import get_backend, resolve_backend_name

    kconn_n, kconn_sparse = kconn_fixture()
    _, kconn_dense = kconn_fixture(dense=True)
    kconn_reps = 10

    def kconn_case(edges: "np.ndarray", reps: int, certificate: bool) -> None:
        for _ in range(reps):
            is_k_connected_edges(kconn_n, edges, 3, certificate=certificate)

    sparse_cert_s = _timed(lambda: kconn_case(kconn_sparse, kconn_reps, True))
    sparse_plain_s = _timed(lambda: kconn_case(kconn_sparse, kconn_reps, False))
    dense_cert_s = _timed(lambda: kconn_case(kconn_dense, kconn_reps, True))
    dense_plain_s = _timed(lambda: kconn_case(kconn_dense, 1, False))
    backend = get_backend()
    for label, edges_, cert_s_, plain_s_, plain_reps in (
        ("sparse", kconn_sparse, sparse_cert_s, sparse_plain_s, kconn_reps),
        ("dense", kconn_dense, dense_cert_s, dense_plain_s, 1),
    ):
        benches.append(
            {
                "name": f"kconn_decision_{label}_certificate",
                "wall_s": round(cert_s_, 4),
                "reps": kconn_reps,
                "num_nodes": kconn_n,
                "edges": int(edges_.shape[0]),
                "certificate_edges": int(
                    backend.sparse_certificate(kconn_n, edges_, 3).shape[0]
                ),
            }
        )
        benches.append(
            {
                "name": f"kconn_decision_{label}_plain",
                "wall_s": round(plain_s_, 4),
                "reps": plain_reps,
                "num_nodes": kconn_n,
                "edges": int(edges_.shape[0]),
            }
        )
    speedups["kconn_certificate_vs_plain_dense"] = round(
        (dense_plain_s * kconn_reps) / dense_cert_s, 2
    )
    speedups["kconn_decision_per_s"] = round(kconn_reps / sparse_cert_s, 1)

    # -- cache overlap: hit and extension vs cold runs -------------------
    # The PR 7 headline.  One growth study run cold through the sharded
    # service path into a fresh content-addressed cache, then (a) the
    # identical resubmission — answered entirely from the store, zero
    # work units — and (b) a doubled-trial-count resubmission — an
    # extension executing only the [trials, 2*trials) delta, compared
    # against a cold run at the doubled count.
    import shutil
    import tempfile

    from repro.service.cache import ResultCache, run_cached
    from repro.study.compiler import Study
    from repro.study.scenario import MetricSpec, Scenario

    cache_trials = trials_from_env(60)
    cache_transport = "inprocess"

    def cache_scenario(n_trials: int) -> Scenario:
        return Scenario(
            name="cache_overlap",
            num_nodes_grid=(150, 300),
            pool_size=3000,
            ring_sizes=(24, 30),
            curves=((2, 0.6), (2, 1.0)),
            trials=n_trials,
            seed=20170605,
            metrics=(MetricSpec("connectivity"),),
        )

    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache_study = Study((cache_scenario(cache_trials),))
        cache = ResultCache(cache_root)
        start = time.perf_counter()
        cold = run_cached(cache_study, cache, workers=1, shards=2)
        cold_s = time.perf_counter() - start
        assert cold.provenance["cache"]["disposition"] == "miss"
        hit_s = _timed(lambda: run_cached(cache_study, cache, workers=1))
        hit = run_cached(cache_study, cache, workers=1)
        assert hit.provenance["cache"]["executed_units"] == 0

        doubled = Study((cache_scenario(2 * cache_trials),))
        start = time.perf_counter()
        ext = run_cached(doubled, cache, workers=1, shards=2)
        ext_s = time.perf_counter() - start
        assert ext.provenance["cache"]["disposition"] == "extension"
        cold2x_s = _timed(
            lambda: run_cached(Study((cache_scenario(2 * cache_trials),)),
                               ResultCache(tempfile.mkdtemp(
                                   prefix="repro-bench-cache2x-", dir=cache_root)),
                               workers=1, shards=2),
            repeats=1,
        )
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    for name, wall, disposition, n_trials in (
        ("cache_overlap_cold", cold_s, "miss", cache_trials),
        ("cache_overlap_hit", hit_s, "hit", cache_trials),
        ("cache_overlap_extension", ext_s, "extension", 2 * cache_trials),
        ("cache_overlap_cold2x", cold2x_s, "miss", 2 * cache_trials),
    ):
        benches.append(
            {
                "name": name,
                "wall_s": round(wall, 4),
                "trials": n_trials,
                "disposition": disposition,
                "transport": cache_transport,
            }
        )
    speedups["cache_hit_vs_cold"] = round(cold_s / hit_s, 2)
    speedups["cache_extension_vs_cold2x"] = round(cold2x_s / ext_s, 2)

    # -- connectivity kernel: vectorized vs Python union-find -----------
    edges = erdos_renyi_edges(1000, 0.008, seed=3)
    keys = edges[:, 0] * 1000 + edges[:, 1]
    reps = 200

    def kernel_vec() -> None:
        for _ in range(reps):
            is_connected_pair_keys(1000, keys)

    def kernel_py() -> None:
        for _ in range(reps):
            uf = UnionFind(1000)
            for u, v in edges:
                uf.union(int(u), int(v))

    vec_s = _timed(kernel_vec, repeats=1)
    py_s = _timed(kernel_py, repeats=1)
    benches.append(
        {
            "name": "connectivity_kernel_vectorized",
            "wall_s": round(vec_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )
    benches.append(
        {
            "name": "connectivity_kernel_python_unionfind",
            "wall_s": round(py_s, 3),
            "reps": reps,
            "edges": int(edges.shape[0]),
        }
    )
    speedups["connectivity_kernel_vs_python"] = round(py_s / vec_s, 2)

    report = {
        "pr": 7,
        "generated_by": "benchmarks/run_all.py",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "repro_trials": trials,
            "kernel_backend": resolve_backend_name(),
            "numba": _numba_version(),
        },
        "benches": benches,
        "speedups": speedups,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report["speedups"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
