"""Theorem 1 exact-probability validation bench (Eqs. 7-8).

Sweeps the deviation α at fixed (n, K, P, q) and compares the empirical
k-connectivity probability against ``exp(-e^{-α}/(k-1)!)``.  Shape
assertions: monotone in α, near 0 at α = -2, near 1 at α = +4, and the
finite-n Poisson refinement tracks within combined Monte-Carlo +
finite-size tolerance at every grid point.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments.theorem1_check import (
    render_theorem1_check,
    run_theorem1_check,
)
from repro.simulation.engine import trials_from_env


def test_bench_theorem1_alpha_sweep(benchmark):
    trials = trials_from_env(60, full=400)
    result = run_once(benchmark, run_theorem1_check, trials=trials)
    emit("Theorem 1: empirical vs exp(-e^-a/(k-1)!)", render_theorem1_check(result))

    tol = 3.0 * math.sqrt(0.25 / trials) + 0.12  # CI + finite-size bias
    by_k: dict = {}
    for pt in result.points:
        k = int(pt.point["k"])
        by_k.setdefault(k, []).append((pt.point["alpha"], pt))

    for k, series in by_k.items():
        series.sort()
        estimates = [pt.estimate.estimate for _, pt in series]
        # Ends of the zero-one transition.
        assert estimates[0] < 0.25, (k, "alpha=-2 should be mostly disconnected")
        assert estimates[-1] > 0.75, (k, "alpha=+4 should be mostly connected")
        # Refined prediction tracks everywhere.
        for alpha, pt in series:
            assert abs(pt.estimate.estimate - pt.point["poisson_refined"]) < tol, (
                k,
                alpha,
            )
