"""Disk vs on/off channel bench (paper Section IX open question).

Both channel models transition from disconnected to connected over the
same K window at matched marginal link probability; the geometric
dependence of the disk model must not *raise* connectivity above the
independent-channel model (it concentrates failures spatially).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.experiments.disk_comparison import (
    render_disk_comparison,
    run_disk_comparison,
)
from repro.simulation.engine import trials_from_env


def test_bench_disk_vs_onoff(benchmark):
    trials = trials_from_env(40, full=300)
    result = run_once(
        benchmark,
        run_disk_comparison,
        trials=trials,
        ring_sizes=(40, 55, 70, 85, 100),
    )
    emit("Disk vs on/off channels at matched marginal", render_disk_comparison(result))

    series = sorted(
        (int(pt.point["K"]), pt.estimate.estimate, pt.point["disk_estimate"])
        for pt in result.points
    )
    onoff = [row[1] for row in series]
    disk = [row[2] for row in series]

    # Both transition upward across the window.
    assert onoff[-1] - onoff[0] > 0.4
    assert disk[-1] - disk[0] > 0.3
    # The disk model lags (or at most matches) the independent channels.
    tol = 0.12
    assert all(d <= o + tol for o, d in zip(onoff, disk))
