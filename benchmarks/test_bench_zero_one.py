"""Zero-one law bench (Eqs. 8b-8c): the transition sharpens with n.

At fixed deviation offsets ±α₀ the empirical probabilities must
separate cleanly (low side < high side at every n) and the gap between
the ±3 offsets must be wide at the largest n.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.experiments.zero_one import render_zero_one, run_zero_one
from repro.simulation.engine import trials_from_env


def test_bench_zero_one_sharpening(benchmark):
    trials = trials_from_env(50, full=500)
    result = run_once(
        benchmark,
        run_zero_one,
        trials=trials,
        num_nodes_grid=(200, 500, 1000),
    )
    emit("Zero-one law: P[connected] at fixed ±alpha", render_zero_one(result))

    by_n: dict = {}
    for pt in result.points:
        by_n.setdefault(int(pt.point["n"]), {})[pt.point["alpha"]] = (
            pt.estimate.estimate
        )

    for n, series in by_n.items():
        assert series[-3.0] < series[3.0], n
        assert series[-3.0] <= series[-1.5] + 0.15, n
        assert series[1.5] <= series[3.0] + 0.15, n

    largest = by_n[max(by_n)]
    assert largest[-3.0] < 0.25
    assert largest[3.0] > 0.8
