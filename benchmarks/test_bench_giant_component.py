"""Giant-component bench (component evolution, paper §IX related work).

Shape assertions: subcritical mean degrees (c < 1) leave only sublinear
components, supercritical ones grow a giant part tracking the ER
branching-process limit ρ(c) at matched edge probability.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.experiments.giant_component import (
    er_giant_fraction,
    render_giant_component,
    run_giant_component,
)
from repro.simulation.engine import trials_from_env


def test_bench_giant_component(benchmark):
    trials = trials_from_env(30, full=200)
    result = run_once(benchmark, run_giant_component, trials=trials)
    emit("Giant component evolution", render_giant_component(result))

    by_c = {pt.point["mean_degree"]: pt for pt in result.points}

    # Subcritical: largest component is a vanishing fraction.
    assert by_c[0.5].point["mean_fraction"] < 0.05
    assert by_c[0.8].point["mean_fraction"] < 0.10
    # Supercritical: tracks the branching-process limit.
    for c in (2.0, 3.0, 5.0):
        limit = er_giant_fraction(c)
        assert abs(by_c[c].point["mean_fraction"] - limit) < 0.08, c
    # Monotone growth across the transition.
    fracs = [by_c[c].point["mean_fraction"] for c in sorted(by_c)]
    assert all(a <= b + 0.02 for a, b in zip(fracs, fracs[1:]))
