"""Lemma 9 bench: degree-count Poissonity.

Shape assertions per degree h: the empirical mean count is within
sampling noise of λ_{n,h} (exact binomial form), the count histogram is
close to Poisson(λ) in total variation, and the empirical variance is
of the same order as the mean (Poisson signature).
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments.degree_poisson import (
    render_degree_poisson,
    run_degree_poisson,
)
from repro.simulation.engine import trials_from_env


def test_bench_degree_poisson(benchmark):
    trials = trials_from_env(80, full=600)
    result = run_once(benchmark, run_degree_poisson, trials=trials)
    emit("Lemma 9: Poisson law for degree-h node counts", render_degree_poisson(result))

    for pt in result.points:
        h = int(pt.point["h"])
        lam_exact = pt.point["lambda_exact"]
        mean = pt.point["empirical_mean"]
        sd = math.sqrt(max(lam_exact, 0.05) / trials)
        assert abs(mean - lam_exact) < 6 * sd + 0.15, (h, mean, lam_exact)
        # TV to the Poissonized reference shrinks with trials; allow a
        # generous quick-mode budget plus the Poissonization gap.
        assert pt.point["tv_distance"] < 0.30 + 60.0 / trials, h
        # Variance within a factor ~3 of the mean (Poisson-like).
        if lam_exact > 0.5:
            assert pt.point["empirical_var"] < 4.0 * lam_exact + 1.0, h
