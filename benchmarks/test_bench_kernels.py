"""Per-backend kernel benches: the three hot-path kernels in isolation.

Parametrized over every *available* registered backend (the default
container runs reference only; the CI numba leg adds the jitted
backend).  The k-connectivity bench also pins the PR 5 acceptance
angle: the exact decision with the Nagamochi–Ibaraki certificate must
agree with the plain Dinic decision while the sparse-certificate +
ISAP scan keeps the per-decision cost low.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, kconn_fixture
from repro.graphs.generators import erdos_renyi_edges
from repro.kernels import available_backends, get_backend
from repro.keygraphs.rings import sample_uniform_rings

BACKENDS = [b["name"] for b in available_backends() if b["available"]]


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_min_label_kernel(benchmark, backend_name):
    backend = get_backend(backend_name)
    edges = erdos_renyi_edges(2000, 0.004, seed=3)
    u, v = edges[:, 0].copy(), edges[:, 1].copy()
    backend.min_label_components(2000, u, v)  # warm (JIT compile)

    def run():
        for _ in range(20):
            backend.min_label_components(2000, u, v)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    labels = backend.min_label_components(2000, u, v)
    reference = get_backend("reference").min_label_components(2000, u, v)
    assert np.array_equal(labels, reference)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_overlap_kernel(benchmark, backend_name):
    backend = get_backend(backend_name)
    rings = sample_uniform_rings(2000, 45, 10000, seed=11)
    node_ids = np.repeat(np.arange(2000, dtype=np.int64), 45)
    key_ids = rings.astype(np.int64).ravel()
    backend.overlap_counts(node_ids, key_ids, 2000)  # warm (JIT compile)

    def run():
        for _ in range(3):
            backend.overlap_counts(node_ids, key_ids, 2000)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    keys, counts = backend.overlap_counts(node_ids, key_ids, 2000)
    rk, rc = get_backend("reference").overlap_counts(node_ids, key_ids, 2000)
    assert np.array_equal(keys, rk) and np.array_equal(counts, rc)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_kconn_certificate_decision(benchmark, backend_name):
    backend = get_backend(backend_name)
    n, edges = kconn_fixture()
    cert = backend.sparse_certificate(n, edges, 3)
    assert cert.shape[0] <= 3 * (n - 1)
    with_cert = backend.k_connected(n, edges, 3, certificate=True)  # warm

    def run():
        for _ in range(3):
            backend.k_connected(n, edges, 3, certificate=True)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    plain = backend.k_connected(n, edges, 3, certificate=False)
    assert with_cert == plain
    emit(
        f"kernels[{backend_name}]: exact k=3 decision",
        f"n={n} m={edges.shape[0]} cert_m={cert.shape[0]} "
        f"decision={with_cert} (certificate == plain)",
    )


def test_bench_kconn_plain_baseline(benchmark):
    """Certificate-off baseline for the decision bench above."""
    backend = get_backend("reference")
    n, edges = kconn_fixture()

    def run():
        for _ in range(3):
            backend.k_connected(n, edges, 3, certificate=False)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
