"""Lemma 8 bench: min-degree law + equivalence with k-connectivity.

Shape assertions: P[k-connected] <= P[min degree >= k] pointwise (a
theorem, not a tendency), per-sample agreement rates are high, and the
min-degree estimates track the Poisson-refined prediction.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments.mindegree_equiv import (
    render_mindegree_equiv,
    run_mindegree_equiv,
)
from repro.simulation.engine import trials_from_env


def test_bench_mindegree_equivalence(benchmark):
    trials = trials_from_env(40, full=300)
    result = run_once(benchmark, run_mindegree_equiv, trials=trials)
    emit(
        "Lemma 8: min degree law and k-connectivity equivalence",
        render_mindegree_equiv(result),
    )

    tol = 3.0 * math.sqrt(0.25 / trials) + 0.15
    for pt in result.points:
        k = int(pt.point["k"])
        # Necessity: k-connectivity implies min degree >= k.
        assert pt.point["kconn_estimate"] <= pt.estimate.estimate + 1e-12, k
        # High per-sample agreement (the Lemma 8 ⇔ Theorem 1 content).
        assert pt.point["agreement"] > 0.7, (k, pt.point["alpha"])
        # Poisson-refined tracking of the min-degree probability.
        assert abs(pt.estimate.estimate - pt.point["poisson_refined"]) < tol, (
            k,
            pt.point["alpha"],
        )
