"""Figure 1 regeneration bench (paper Section IV).

Regenerates the paper's six empirical connectivity-vs-K curves and
checks the *shape* claims:

* every curve transitions from ~0 to ~1 over the K range;
* the six thresholds (empirical e^{-1} crossings) are ordered exactly
  as the paper draws them, left to right:
  (q=2,p=1) < (q=2,p=.5) < (q=2,p=.2) < (q=3,p=1) < (q=3,p=.5) < (q=3,p=.2);
* each crossing lies within a few ring sizes of the exact Eq. (9)
  threshold computed from the hypergeometric tail.

Quick mode uses a reduced trial count and K grid; REPRO_FULL=1 restores
the paper's 500 trials.
"""

from __future__ import annotations

import math


from benchmarks.conftest import emit, run_once
from repro.core.design import minimal_key_ring_size
from repro.experiments.figure1 import (
    empirical_crossings,
    render_figure1,
    run_figure1,
)
from repro.simulation.engine import trials_from_env

PAPER_CURVE_ORDER = [(2, 1.0), (2, 0.5), (2, 0.2), (3, 1.0), (3, 0.5), (3, 0.2)]


def test_bench_figure1_full_sweep(benchmark):
    trials = trials_from_env(30, full=500)
    result = run_once(
        benchmark,
        run_figure1,
        trials=trials,
        ring_sizes=list(range(28, 89, 6)),
    )
    emit("Figure 1: P[connected] vs K (6 curves)", render_figure1(result))

    crossings = empirical_crossings(result)
    ordered = [crossings[c] for c in PAPER_CURVE_ORDER]
    finite = [x for x in ordered if not math.isnan(x)]
    assert len(finite) == 6, "every curve must cross e^{-1} inside the K range"
    assert ordered == sorted(ordered), (
        f"curve thresholds out of paper order: {ordered}"
    )

    # Crossings near the exact Eq. (9) thresholds (hypergeometric).
    for (q, p), crossing in crossings.items():
        kstar = minimal_key_ring_size(1000, 10000, q, p)
        assert abs(crossing - kstar) <= 6, (q, p, crossing, kstar)

    # Transition completeness: every curve starts low and ends high.
    # The rightmost curve (q=3, p=0.2) only reaches ~0.86 by K=88 — its
    # alpha at K=88 is ≈ +1.9 — matching the paper's own figure, so the
    # upper check is 0.75, not ~1.
    by_curve = {}
    for pt in result.points:
        by_curve.setdefault(
            (int(pt.point["q"]), float(pt.point["p"])), []
        ).append((pt.point["K"], pt.estimate.estimate))
    for key, series in by_curve.items():
        series.sort()
        assert series[0][1] < 0.35, (key, "should start below the threshold")
        assert series[-1][1] > 0.75, (key, "should end mostly connected")


def test_bench_figure1_single_point_trial(benchmark):
    """Micro-bench: one Monte Carlo trial at the heaviest Figure 1 point."""
    import numpy as np_

    from repro.params import QCompositeParams
    from repro.simulation.trials import connectivity_trial

    params = QCompositeParams(
        num_nodes=1000, key_ring_size=88, pool_size=10000, overlap=2,
        channel_prob=1.0,
    )
    seeds = iter(range(10_000))

    def one_trial():
        return connectivity_trial(params, np_.random.default_rng(next(seeds)))

    benchmark(one_trial)
