"""Capture-attack tradeoff bench (paper Section I motivation).

Shape assertions at connectivity-equalized ring sizes K*(q):

* for the smallest attack, compromise fraction decreases with q
  (q-composite wins small-scale);
* for the largest attack, q = 3 is worse than q = 1 (the tradeoff);
* simulation tracks the Chan-Perrig-Song analytic estimate.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.experiments.attack_tradeoff import (
    render_attack_tradeoff,
    run_attack_tradeoff,
)
from repro.simulation.engine import trials_from_env


def test_bench_attack_tradeoff(benchmark):
    trials = trials_from_env(12, full=100)
    result = run_once(
        benchmark,
        run_attack_tradeoff,
        trials=trials,
        captured_grid=(10, 100, 300),
    )
    emit("q-composite capture-attack tradeoff", render_attack_tradeoff(result))

    frac = {
        (int(pt.point["q"]), int(pt.point["captured"])): pt.estimate.estimate
        for pt in result.points
    }
    analytic = {
        (int(pt.point["q"]), int(pt.point["captured"])): pt.prediction
        for pt in result.points
    }

    # Small attack: larger q is more resilient.
    assert frac[(3, 10)] <= frac[(2, 10)] <= frac[(1, 10)] + 0.02
    # Large attack: q = 3 loses to q = 1 (the tradeoff crossover).
    assert frac[(3, 300)] > frac[(1, 300)]
    # Analytic model tracks simulation.
    for key, emp in frac.items():
        assert abs(emp - analytic[key]) < 0.08, key
