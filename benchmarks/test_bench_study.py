"""Study-compiler bench: the ROADMAP CRN experiments, study vs legacy.

``theorem1``, ``mindegree``, and ``degree_poisson`` post-filter the
same sampling primitives, so their ``backend="study"`` declarations
ride one shared deployment per ``(K, trial)`` cell with exact monotone
deduction across nested curves.  Each must beat its legacy per-point
loop by a wide margin on the sweep-bound grids; the full mindegree
grid (exact k = 3 flow scans, identical work on both backends) is
tracked without a floor in ``run_all.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, run_once
from repro.experiments.degree_poisson import render_degree_poisson, run_degree_poisson
from repro.experiments.mindegree_equiv import render_mindegree_equiv, run_mindegree_equiv
from repro.experiments.theorem1_check import render_theorem1_check, run_theorem1_check
from repro.simulation.engine import trials_from_env

SPEEDUP_FLOOR = 2.0


def _pair(benchmark, run, render, title, **kwargs):
    start = time.perf_counter()
    run(workers=1, backend="legacy", **kwargs)
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    result = run_once(benchmark, run, workers=1, backend="study", **kwargs)
    study_s = time.perf_counter() - start

    emit(title, render(result))
    speedup = legacy_s / study_s
    assert speedup >= SPEEDUP_FLOOR, (
        f"{title}: study {study_s:.3f}s vs legacy {legacy_s:.3f}s "
        f"({speedup:.2f}x < {SPEEDUP_FLOOR}x floor)"
    )


def test_bench_theorem1_study_vs_legacy(benchmark):
    _pair(
        benchmark,
        run_theorem1_check,
        render_theorem1_check,
        "theorem1 via study compiler",
        trials=trials_from_env(20),
    )


def test_bench_mindegree_study_vs_legacy(benchmark):
    _pair(
        benchmark,
        run_mindegree_equiv,
        render_mindegree_equiv,
        "mindegree (sweep-bound ks=[1,2]) via study compiler",
        trials=trials_from_env(20),
        ks=(1, 2),
    )


def test_bench_degree_poisson_study_vs_legacy(benchmark):
    _pair(
        benchmark,
        run_degree_poisson,
        render_degree_poisson,
        "degree_poisson via study compiler",
        trials=trials_from_env(20),
    )
