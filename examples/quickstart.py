#!/usr/bin/env python
"""Quickstart: predict and measure secure connectivity in 30 lines.

Builds the paper's model for a 1000-sensor network using the
q-composite scheme (q = 2) over unreliable channels (p = 0.5), then:

1. asks Theorem 1 for the asymptotic k-connectivity probability,
2. cross-checks it with a quick Monte Carlo estimate,
3. deploys one concrete network and inspects its topology.

Run:  python examples/quickstart.py
"""

from repro import OnOffChannel, QCompositeParams, QCompositeScheme, SecureWSN
from repro.core.theorem1 import predict_k_connectivity
from repro.simulation.runners import estimate_connectivity
from repro.wsn.metrics import summarize


def main() -> None:
    params = QCompositeParams(
        num_nodes=1000,
        key_ring_size=50,
        pool_size=10_000,
        overlap=2,  # q-composite with q = 2
        channel_prob=0.5,  # on/off channels: half the links are up
    )

    # --- Theory: Theorem 1 ------------------------------------------------
    prediction = predict_k_connectivity(params, k=1)
    print(f"network           : {params.describe()}")
    print(f"edge probability  : {params.edge_probability():.6f}")
    print(f"deviation alpha_n : {prediction.alpha:+.3f}")
    print(f"regime            : {prediction.regime.value}")
    print(f"P[connected] (Thm 1) ≈ {prediction.probability:.3f}")

    # --- Simulation: 100 random deployments -------------------------------
    estimate = estimate_connectivity(params, trials=100, seed=7)
    print(
        f"P[connected] (Monte Carlo, {estimate.trials} trials) = "
        f"{estimate.estimate:.3f}  "
        f"[95% CI {estimate.ci_low:.3f}, {estimate.ci_high:.3f}]"
    )

    # --- One concrete deployment ------------------------------------------
    network = SecureWSN(
        num_nodes=1000,
        scheme=QCompositeScheme(key_ring_size=50, pool_size=10_000, q=2),
        channel=OnOffChannel(0.5),
        seed=42,
    )
    summary = summarize(network, with_clustering=False)
    print(
        f"one deployment    : {summary.num_secure_links} secure links, "
        f"min degree {summary.min_degree}, "
        f"{'connected' if summary.connected else 'NOT connected'}"
    )


if __name__ == "__main__":
    main()
