#!/usr/bin/env python
"""k-connectivity in action: secure routing under sensor failures.

Deploys a WSN dimensioned for 2-connectivity, routes a message between
two sensors (deriving the per-hop q-composite link keys), then starts
failing sensors — including ones on the active route — and shows the
network re-routing until connectivity finally breaks.  This is the
operational meaning of the paper's k-connectivity guarantee: "connected
despite the failure of any (k-1) sensors".

Run:  python examples/fault_tolerant_routing.py
"""

import numpy as np

from repro import OnOffChannel, QCompositeScheme, SecureWSN
from repro.core.design import minimal_key_ring_size
from repro.wsn.routing import find_secure_route


def main() -> None:
    n, pool, q, p = 300, 5000, 2, 0.8
    ring = minimal_key_ring_size(n, pool, q, p, k=2, target_probability=0.97)
    print(f"designing for 2-connectivity @0.97: n={n}, K={ring}, P={pool}, "
          f"q={q}, p={p}")

    network = SecureWSN(
        n, QCompositeScheme(ring, pool, q), OnOffChannel(p), seed=2024
    )
    print(f"deployed: {network.secure_edges().shape[0]} secure links, "
          f"2-connected: {network.is_k_connected(2)}")

    source, target = 0, n - 1
    rng = np.random.default_rng(5)
    round_no = 0
    while True:
        route = find_secure_route(network, source, target)
        if route is None:
            print(f"round {round_no}: no secure route left — "
                  f"{network.live_count()} sensors alive")
            break
        hops = " -> ".join(map(str, route.hops))
        key_preview = route.link_keys[0].hex()[:16]
        print(
            f"round {round_no}: route length {route.length} [{hops}] "
            f"(first hop key {key_preview}…)"
        )

        # An adversary with perfect knowledge kills a relay on the route;
        # if the route is direct, kill random sensors instead.
        interior = route.hops[1:-1]
        if interior:
            victim = int(rng.choice(interior))
        else:
            candidates = [
                s.node_id
                for s in network.sensors
                if s.alive and s.node_id not in (source, target)
            ]
            if not candidates:
                print("only the endpoints remain")
                break
            victim = int(rng.choice(candidates))
        network.fail_nodes([victim])
        print(f"         adversary disables sensor {victim}")
        round_no += 1
        if round_no > 25:
            print("stopping after 25 rounds (network is very robust)")
            break

    print(f"\nfinal state: {network.live_count()}/{n} sensors alive, "
          f"still connected: {network.is_connected()}")


if __name__ == "__main__":
    main()
