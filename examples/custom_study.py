"""A from-scratch heterogeneous-grid study — no registry entry needed.

The declarative layer makes new workloads pure configuration: this
script builds a study none of the registered experiments define, runs
it through the shared-deployment compiler, and post-processes the raw
per-trial tensors — all without touching ``repro.experiments``.

The study asks a design question the paper's Figure 1 only hints at:
at ``n = 300``, how do a *strict* scheme (q = 3) and a *lenient* scheme
(q = 2) compare across a heterogeneous grid of channel qualities when
we score them not just on connectivity but also on the min-degree law
and on capture-attack exposure?  Three things to note:

* Both scenarios pin the same ``(n, P, K grid, trials, seed)``, so the
  compiler samples every ``(K, trial)`` world once and the q = 2 vs
  q = 3 comparison is paired deployment-by-deployment (common random
  numbers — the difference estimates are far tighter than independent
  sampling would give).
* The channel grid ``p ∈ {0.4, 0.7, 1.0}`` is realized by nested
  thinning of one uniform draw per candidate edge, so each scheme's
  curves are monotone within every deployment.
* The same study can be expressed as JSON (printed at the end) and run
  with ``repro study FILE.json`` — the Python here is optional sugar.

Run:  PYTHONPATH=src python examples/custom_study.py
"""

from repro.study import MetricSpec, Scenario, Study, render_study_result

NUM_NODES = 300
POOL_SIZE = 4000
RING_SIZES = (30, 40, 50)
CHANNELS = (0.4, 0.7, 1.0)
TRIALS = 40
SEED = 424242

METRICS = (
    MetricSpec("connectivity"),
    MetricSpec("min_degree", k=2),
    MetricSpec("attack_compromised", captured=30),
    MetricSpec("attack_evaluated", captured=30),
)


def build_study() -> Study:
    scenarios = tuple(
        Scenario(
            name=f"q{q}",
            num_nodes=NUM_NODES,
            pool_size=POOL_SIZE,
            ring_sizes=RING_SIZES,
            curves=tuple((q, p) for p in CHANNELS),
            metrics=METRICS,
            trials=TRIALS,
            seed=SEED,
        )
        for q in (2, 3)
    )
    return Study(scenarios)


def main() -> None:
    study = build_study()
    result = study.run()

    print(render_study_result(result))

    # Paired comparison: because both scenarios share deployments, the
    # per-trial connectivity difference is meaningful sample-by-sample.
    print("\npaired q=2 minus q=3 connectivity gap (K=40):")
    for p in CHANNELS:
        lenient = result["q2"].series("connectivity", (2, p), 40)
        strict = result["q3"].series("connectivity", (3, p), 40)
        gap = (lenient - strict).mean()
        print(f"  p={p:.1f}: mean paired gap = {gap:+.3f}")

    # Attack exposure per scheme: compromised / evaluated link ratio.
    print("\ncapture exposure at 30 captured nodes (K=40, p=1.0):")
    for name, q in (("q2", 2), ("q3", 3)):
        comp = result[name].series(f"attack_compromised[captured=30]", (q, 1.0), 40)
        total = result[name].series(f"attack_evaluated[captured=30]", (q, 1.0), 40)
        frac = comp.sum() / max(total.sum(), 1)
        print(f"  {name}: {frac:.4f} of surviving links compromised")

    print("\nthe same study as JSON (runnable via `repro study FILE.json`):")
    print(study.to_json())


if __name__ == "__main__":
    main()
