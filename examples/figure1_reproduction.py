#!/usr/bin/env python
"""Reproduce Figure 1 of the paper (reduced grid by default).

Sweeps the key ring size K for the six (q, p) curves at n = 1000,
P = 10000, estimating the probability that the secure WSN topology is
connected, and overlays the Theorem 1 prediction.  Prints the numeric
table, an ASCII rendering of each curve, and the comparison between the
empirical e^{-1} crossings and the Eq. (9) thresholds.

Environment knobs:
    REPRO_TRIALS=<n>   Monte Carlo trials per point (default 40 here)
    REPRO_FULL=1       paper fidelity (500 trials)
    REPRO_WORKERS=<n>  process count

Run:  python examples/figure1_reproduction.py
"""

import math
import os

from repro.core.design import minimal_key_ring_size
from repro.experiments.figure1 import (
    empirical_crossings,
    render_figure1,
    run_figure1,
)
from repro.simulation.engine import trials_from_env
from repro.utils.tables import format_curve, format_table


def main() -> None:
    trials = trials_from_env(40, full=500)
    print(f"Running Figure 1 sweep with {trials} trials/point "
          f"(REPRO_TRIALS / REPRO_FULL=1 to change) ...")
    result = run_figure1(trials=trials, ring_sizes=list(range(28, 89, 6)))

    print()
    print(render_figure1(result))
    print()

    # ASCII plot per curve, like the paper's figure.
    by_curve: dict = {}
    for pt in result.points:
        key = (int(pt.point["q"]), float(pt.point["p"]))
        by_curve.setdefault(key, []).append(
            (int(pt.point["K"]), pt.estimate.estimate)
        )
    for (q, p), series in sorted(by_curve.items()):
        series.sort()
        xs = [k for k, _ in series]
        ys = [y for _, y in series]
        print(format_curve(xs, ys, label=f"q={q}, p={p}: P[connected] vs K"))
        print()

    # Threshold comparison.
    rows = []
    for (q, p), crossing in sorted(empirical_crossings(result).items()):
        exact = minimal_key_ring_size(1000, 10000, q, p)
        asym = minimal_key_ring_size(1000, 10000, q, p, method="asymptotic")
        rows.append([q, p, crossing, exact, asym])
    print(
        format_table(
            [
                "q",
                "p",
                "empirical e^-1 crossing",
                "K* exact (Eq. 9)",
                "K* asymptotic",
            ],
            rows,
            title=(
                "Empirical thresholds vs Eq. (9) "
                f"(e^-1 = {math.exp(-1):.3f} is the alpha=0 level)"
            ),
            floatfmt=".1f",
        )
    )


if __name__ == "__main__":
    main()
