#!/usr/bin/env python
"""Design guidelines: dimension a secure WSN from requirements.

The paper's practical payoff (Section III): use the asymptotically
exact probability to size the key rings, rather than over-provisioning
memory-constrained sensors.  This example walks a deployment scenario:

    "We will scatter 2000 sensors with q = 2 over terrain where only
     40% of channels work.  We need the network 2-connected (survive
     any single sensor failure) with probability 0.99.  The key pool
     has 15000 keys.  How many keys must each sensor store?"

and then explores the tradeoff surface around the answer.

Run:  python examples/design_guidelines.py
"""

from repro.core.design import (
    design_network,
    maximal_pool_size,
    minimal_key_ring_size,
    required_channel_probability,
)
from repro.utils.tables import format_kv_block, format_table


def main() -> None:
    n, pool, q, p, k, target = 2000, 15_000, 2, 0.4, 2, 0.99

    report = design_network(
        num_nodes=n,
        pool_size=pool,
        q=q,
        channel_prob=p,
        k=k,
        target_probability=target,
    )
    print(
        format_kv_block(
            "Scenario: 2000 sensors, p=0.4, q=2, target P[2-connected] = 0.99",
            [
                ["required key ring size K", report.params.key_ring_size],
                ["memory per sensor", f"{report.memory_per_node_bytes} bytes"],
                ["achieved deviation alpha", f"{report.alpha:+.3f}"],
                ["predicted P[2-connected]", f"{report.predicted_probability:.4f}"],
            ],
        )
    )
    print()

    # --- How the requirement moves the design -----------------------------
    rows = []
    for target_k in (1, 2, 3):
        for prob in (0.9, 0.99, 0.999):
            ring = minimal_key_ring_size(
                n, pool, q, p, k=target_k, target_probability=prob
            )
            rows.append([target_k, prob, ring, ring * 16])
    print(
        format_table(
            ["k", "target prob", "K required", "bytes/sensor"],
            rows,
            title="Ring size vs fault-tolerance requirement",
            floatfmt=".3f",
        )
    )
    print()

    # --- Inverse questions -------------------------------------------------
    ring = report.params.key_ring_size
    p_min = required_channel_probability(n, ring, pool, q, k, target)
    pool_max = maximal_pool_size(n, ring, q, p, k, target)
    print(
        format_kv_block(
            f"Holding K = {ring} fixed",
            [
                ["worst channel quality tolerated", f"p >= {p_min:.3f}"],
                [
                    "largest pool still meeting the target "
                    "(bigger pool = better capture resilience)",
                    pool_max,
                ],
            ],
        )
    )
    print()

    # --- The Eq. (9) bare-threshold rule for comparison --------------------
    kstar = minimal_key_ring_size(n, pool, q, p)
    print(
        f"Eq. (9) bare threshold (connectivity prob just above e^-1): "
        f"K* = {kstar}.  Designing for 0.99 costs "
        f"{report.params.key_ring_size - kstar} extra keys per sensor."
    )


if __name__ == "__main__":
    main()
