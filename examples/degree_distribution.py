#!/usr/bin/env python
"""Lemma 9 live: the degree structure of a secure WSN near threshold.

Deploys networks at the exact connectivity threshold (α = 0) and shows:

1. the empirical histogram of *degree-h node counts* against the
   Poisson(λ_{n,h}) law of Lemma 9, for the obstruction degrees
   h = 0, 1, 2;
2. why that matters: the number of isolated nodes (h = 0) is the
   binding obstruction for connectivity, and P[N_0 = 0] ≈ e^{-λ_0}
   reproduces the Theorem 1 probability.

Run:  python examples/degree_distribution.py
"""

import numpy as np

from repro.core.degree_distribution import lambda_nh_exact
from repro.core.scaling import channel_prob_for_alpha
from repro.params import QCompositeParams
from repro.probability.poisson import poisson_pmf
from repro.simulation.runners import estimate_connectivity, sample_degree_counts
from repro.utils.tables import format_table


def main() -> None:
    n, K, P, q = 1000, 60, 10_000, 2
    p = channel_prob_for_alpha(n, K, P, q, alpha=0.0, k=1)
    params = QCompositeParams(
        num_nodes=n, key_ring_size=K, pool_size=P, overlap=q, channel_prob=p
    )
    trials = 200
    print(f"at the connectivity threshold: {params.describe()} (alpha = 0)\n")

    for h in (0, 1, 2):
        counts = sample_degree_counts(params, h, trials, seed=31 + h)
        lam = lambda_nh_exact(n, params.edge_probability(), h)
        hist = np.bincount(counts, minlength=int(counts.max()) + 1)

        rows = []
        for value in range(min(len(hist), 10)):
            emp = hist[value] / trials
            rows.append([value, emp, poisson_pmf(value, lam)])
        print(
            format_table(
                [f"N_{h} = v", "empirical freq", f"Poisson(λ={lam:.2f})"],
                rows,
                title=f"Nodes of degree {h} across {trials} deployments",
            )
        )
        print()

    # The h = 0 connection to Theorem 1.
    counts0 = sample_degree_counts(params, 0, trials, seed=31)
    no_isolated = float((counts0 == 0).mean())
    connected = estimate_connectivity(params, trials, seed=77).estimate
    lam0 = lambda_nh_exact(n, params.edge_probability(), 0)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["P[no isolated nodes] (empirical)", no_isolated],
                ["e^{-λ_0} (Poisson prediction)", float(np.exp(-lam0))],
                ["P[connected] (empirical)", connected],
                ["Theorem 1 limit at alpha=0 (= 1/e)", float(np.exp(-1.0))],
            ],
            title="Isolated nodes are the connectivity obstruction",
        )
    )
    print(
        "\nReading: P[connected] ≈ P[no isolated node] ≈ e^{-λ_0} — the"
        "\nlocal obstruction (degree-0 nodes) fully explains the global"
        "\nconnectivity probability, which is the structural content of"
        "\nTheorem 1's proof (Lemmas 8-9)."
    )


if __name__ == "__main__":
    main()
