#!/usr/bin/env python
"""The q-composite tradeoff under node-capture attacks.

Reproduces the motivation from the paper's introduction (due to Chan,
Perrig & Song): raising the required key overlap q strengthens the
network against *small* capture attacks but weakens it against *large*
ones — once each scheme's ring size is scaled to deliver the same
connectivity (Eq. 9).

The script deploys one network per q with its connectivity-equalized
ring size, simulates adversaries of growing strength, and prints the
compromised-link fraction next to the Chan-Perrig-Song analytic
estimate, making the crossover visible.

Run:  python examples/attack_resilience.py
"""

from repro import OnOffChannel, QCompositeScheme, SecureWSN
from repro.core.design import minimal_key_ring_size
from repro.utils.tables import format_table
from repro.wsn.attacks import analytic_compromise_fraction, capture_attack


def main() -> None:
    design_n, pool = 1000, 10_000
    sim_n = 400  # per-link statistics don't depend on n; keep the sim cheap
    captured_grid = (10, 50, 150, 300)

    rows = []
    for q in (1, 2, 3):
        ring = minimal_key_ring_size(design_n, pool, q, 1.0)
        network = SecureWSN(
            sim_n,
            QCompositeScheme(ring, pool, q),
            OnOffChannel(1.0),
            seed=100 + q,
        )
        for captured in captured_grid:
            outcome = capture_attack(network, captured, seed=q * 1000 + captured)
            analytic = analytic_compromise_fraction(ring, pool, q, captured)
            rows.append(
                [
                    q,
                    ring,
                    captured,
                    outcome.compromise_fraction,
                    analytic,
                    outcome.links_evaluated,
                ]
            )

    print(
        format_table(
            [
                "q",
                "K*(q)",
                "nodes captured",
                "links compromised (sim)",
                "analytic",
                "links audited",
            ],
            rows,
            title=(
                "Capture resilience at equalized connectivity "
                f"(design n={design_n}, P={pool})"
            ),
        )
    )
    print()
    print(
        "Reading: at 10 captured nodes, q=3 leaks the least; at 300 the\n"
        "ordering flips — exactly the small-vs-large-scale tradeoff the\n"
        "paper's introduction describes."
    )


if __name__ == "__main__":
    main()
