"""Command-line interface: ``repro`` / ``python -m repro``.

Every registered experiment is a Scenario/Study declaration over the
shared-deployment sweep compiler (see :mod:`repro.study`), so the CLI
is thin: it looks declarations up, applies overrides, runs, renders.

Subcommands
-----------
``repro list``
    Show every registered experiment with its paper anchor.
``repro run NAME [--trials N] [--workers N] [--seed N] [--set k=v ...] [--save PATH]``
    Run one experiment and print its rendered table(s).  ``--set``
    overrides any keyword of the experiment's run function, with JSON
    values: ``repro run theorem1 --set trials=200 --set "ks=[1,2]"``.
    A leading ``grid.`` namespace is accepted and stripped, so
    ``--set grid.trials=200`` is equivalent.
``repro all [--trials N] [--set k=v ...] ...``
    Run the full suite in registry order (quick trial counts unless
    overridden), printing each block — the "regenerate the evaluation
    section" button.  ``--set`` overrides are applied per experiment:
    keys an experiment's run function does not accept are skipped with
    a warning on stderr, so ``repro all --set trials=200`` tunes every
    Monte Carlo experiment while the numeric ``kstar`` table just notes
    the skip.
``repro kernels [--backend NAME]``
    List the registered kernel backends (:mod:`repro.kernels`) with
    availability, and micro-probe each available one: correctness
    checks against the reference backend plus micro-timings.  Exits
    non-zero if an available backend fails its probe.
``repro study FILE.json [--workers N] [--set k=v ...] [--save PATH]``
    Run scenarios straight from JSON — one scenario object, a list, or
    ``{"scenarios": [...]}`` — with no accompanying Python.  With
    ``--target-ci HW`` the study runs *adaptively*: the declared
    ``trials`` is the first round, and ``(size, K, curve)`` cells keep
    extending in blocks (``--block-trials``, capped per cell at
    ``--max-trials``, default 4000) until their Wilson half-width
    (indicator metrics) or standard error (value metrics) reaches the
    target — e.g. ``repro study FILE.json --target-ci 0.01
    --max-trials 4000``.  ``--set``
    overrides a field on *every* scenario in the file (e.g. ``--set
    trials=50``, or ``--set "num_nodes_grid=[200,500,1000]"`` for a
    growth sweep; setting ``num_nodes_grid`` drops a conflicting
    ``num_nodes``, while ``--set num_nodes`` on a size-grid file also
    requires replacing any per-size ring_sizes/curves/pool_size
    lists).  There is no separate ``--seed``
    flag here: the seed is a scenario field, so ``--set seed=7`` is the
    study-file spelling of ``repro run NAME --seed 7``.  Results render
    as generic per-metric tables; ``--save`` writes the full per-trial
    value tensors as JSON.

    Fault tolerance: ``--max-retries N``, ``--unit-timeout S``, and
    ``--speculate-after S`` run work units under the per-unit
    supervisor (:mod:`repro.simulation.scheduler`) — bounded retries
    with jittered backoff, per-unit timeouts, speculative straggler
    re-execution, and graceful degradation to a partial (NaN-bearing)
    result with a fault report in provenance.  ``--chaos FILE_OR_SPEC``
    (or the ``REPRO_CHAOS`` env var) additionally injects
    deterministically seeded failures — crash, delay, drop, partial
    result, broken pool — around every unit, for testing that the
    supervised run still converges to the fault-free answer.
"""

from __future__ import annotations

import argparse
import inspect
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.exceptions import ExperimentError, ParameterError
from repro.experiments.registry import get_experiment, list_experiments
from repro.simulation.results import save_result

__all__ = ["main", "build_parser", "parse_overrides"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Secure connectivity of WSNs under "
            "key predistribution with on/off channels' (ICDCS 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for cmd in ("run", "all"):
        p = sub.add_parser(
            cmd,
            help="run one experiment" if cmd == "run" else "run every experiment",
        )
        if cmd == "run":
            p.add_argument("name", help="experiment name (see `repro list`)")
            p.add_argument("--save", help="write the result JSON to this path")
        p.add_argument(
            "--set",
            dest="overrides",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help=(
                "override any run() keyword (JSON value), repeatable"
                if cmd == "run"
                else "override run() keywords per experiment (JSON value), "
                "repeatable; keys an experiment does not accept are "
                "skipped with a warning"
            ),
        )
        p.add_argument("--trials", type=int, default=None, help="Monte Carlo trials")
        p.add_argument("--workers", type=int, default=None, help="process count")
        p.add_argument("--seed", type=int, default=None, help="root seed override")
        p.add_argument(
            "--kernel-backend",
            default=None,
            metavar="NAME",
            help=(
                "kernel backend for the hot-path kernels (see `repro "
                "kernels`); overrides REPRO_KERNEL_BACKEND"
            ),
        )

    p = sub.add_parser(
        "lint",
        help="run the determinism & contract linter (repro.analysis)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    p.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    p.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="report format (json is the CI gate's input)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings (default: "
            ".repro-lint-baseline.json next to the linted tree, when "
            "present)"
        ),
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help=(
            "grandfather all current findings into PATH and exit 0; "
            "edit the generated justifications before committing"
        ),
    )
    p.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        help="override a rule's severity (error|warning), repeatable",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="also show baselined and suppressed findings (text format)",
    )

    p = sub.add_parser("kernels", help="list and micro-probe kernel backends")
    p.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="probe only this backend (default: all registered)",
    )

    p = sub.add_parser("study", help="run scenarios from a JSON file")
    p.add_argument("file", help="path to a scenario/study JSON file")
    p.add_argument("--workers", type=int, default=None, help="process count")
    p.add_argument(
        "--kernel-backend",
        default=None,
        metavar="NAME",
        help=(
            "kernel backend for every scenario that does not pin one via "
            "its kernel_backend field (see `repro kernels`); overrides "
            "REPRO_KERNEL_BACKEND"
        ),
    )
    p.add_argument("--save", help="write the StudyResult JSON to this path")
    p.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="HW",
        help=(
            "run adaptively: extend trials in blocks until every (size, K, "
            "curve) cell's Wilson half-width (indicators) or standard error "
            "(means) is at or below this target"
        ),
    )
    p.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="N",
        help="per-cell trial cap for --target-ci runs (default 4000)",
    )
    p.add_argument(
        "--block-trials",
        type=int,
        default=None,
        metavar="N",
        help=(
            "trials added per adaptive round (default: the scenario's "
            "declared trials, which is also the first round)"
        ),
    )
    p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override a scenario field on every scenario (JSON value), "
            "repeatable; covers seeds too (--set seed=7 — the study "
            "subcommand has no separate --seed flag) and size grids "
            '(--set "num_nodes_grid=[200,500]" replaces num_nodes)'
        ),
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="FILE_OR_SPEC",
        help=(
            "inject deterministic faults around every work unit: a "
            "ChaosSpec JSON file path or an inline JSON object (also "
            "honored from the REPRO_CHAOS environment variable); implies "
            "the fault-tolerant scheduler"
        ),
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fault-tolerant scheduler: failed-attempt budget per work "
            "unit beyond its first try (default 3); passing any scheduler "
            "flag enables per-unit supervision"
        ),
    )
    p.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "fault-tolerant scheduler: declare a work-unit attempt lost "
            "after this many seconds and retry it"
        ),
    )
    p.add_argument(
        "--speculate-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "fault-tolerant scheduler: launch a duplicate of a straggler "
            "still running after this many seconds (first result wins; "
            "duplicates are verified bit-identical)"
        ),
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed result cache directory: a repeated study is "
            "a cache hit, an overlapping one (same scenarios, more trials) "
            "runs only the missing trial window"
        ),
    )
    p.add_argument(
        "--transport",
        default=None,
        choices=("inprocess", "subprocess"),
        help=(
            "run the study as shards over this transport (subprocess = "
            "`repro worker` child interpreters, the remote stand-in); "
            "results fold bit-identically to a one-shot run"
        ),
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count per deployment family (default 4 on the trial axis)",
    )
    p.add_argument(
        "--shard-axis",
        default="trial",
        choices=("trial", "size"),
        help=(
            "axis to shard along: contiguous trial windows (default), or "
            "size-grid entries for growth sweeps"
        ),
    )

    p = sub.add_parser(
        "worker", help="execute one shard JSON (service transport worker)"
    )
    p.add_argument("shard", help="path to a repro-shard/v1 JSON file")
    p.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the shard result JSON here (default: SHARD.result.json)",
    )
    p.add_argument("--workers", type=int, default=None, help="process count")

    p = sub.add_parser(
        "serve", help="run the long-running study service on a spool directory"
    )
    p.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="spool directory (jobs/, status/, events/, results/ live here)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="answer repeated/overlapping jobs from this result cache",
    )
    p.add_argument("--workers", type=int, default=None, help="process count per job")
    p.add_argument(
        "--max-concurrent",
        type=int,
        default=2,
        metavar="N",
        help="jobs executing at once, sharing the warm pool (default 2)",
    )
    p.add_argument(
        "--transport",
        default=None,
        choices=("inprocess", "subprocess"),
        help="execute jobs as shards over this transport",
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="stop after N jobs (bounded servers for CI/tests)",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long with no pending or running jobs",
    )

    p = sub.add_parser("submit", help="submit a study JSON to a running service")
    p.add_argument("file", help="path to a scenario/study JSON file")
    p.add_argument("--spool", required=True, metavar="DIR", help="service spool directory")
    p.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="HW",
        help="run the job adaptively to this CI target (see `repro study`)",
    )
    p.add_argument(
        "--max-trials", type=int, default=None, metavar="N",
        help="per-cell trial cap for --target-ci jobs",
    )
    p.add_argument(
        "--block-trials", type=int, default=None, metavar="N",
        help="trials per adaptive round for --target-ci jobs",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="tail the job's progress events and exit with its outcome",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="--wait gives up after this long (default 600)",
    )

    p = sub.add_parser("status", help="show service job status and events")
    p.add_argument("job", nargs="?", default=None, help="job id (default: list all)")
    p.add_argument("--spool", required=True, metavar="DIR", help="service spool directory")
    p.add_argument(
        "--events",
        type=int,
        default=10,
        metavar="N",
        help="show the last N progress events of the job (default 10)",
    )
    return parser


def parse_overrides(pairs: List[str]) -> Dict[str, object]:
    """Parse ``--set key=value`` pairs; values are JSON, else strings.

    A leading ``grid.`` namespace is stripped (``grid.trials`` →
    ``trials``), matching the scenario-file vocabulary.
    """
    out: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ExperimentError(
                f"--set expects KEY=VALUE, got {pair!r}"
            )
        if key.startswith("grid."):
            key = key[len("grid."):]
        try:
            value: object = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        out[key] = value
    return out


def _run_signature(run_fn):
    """(parameters, accepts **kwargs) of an experiment's run function."""
    params = inspect.signature(run_fn).parameters
    accepts_var_kw = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    return params, accepts_var_kw


def _run_kwargs(args: argparse.Namespace, run_fn=None) -> dict:
    kwargs: dict = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    overrides = parse_overrides(getattr(args, "overrides", []) or [])
    if overrides and run_fn is not None:
        params, accepts_var_kw = _run_signature(run_fn)
        unknown = set(overrides) - set(params)
        if unknown and not accepts_var_kw:
            raise ExperimentError(
                f"unknown --set keys {sorted(unknown)}; "
                f"valid parameters: {sorted(params)}"
            )
    kwargs.update(overrides)
    return kwargs


def _strip_unsupported(spec, kwargs: dict) -> dict:
    """Drop engine knobs an experiment does not accept (e.g. numeric kstar)."""
    params, accepts_var_kw = _run_signature(spec.run)
    if accepts_var_kw:
        return kwargs
    return {k: v for k, v in kwargs.items() if k in params}


def _is_per_size_rings(scenario: dict) -> bool:
    rings = scenario.get("ring_sizes")
    if not (bool(rings) and isinstance(rings, list) and isinstance(rings[0], list)):
        return False
    if "classes" in scenario:
        # Class-mix entries are per-class [K_1, ..., K_C] vectors, so
        # the per-size form carries one more nesting level.
        return bool(rings[0]) and isinstance(rings[0][0], list)
    return True


def _is_per_size_curves(scenario: dict) -> bool:
    curves = scenario.get("curves")
    return (
        bool(curves)
        and isinstance(curves, list)
        and isinstance(curves[0], list)
        and bool(curves[0])
        and isinstance(curves[0][0], list)
    )


def _build_scheduler_policy(args: argparse.Namespace):
    """Scheduler policy from CLI flags, or ``None`` to stay unsupervised.

    Any of ``--chaos``/``--max-retries``/``--unit-timeout``/
    ``--speculate-after`` opts into per-unit supervision; ``REPRO_CHAOS``
    alone also does (resolved downstream by the study runner).
    """
    flags = (args.chaos, args.max_retries, args.unit_timeout, args.speculate_after)
    if all(value is None for value in flags):
        return None
    from repro.simulation.faults import chaos_from_env, load_chaos
    from repro.simulation.scheduler import SchedulerPolicy

    chaos = load_chaos(args.chaos) if args.chaos is not None else chaos_from_env()
    kwargs: Dict[str, object] = {"chaos": chaos}
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.unit_timeout is not None:
        kwargs["unit_timeout"] = args.unit_timeout
    if args.speculate_after is not None:
        kwargs["speculate_after"] = args.speculate_after
    return SchedulerPolicy(**kwargs)  # type: ignore[arg-type]


def _run_study_file(args: argparse.Namespace) -> int:
    from repro.study import Study, render_study_result

    path = pathlib.Path(args.file)
    if not path.exists():
        raise ExperimentError(f"no such study file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ParameterError(f"study file {path} does not parse as JSON: {exc}")

    overrides = parse_overrides(args.overrides or [])
    if overrides:
        if isinstance(data, dict) and "scenarios" in data:
            scenarios = data["scenarios"]
        elif isinstance(data, list):
            scenarios = data
        else:
            scenarios = [data]
        for scenario in scenarios:
            if isinstance(scenario, dict):
                had_grid = "num_nodes_grid" in scenario
                scenario.update(overrides)
                # A size-grid override replaces a pinned size and vice
                # versa — the two declarations are mutually exclusive.
                if "num_nodes_grid" in overrides:
                    if "num_nodes" not in overrides:
                        scenario.pop("num_nodes", None)
                elif "num_nodes" in overrides and had_grid:
                    scenario.pop("num_nodes_grid", None)
                    # Per-size axes have no single-size meaning; demand
                    # explicit replacements rather than failing deep in
                    # scenario validation.
                    leftover = [
                        field
                        for field, per_size in (
                            ("ring_sizes", _is_per_size_rings(scenario)),
                            ("curves", _is_per_size_curves(scenario)),
                            ("pool_size", isinstance(scenario.get("pool_size"), list)),
                        )
                        if per_size and field not in overrides
                    ]
                    if leftover:
                        raise ExperimentError(
                            f"--set num_nodes replaces this file's "
                            f"num_nodes_grid, but its per-size "
                            f"{'/'.join(leftover)} cannot be kept; also pass "
                            + " ".join(f"--set {f}=..." for f in leftover)
                        )

    study = Study.from_dict(data)
    scheduler = _build_scheduler_policy(args)
    if args.target_ci is not None:
        if args.cache or args.transport:
            raise ExperimentError(
                "--target-ci does not combine with --cache/--transport; "
                "submit adaptive jobs to `repro serve` instead"
            )
        from repro.study import AdaptivePolicy, run_adaptive_study

        policy = AdaptivePolicy(
            ci_target=args.target_ci,
            max_trials=args.max_trials if args.max_trials is not None else 4000,
            block_trials=args.block_trials,
        )
        result = run_adaptive_study(
            study, policy, workers=args.workers, scheduler=scheduler
        )
    elif args.max_trials is not None or args.block_trials is not None:
        raise ExperimentError(
            "--max-trials/--block-trials configure adaptive runs; "
            "pass --target-ci to enable one"
        )
    elif args.cache or args.transport:
        result = _run_study_service_path(study, args, scheduler)
    else:
        result = study.run(workers=args.workers, scheduler=scheduler)
    print(render_study_result(result))
    adaptive = result.provenance.get("adaptive")
    if isinstance(adaptive, dict):
        print(
            f"\nadaptive: {len(adaptive['rounds'])} extension rounds, "
            f"{adaptive['trials_spent']} cell-trials spent "
            f"(max cell {adaptive['max_cell_trials']}, "
            f"{adaptive['savings_vs_fixed']}x savings vs fixed-trial)"
        )
    cache_info = result.provenance.get("cache")
    if isinstance(cache_info, dict):
        delta = cache_info.get("delta_window")
        detail = f", delta trials {delta}" if delta else ""
        print(
            f"\ncache: {cache_info['disposition']} "
            f"({cache_info['executed_units']} work units executed{detail})"
        )
    if "transport" in result.provenance:
        print(
            f"transport: {result.provenance['transport']} "
            f"({result.provenance.get('shards', '?')} shards along the "
            f"{result.provenance.get('shard_axis', '?')} axis)"
        )
    faults = result.provenance.get("faults")
    if isinstance(faults, dict):
        from repro.simulation.scheduler import FaultReport

        report = FaultReport(
            **{
                name: faults.get(name, 0)
                for name in FaultReport._COUNTERS
            },
            dead_units=list(faults.get("dead_units", ())),
        )
        print(f"\nfaults: {report.summary()}")
        if report.dead_units:
            print(
                "warning: partial result — dead work units left NaN "
                "(unevaluated) cells; raise --max-retries to converge"
            )
    if args.save:
        result.save(args.save)
        print(f"\nsaved: {args.save}")
    return 0


def _run_study_service_path(study, args: argparse.Namespace, scheduler):
    """``repro study`` with --cache/--transport: the service execution path."""
    from repro.service.cache import ResultCache, run_cached
    from repro.service.shards import get_transport, run_sharded

    transport = None
    if args.transport is not None:
        transport = get_transport(
            args.transport,
            workers=args.workers,
            scheduler=scheduler if args.transport == "inprocess" else None,
        )
        if args.transport == "subprocess" and scheduler is not None:
            raise ExperimentError(
                "scheduler flags do not forward to subprocess workers; "
                "set REPRO_CHAOS in the environment instead"
            )
    if args.cache:
        return run_cached(
            study,
            ResultCache(args.cache),
            workers=args.workers,
            scheduler=scheduler,
            transport=transport,
            axis=args.shard_axis,
            shards=args.shards,
        )
    return run_sharded(
        study,
        transport,
        axis=args.shard_axis,
        shards=args.shards,
        workers=args.workers,
        scheduler=scheduler,
    )


def _run_worker(args: argparse.Namespace) -> int:
    from repro.service.shards import execute_shard

    path = pathlib.Path(args.shard)
    if not path.exists():
        raise ExperimentError(f"no such shard file: {path}")
    try:
        shard = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ParameterError(f"shard file {path} does not parse as JSON: {exc}")
    payload = execute_shard(shard, workers=args.workers)
    out = (
        pathlib.Path(args.output)
        if args.output
        else path.with_suffix(".result.json")
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload))
    print(str(out))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.cache import ResultCache
    from repro.service.queue import StudyService
    from repro.service.shards import get_transport

    cache = ResultCache(args.cache) if args.cache else None
    transport = (
        get_transport(args.transport, workers=args.workers)
        if args.transport
        else None
    )
    service = StudyService(
        args.spool,
        cache=cache,
        workers=args.workers,
        max_concurrent=args.max_concurrent,
        transport=transport,
    )
    print(
        f"serving spool {service.spool} "
        f"(cache: {args.cache or 'off'}, transport: "
        f"{args.transport or 'direct'}, max-concurrent: {args.max_concurrent})",
        flush=True,
    )
    executed = service.serve_forever(
        max_jobs=args.max_jobs, idle_timeout=args.idle_timeout
    )
    print(f"served {executed} job(s)")
    return 0


def _submit_job_id(path: pathlib.Path) -> str:
    import time

    return f"{path.stem}-{time.time_ns():x}"


def _run_submit(args: argparse.Namespace) -> int:
    import time

    from repro.service.queue import JOB_FORMAT

    path = pathlib.Path(args.file)
    if not path.exists():
        raise ExperimentError(f"no such study file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ParameterError(f"study file {path} does not parse as JSON: {exc}")
    spool = pathlib.Path(args.spool)
    jobs_dir = spool / "jobs"
    jobs_dir.mkdir(parents=True, exist_ok=True)
    options: Dict[str, object] = {}
    if args.target_ci is not None:
        options["target_ci"] = args.target_ci
        if args.max_trials is not None:
            options["max_trials"] = args.max_trials
        if args.block_trials is not None:
            options["block_trials"] = args.block_trials
    elif args.max_trials is not None or args.block_trials is not None:
        raise ExperimentError(
            "--max-trials/--block-trials configure adaptive jobs; "
            "pass --target-ci to enable one"
        )
    job_id = _submit_job_id(path)
    job_path = jobs_dir / f"{job_id}.json"
    tmp = job_path.with_name(job_path.name + ".tmp")
    tmp.write_text(
        json.dumps({"format": JOB_FORMAT, "study": data, "options": options})
    )
    tmp.replace(job_path)  # atomic: the server never reads a torn job
    print(f"submitted {job_id}")
    if not args.wait:
        return 0

    status_path = spool / "status" / f"{job_id}.json"
    events_path = spool / "events" / f"{job_id}.jsonl"
    deadline = time.time() + args.timeout
    events_offset = 0
    state = "queued"
    while time.time() < deadline:
        if events_path.exists():
            with open(events_path) as stream:
                stream.seek(events_offset)
                for line in stream:
                    print(f"  event: {line.rstrip()}")
                events_offset = stream.tell()
        try:
            status = json.loads(status_path.read_text())
        except (OSError, json.JSONDecodeError):
            status = None
        if isinstance(status, dict):
            state = str(status.get("state", state))
            if state in ("done", "failed"):
                print(json.dumps(status, indent=2, sort_keys=True))
                return 0 if state == "done" else 1
        time.sleep(0.2)
    print(f"timed out after {args.timeout}s waiting for {job_id} (state: {state})")
    return 1


def _run_status(args: argparse.Namespace) -> int:
    spool = pathlib.Path(args.spool)
    status_dir = spool / "status"
    if args.job is None:
        rows = []
        for path in sorted(status_dir.glob("*.json")):
            try:
                status = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            cache = status.get("cache") or {}
            rows.append(
                f"{status.get('job_id', path.stem):40} "
                f"{status.get('state', '?'):8} "
                f"units={status.get('units', '-')} "
                f"cache={cache.get('disposition', '-')}"
            )
        if not rows:
            print(f"no jobs in spool {spool}")
        else:
            print("\n".join(rows))
        return 0
    status_path = status_dir / f"{args.job}.json"
    try:
        status = json.loads(status_path.read_text())
    except (OSError, json.JSONDecodeError):
        raise ExperimentError(f"no status for job {args.job!r} in spool {spool}")
    print(json.dumps(status, indent=2, sort_keys=True))
    events_path = spool / "events" / f"{args.job}.jsonl"
    if events_path.exists() and args.events > 0:
        lines = events_path.read_text().splitlines()
        shown = lines[-args.events :]
        print(f"\nevents (last {len(shown)} of {len(lines)}):")
        for line in shown:
            print(f"  {line}")
    return 0


#: Default baseline filename, looked up next to the linted tree.
BASELINE_FILENAME = ".repro-lint-baseline.json"


def _default_baseline(paths: List[str]) -> Optional[pathlib.Path]:
    """Find ``.repro-lint-baseline.json`` near the linted paths.

    Checks each path's directory and its parents up to the filesystem
    root, so ``repro lint src/repro`` from the repo root and ``repro
    lint .`` from inside ``src`` both find the committed baseline.
    """
    seen = set()
    for raw in paths:
        start = pathlib.Path(raw).resolve()
        if start.is_file():
            start = start.parent
        for directory in [start, *start.parents]:
            if directory in seen:
                break
            seen.add(directory)
            candidate = directory / BASELINE_FILENAME
            if candidate.is_file():
                return candidate
    return None


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Baseline, lint_paths, render_json, render_text
    from repro.analysis.reporters import render_rule_listing

    if args.list_rules:
        print(render_rule_listing())
        return 0

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    severities: Dict[str, str] = {}
    for pair in args.severity:
        rule_id, sep, level = pair.partition("=")
        if not sep:
            raise ExperimentError(f"--severity expects RULE=LEVEL, got {pair!r}")
        severities[rule_id] = level

    baseline = None
    if args.write_baseline is None and not args.no_baseline:
        baseline = (
            pathlib.Path(args.baseline)
            if args.baseline
            else _default_baseline(args.paths)
        )
        if args.baseline and not baseline.is_file():
            raise ExperimentError(f"no such baseline file: {baseline}")

    from repro.exceptions import AnalysisError

    try:
        result = lint_paths(
            args.paths,
            select=select,
            ignore=ignore,
            baseline=baseline,
            severities=severities,
        )
    except AnalysisError as exc:
        # Configuration problems (unknown rule, malformed baseline, bad
        # path) are exit code 2: distinguishable from findings (1) in CI.
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        generated = Baseline.from_findings(
            result.findings,
            justification="grandfathered by --write-baseline; replace with "
            "a real justification",
        )
        generated.save(args.write_baseline)
        print(
            f"wrote {len(generated.entries)} baseline entr"
            f"{'y' if len(generated.entries) == 1 else 'ies'} to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


def _run_kernels_probe(args: argparse.Namespace) -> int:
    from repro.kernels import backend_names
    from repro.kernels.probe import probe_backends, render_probes

    if args.backend is not None and args.backend not in backend_names():
        raise ExperimentError(
            f"unknown kernel backend {args.backend!r}; registered: "
            f"{', '.join(backend_names())}"
        )
    probes = probe_backends(args.backend)
    print(render_probes(probes))
    failed = [p for p in probes if p["available"] and not p["ok"]]
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if getattr(args, "kernel_backend", None) is not None:
        # Session-wide selection: validates the name and loads the
        # backend now, so a bad flag fails here and not mid-sweep.
        # Also exported as the env var: the sweep/study engines pin the
        # resolved name into their work units, but the per-trial paths
        # (legacy backends, protocol scenarios) resolve ambiently in
        # the workers, and spawn-start worker processes only see the
        # parent's environment, not its module globals.
        import os

        from repro.kernels import ENV_VAR, set_backend

        set_backend(args.kernel_backend)
        os.environ[ENV_VAR] = args.kernel_backend

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "kernels":
        return _run_kernels_probe(args)

    if args.command == "list":
        for spec in list_experiments():
            print(f"{spec.name:16} {spec.paper_anchor:42} {spec.description}")
        return 0

    if args.command == "run":
        spec = get_experiment(args.name)
        kwargs = _strip_unsupported(spec, _run_kwargs(args, spec.run))
        result = spec.run(**kwargs)
        print(spec.render(result))
        if args.save:
            save_result(result, args.save)
            print(f"\nsaved: {args.save}")
        return 0

    if args.command == "all":
        overrides = parse_overrides(getattr(args, "overrides", []) or [])
        for spec in list_experiments():
            kwargs = _strip_unsupported(spec, _run_kwargs(args))
            params, accepts_var_kw = _run_signature(spec.run)
            for key, value in overrides.items():
                if accepts_var_kw or key in params:
                    kwargs[key] = value
                else:
                    print(
                        f"warning: {spec.name} does not accept --set {key}; skipped",
                        file=sys.stderr,
                    )
            print(f"=== {spec.name} — {spec.paper_anchor} ===")
            result = spec.run(**kwargs)
            print(spec.render(result))
            print()
        return 0

    if args.command == "study":
        return _run_study_file(args)

    if args.command == "worker":
        return _run_worker(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "submit":
        return _run_submit(args)

    if args.command == "status":
        return _run_status(args)

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
