"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``repro list``
    Show every registered experiment with its paper anchor.
``repro run NAME [--trials N] [--workers N] [--seed N] [--save PATH]``
    Run one experiment and print its rendered table(s).
``repro all [--trials N] ...``
    Run the full suite in registry order (quick trial counts unless
    overridden), printing each block — the "regenerate the evaluation
    section" button.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import get_experiment, list_experiments
from repro.simulation.results import save_result

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Secure connectivity of WSNs under "
            "key predistribution with on/off channels' (ICDCS 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for cmd in ("run", "all"):
        p = sub.add_parser(
            cmd,
            help="run one experiment" if cmd == "run" else "run every experiment",
        )
        if cmd == "run":
            p.add_argument("name", help="experiment name (see `repro list`)")
            p.add_argument("--save", help="write the result JSON to this path")
        p.add_argument("--trials", type=int, default=None, help="Monte Carlo trials")
        p.add_argument("--workers", type=int, default=None, help="process count")
        p.add_argument("--seed", type=int, default=None, help="root seed override")
    return parser


def _run_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for spec in list_experiments():
            print(f"{spec.name:16} {spec.paper_anchor:42} {spec.description}")
        return 0

    if args.command == "run":
        spec = get_experiment(args.name)
        kwargs = _run_kwargs(args)
        if spec.name == "kstar":
            kwargs.pop("trials", None)  # purely numeric experiment
            kwargs.pop("workers", None)
            kwargs.pop("seed", None)
        result = spec.run(**kwargs)
        print(spec.render(result))
        if args.save:
            save_result(result, args.save)
            print(f"\nsaved: {args.save}")
        return 0

    if args.command == "all":
        for spec in list_experiments():
            kwargs = _run_kwargs(args)
            if spec.name == "kstar":
                kwargs.pop("trials", None)
                kwargs.pop("workers", None)
                kwargs.pop("seed", None)
            print(f"=== {spec.name} — {spec.paper_anchor} ===")
            result = spec.run(**kwargs)
            print(spec.render(result))
            print()
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
