"""Graph composition operators.

The paper's model is literally a graph intersection,
``G_{n,q} = G_q(n,K,P) ∩ G(n,p)`` (Eq. 1), and its proofs repeatedly use
spanning sub/supergraph ("coupling") relations — so the library exposes
those operations as first-class functions, on both :class:`Graph`
objects and raw edge arrays.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "intersection",
    "union",
    "is_spanning_subgraph",
    "intersect_edge_arrays",
    "encode_edges",
    "decode_edges",
]


def _require_same_nodes(a: Graph, b: Graph) -> int:
    if a.num_nodes != b.num_nodes:
        raise GraphError(
            f"graphs must share the node set: {a.num_nodes} != {b.num_nodes}"
        )
    return a.num_nodes


def intersection(a: Graph, b: Graph) -> Graph:
    """Edge-set intersection of two graphs on the same node set (Eq. 1)."""
    n = _require_same_nodes(a, b)
    small, large = (a, b) if a.num_edges <= b.num_edges else (b, a)
    out = Graph(n)
    for u, v in small.edges():
        if large.has_edge(u, v):
            out.add_edge(u, v)
    return out


def union(a: Graph, b: Graph) -> Graph:
    """Edge-set union of two graphs on the same node set."""
    n = _require_same_nodes(a, b)
    out = Graph(n)
    for u, v in a.edges():
        out.add_edge(u, v)
    for u, v in b.edges():
        out.add_edge(u, v)
    return out


def is_spanning_subgraph(sub: Graph, sup: Graph) -> bool:
    """Return whether every edge of *sub* is an edge of *sup*.

    This is the relation written ``sup ⪰ sub`` in the paper's coupling
    notation (Lemmas 1, 3–6).
    """
    _require_same_nodes(sub, sup)
    if sub.num_edges > sup.num_edges:
        return False
    return all(sup.has_edge(u, v) for u, v in sub.edges())


def encode_edges(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    """Encode canonical edges ``(u, v), u < v`` as int64 keys ``u * n + v``.

    The encoding is injective for ``n < 2**31.5``; generation code uses
    it to dedupe and intersect edge sets without Python-level loops.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    if np.any(lo == hi):
        raise GraphError("self-loops cannot be encoded")
    return lo * np.int64(num_nodes) + hi


def decode_edges(num_nodes: int, keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_edges`: keys back to an ``(m, 2)`` array."""
    keys = np.asarray(keys, dtype=np.int64)
    out = np.empty((keys.size, 2), dtype=np.int64)
    out[:, 0] = keys // num_nodes
    out[:, 1] = keys % num_nodes
    return out


def intersect_edge_arrays(
    num_nodes: int, edges_a: np.ndarray, edges_b: np.ndarray
) -> np.ndarray:
    """Intersection of two canonical edge arrays, returned canonical + sorted."""
    ka = np.unique(encode_edges(num_nodes, edges_a))
    kb = np.unique(encode_edges(num_nodes, edges_b))
    common = np.intersect1d(ka, kb, assume_unique=True)
    return decode_edges(num_nodes, common)
