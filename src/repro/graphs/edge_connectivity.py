"""Global edge connectivity λ(G) via max-flow.

Completes the Whitney chain ``κ(G) <= λ(G) <= δ(G)`` alongside
:mod:`repro.graphs.vertex_connectivity`.  Edge connectivity is the
right robustness measure for *link* failures (the other failure mode
the paper's abstract names: "failure of any (k-1) sensors **or
links**"), and the paper's k-connectivity results imply the same
threshold for k-edge-connectivity by Whitney's inequality.

Algorithm: fix an arbitrary root ``s``; ``λ(G) = min over t != s`` of
the s–t max-flow with unit edge capacities (every global min cut
separates ``s`` from some vertex).  Flows are truncated at the best
bound found so far, and the min-degree upper bound seeds the search.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import Graph
from repro.graphs.maxflow import FlowNetwork
from repro.graphs.traversal import is_connected

__all__ = ["edge_connectivity", "is_k_edge_connected", "local_edge_connectivity"]


def _edge_flow_network(graph: Graph) -> FlowNetwork:
    """Unit-capacity digraph: each undirected edge becomes two arcs."""
    net = FlowNetwork(graph.num_nodes)
    for u, v in graph.edges():
        net.add_arc(u, v, 1)
        net.add_arc(v, u, 1)
    return net


def local_edge_connectivity(
    graph: Graph, s: int, t: int, *, limit: Optional[int] = None
) -> int:
    """Max number of edge-disjoint s–t paths (= min s–t edge cut)."""
    if s == t:
        raise ValueError("local edge connectivity requires s != t")
    cap = graph.num_edges if limit is None else min(limit, graph.num_edges)
    if cap <= 0:
        return 0
    net = _edge_flow_network(graph)
    return net.max_flow(s, t, limit=cap)


def edge_connectivity(graph: Graph) -> int:
    """Global edge connectivity λ(G); 0 for disconnected or trivial graphs."""
    n = graph.num_nodes
    if n < 2 or not is_connected(graph):
        return 0
    best = int(graph.degrees().min())  # λ <= δ
    if best == 0:  # pragma: no cover - connected graphs have δ >= 1
        return 0
    for t in range(1, n):
        best = min(best, local_edge_connectivity(graph, 0, t, limit=best))
        if best == 0:  # pragma: no cover - connected graphs keep λ >= 1
            break
    return best


def is_k_edge_connected(graph: Graph, k: int) -> bool:
    """Decision: is ``λ(G) >= k``?  (``k <= 0`` is vacuously true.)"""
    if k <= 0:
        return True
    n = graph.num_nodes
    if n < 2:
        return False
    if int(graph.degrees().min()) < k:
        return False
    if not is_connected(graph):
        return False
    for t in range(1, n):
        if local_edge_connectivity(graph, 0, t, limit=k) < k:
            return False
    return True
