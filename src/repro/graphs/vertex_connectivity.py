"""Vertex connectivity: local κ(s,t), the κ(G) >= k decision, exact κ(G).

k-connectivity is the property Theorem 1 is about, so the decision
procedure here is *exact*, not heuristic:

* ``k = 1`` → union-find / BFS connectivity,
* ``k = 2`` → linear-time Tarjan biconnectivity,
* general ``k`` → Even-style decision built on Menger's theorem and
  Dinic max-flow over the node-split digraph, with flows truncated at
  ``k`` augmenting paths.

Correctness of the general case rests on the minimal-separator argument:
if ``κ(G) < k`` there is an inclusion-minimal separator ``S`` with
``|S| < k``; fixing any vertex ``v`` (we use one of minimum degree),
either ``v ∉ S`` — then some vertex ``u`` in another component of
``G - S`` is non-adjacent to ``v`` and ``κ(v, u) < k`` — or ``v ∈ S`` —
then ``v`` has neighbors in two different components of ``G - S``
(minimality), and that non-adjacent neighbor pair has local connectivity
``< k``.  Hence checking ``κ(v, u)`` for all ``u`` non-adjacent to ``v``
plus ``κ(u, w)`` for all non-adjacent ``u, w ∈ N(v)`` is sufficient.

Since PR 5 the decision runs on a **Nagamochi–Ibaraki sparse
certificate** by default: a scan-first forest decomposition (computed by
the active kernel backend, :mod:`repro.kernels`) reduces the edge set to
at most ``k·(n-1)`` edges while preserving the κ >= k decision exactly,
so every truncated Dinic query runs on the certificate instead of the
full graph.  ``certificate=False`` keeps the plain path (the
equivalence test corpus pins both paths bit-for-bit identical).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.graph import Graph
from repro.graphs.maxflow import FlowNetwork
from repro.graphs.traversal import is_connected

__all__ = [
    "local_node_connectivity",
    "is_k_connected",
    "is_k_connected_edges",
    "vertex_connectivity",
]


def _split_network(graph: Graph) -> FlowNetwork:
    """Build the node-split digraph: ``in(v) = v``, ``out(v) = v + n``.

    Internal arcs ``in(v) -> out(v)`` carry capacity 1; each undirected
    edge ``{u, v}`` becomes ``out(u) -> in(v)`` and ``out(v) -> in(u)``
    with capacity 1 (unit is enough because flow through any vertex is
    already capped at 1 by its internal arc).
    """
    n = graph.num_nodes
    net = FlowNetwork(2 * n)
    for v in range(n):
        net.add_arc(v, v + n, 1)
    for u, v in graph.edges():
        net.add_arc(u + n, v, 1)
        net.add_arc(v + n, u, 1)
    return net


def local_node_connectivity(
    graph: Graph, s: int, t: int, *, limit: Optional[int] = None
) -> int:
    """Return local vertex connectivity κ(s, t), optionally capped at *limit*.

    κ(s, t) is the maximum number of internally node-disjoint s–t paths
    (equivalently, by Menger, the minimum size of a vertex cut separating
    non-adjacent ``s`` and ``t``).  For adjacent pairs the direct edge
    contributes one path that no vertex cut can break, so we remove the
    edge, compute the flow, and add 1.

    When *limit* is given the computation stops once *limit* disjoint
    paths are found, returning *limit* — the decision-procedure fast path.
    """
    if s == t:
        raise GraphError("local connectivity requires s != t")
    n = graph.num_nodes
    if not (0 <= s < n and 0 <= t < n):
        raise GraphError("s or t outside graph")
    cap = n - 1 if limit is None else min(limit, n - 1)
    if cap <= 0:
        return 0

    if graph.has_edge(s, t):
        reduced = Graph(n)
        for u, v in graph.edges():
            if {u, v} != {s, t}:
                reduced.add_edge(u, v)
        return 1 + local_node_connectivity(reduced, s, t, limit=cap - 1)

    net = _split_network(graph)
    return net.max_flow(s + n, t, limit=cap)


class _ScanNetwork:
    """CSR node-split unit-capacity digraph for the pivot scan.

    The Even-style scan runs ~n truncated max-flow queries against
    *one* fixed graph, almost all of them sharing one endpoint (the
    pivot).  This class specializes for exactly that access pattern:

    * CSR arc storage (``start[u] .. start[u+1]``) instead of the
      generic :class:`FlowNetwork` linked lists — tight ``a += 1``
      inner loops, no ``next`` indirection;
    * undo-log capacity reset — unit capacities mean an augmentation
      flips a handful of arcs, so resetting replays the touched list
      instead of copying all ``2(n + 2m)`` capacities per query;
    * **ISAP with shared sink-rooted labels**: the scan fixes the
      *sink* at ``in(pivot)`` (κ is symmetric, so κ(pivot, u) is
      queried as a flow from ``out(u)`` to ``in(pivot)``) and computes
      exact distance-to-sink labels once by reverse BFS on the pristine
      residual.  Every query then augments along admissible arcs
      (``d[x] == d[y] + 1``) with local relabeling on retreat — no
      per-phase BFS at all, which is where the old Dinic scan spent
      ~90% of its time.  A relabel budget triggers a *global relabel*
      (exact reverse BFS on the current residual), so worst-case
      behavior degrades to Dinic's phase structure instead of ISAP's
      pathological label creep; exactness is unaffected (flow is
      maximal iff ``d[source]`` reaches the node count).

    Arc layout: node ``v`` (the *in*-copy) carries the internal arc
    ``in(v) -> out(v)`` first, then one residual twin per incident
    edge; node ``v + n`` (the *out*-copy) carries the reverse internal
    arc first, then one forward arc per incident edge.  ``rev[a]`` is
    the residual twin of arc ``a``.
    """

    __slots__ = ("n", "start", "to", "cap", "rev", "touched")

    def __init__(self, num_nodes: int, edge_list) -> None:
        n = self.n = num_nodes
        deg = [0] * n
        for u, v in edge_list:
            deg[u] += 1
            deg[v] += 1
        start = [0] * (2 * n + 1)
        for v in range(n):
            start[v + 1] = start[v] + 1 + deg[v]  # in(v): internal + rev arcs
        for v in range(n):
            start[n + v + 1] = start[n + v] + 1 + deg[v]  # out(v)
        total = start[2 * n]
        to = [0] * total
        cap = [0] * total
        rev = [0] * total
        fill = list(start[: 2 * n])

        def add(a: int, b: int) -> None:
            ia = fill[a]
            fill[a] = ia + 1
            ib = fill[b]
            fill[b] = ib + 1
            to[ia] = b
            cap[ia] = 1
            rev[ia] = ib
            to[ib] = a
            cap[ib] = 0
            rev[ib] = ia

        for v in range(n):
            add(v, v + n)
        for u, v in edge_list:
            add(u + n, v)
            add(v + n, u)
        self.start, self.to, self.cap, self.rev = start, to, cap, rev
        self.touched: list = []  # arcs augmented since the last reset

    def reset(self) -> None:
        """Undo every augmentation since the last reset (unit caps)."""
        cap, rev = self.cap, self.rev
        for a in self.touched:
            cap[a] += 1
            cap[rev[a]] -= 1
        del self.touched[:]

    def sink_labels(self, sink: int) -> list:
        """Exact distance-to-*sink* labels on the current residual.

        Reverse BFS: an arc ``x -> y`` with residual capacity relaxes
        ``d[x]`` from ``d[y] + 1``.  Unreachable nodes get the node
        count ``2n`` (the ISAP "done" label).  Computed once per scan
        on pristine capacities for the shared pivot sink, and by the
        global-relabel fallback on whatever residual is current.
        """
        start, to, cap, rev = self.start, self.to, self.cap, self.rev
        big = 2 * self.n
        d = [big] * big
        d[sink] = 0
        queue = [sink]
        qi = 0
        while qi < len(queue):
            y = queue[qi]
            qi += 1
            dy1 = d[y] + 1
            # Incoming residual arcs x -> y are the twins of y's arcs.
            for a in range(start[y], start[y + 1]):
                if cap[rev[a]]:
                    x = to[a]
                    if d[x] == big:
                        d[x] = dy1
                        queue.append(x)
        return d

    def at_least(self, s: int, t: int, k: int, shared_labels=None) -> bool:
        """Whether κ(s, t) >= k, as a flow ``out(s) -> in(t)``.

        Resets the residual (undo log) first.  *shared_labels* must be
        :meth:`sink_labels` of ``in(t)`` on pristine capacities; without
        it the labels are computed fresh (the neighbor-pair queries).
        """
        self.reset()
        start, to, cap, rev = self.start, self.to, self.cap, self.rev
        big = 2 * self.n
        sink = t
        source = s + self.n
        d = list(shared_labels) if shared_labels is not None else self.sink_labels(t)
        if d[source] >= big:
            return False
        cur = list(start[:big])
        touched = self.touched
        flow = 0
        relabels = 0
        budget = big  # global-relabel trigger; exactness does not depend on it
        node = source
        path: list = []
        while d[source] < big:
            if node == sink:
                for a in path:
                    cap[a] -= 1
                    cap[rev[a]] += 1
                    touched.append(a)
                flow += 1
                if flow >= k:
                    return True
                del path[:]
                node = source
                continue
            a = cur[node]
            end = start[node + 1]
            dn1 = d[node] - 1
            while a < end:
                if cap[a] and d[to[a]] == dn1:
                    break
                a += 1
            cur[node] = a
            if a < end:
                path.append(a)
                node = to[a]
            else:
                # Retreat: relabel to 1 + min residual neighbor label.
                dmin = big - 1
                for a2 in range(start[node], end):
                    if cap[a2]:
                        dv = d[to[a2]]
                        if dv < dmin:
                            dmin = dv
                d[node] = dmin + 1
                cur[node] = start[node]
                relabels += 1
                if node != source:
                    back = path.pop()
                    node = to[rev[back]]
                if relabels > budget:
                    d = self.sink_labels(sink)
                    cur = list(start[:big])
                    relabels = 0
                    del path[:]
                    node = source
        return flow >= k


def _pivot_scan_edges(num_nodes: int, edges: np.ndarray, k: int) -> bool:
    """Even-style pivot scan on an edge array (``k >= 3``, ``n > k``).

    Works straight from the canonical ``(m, 2)`` array — no ``Graph``
    construction: degrees come from one ``bincount``, adjacency queries
    from a pair-key set, and the split flow network is a
    :class:`_ScanNetwork` filled from the raw edge list.  All queried
    pairs are non-adjacent and share the pivot endpoint, so every query
    reuses the one network and the one set of sink-rooted ISAP labels
    (κ is symmetric: κ(pivot, u) runs as a flow from ``out(u)`` into
    the fixed sink ``in(pivot)``).
    """
    n = num_nodes
    eu = edges[:, 0]
    ev = edges[:, 1]
    degrees = np.bincount(eu, minlength=n) + np.bincount(ev, minlength=n)
    if int(degrees.min()) < k:
        return False
    pivot = int(degrees.argmin())

    edge_list = edges.tolist()
    net = _ScanNetwork(n, edge_list)
    pivot_labels = net.sink_labels(pivot)
    pair_set = {u * n + v for u, v in edge_list}

    neighbors = set(
        np.concatenate((ev[eu == pivot], eu[ev == pivot])).tolist()
    )
    # Scan low-degree targets first: when the decision fails, the
    # deficient pair usually involves a sparsely connected vertex, so
    # this ordering turns failures into early exits.  (Success still
    # has to scan everything — Menger gives no shortcut there.)
    non_neighbors = [u for u in range(n) if u != pivot and u not in neighbors]
    non_neighbors.sort(key=lambda u: int(degrees[u]))
    for u in non_neighbors:
        if not net.at_least(u, pivot, k, shared_labels=pivot_labels):
            return False
    for u, w in itertools.combinations(sorted(neighbors), 2):
        if u * n + w not in pair_set:
            if not net.at_least(u, w, k):
                return False
    return True


def is_k_connected_edges(
    num_nodes: int,
    edges: np.ndarray,
    k: int,
    *,
    certificate: bool = True,
    backend=None,
) -> bool:
    """Exact ``κ(G) >= k`` decision straight from an edge array.

    The kernel-layer entry point (``backend.k_connected`` delegates
    here): the study compiler's metric cascade already holds candidate
    edges as arrays, so this path never builds a full-size
    :class:`Graph`.  *certificate* applies the backend's
    Nagamochi–Ibaraki sparse certificate before any flow network is
    built; *backend* pins a kernel backend (ambient resolution
    otherwise).  Follows the standard convention that a k-connected
    graph needs at least ``k + 1`` nodes; ``k <= 0`` is vacuously true.
    """
    if k <= 0:
        return True
    if num_nodes < k + 1:
        return False
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if backend is None:
        from repro.kernels import get_backend

        backend = get_backend()
    if k == 1:
        if edges.shape[0] < num_nodes - 1:
            return False
        labels = backend.min_label_components(num_nodes, edges[:, 0], edges[:, 1])
        return bool((labels == 0).all())

    if edges.shape[0] == 0:
        return False
    degrees = np.bincount(edges[:, 0], minlength=num_nodes) + np.bincount(
        edges[:, 1], minlength=num_nodes
    )
    if int(degrees.min()) < k:
        return False

    work = edges
    if certificate:
        work = backend.sparse_certificate(num_nodes, edges, k)
    if k == 2:
        return is_biconnected(Graph.from_edge_array(num_nodes, work))
    return _pivot_scan_edges(num_nodes, work, k)


def is_k_connected(graph: Graph, k: int, *, certificate: bool = True) -> bool:
    """Exact decision: is ``κ(G) >= k``?

    Follows the standard convention that a k-connected graph needs at
    least ``k + 1`` nodes; ``k <= 0`` is vacuously true.  *certificate*
    (default on) routes ``k >= 2`` decisions through the
    Nagamochi–Ibaraki sparse-certificate pass of the active kernel
    backend; both settings are decision-identical (pinned by the
    certificate-equivalence test corpus), the certificate is just
    faster on dense inputs.
    """
    if k <= 0:
        return True
    n = graph.num_nodes
    if n < k + 1:
        return False
    if k == 1:
        return is_connected(graph)
    if k == 2:
        # Tarjan runs on the Graph directly; the certificate pass only
        # pays when it actually shrinks the edge set (rebuilding an
        # identical Graph from an unshrunk certificate is pure waste).
        if not certificate or graph.num_edges <= 2 * (n - 1):
            return is_biconnected(graph)
    return is_k_connected_edges(
        n, graph.to_edge_array(), k, certificate=certificate
    )


def vertex_connectivity(graph: Graph) -> int:
    """Exact vertex connectivity ``κ(G)``.

    Conventions match networkx: a single node or a disconnected graph has
    κ = 0; the complete graph ``K_n`` has κ = n - 1.
    """
    n = graph.num_nodes
    if n == 1:
        return 0
    if graph.num_edges == n * (n - 1) // 2:
        return n - 1  # complete graph: no non-adjacent pair exists
    if not is_connected(graph):
        return 0

    degrees = graph.degrees()
    best = int(degrees.min())
    pivot = int(degrees.argmin())

    neighbors = graph.adjacency(pivot)
    for u in range(n):
        if u != pivot and u not in neighbors:
            best = min(best, local_node_connectivity(graph, pivot, u, limit=best))
            if best == 0:  # pragma: no cover - connected graphs never hit 0
                return 0
    for u, w in itertools.combinations(sorted(neighbors), 2):
        if not graph.has_edge(u, w):
            best = min(best, local_node_connectivity(graph, u, w, limit=best))
    return best
