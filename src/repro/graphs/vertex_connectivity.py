"""Vertex connectivity: local κ(s,t), the κ(G) >= k decision, exact κ(G).

k-connectivity is the property Theorem 1 is about, so the decision
procedure here is *exact*, not heuristic:

* ``k = 1`` → union-find / BFS connectivity,
* ``k = 2`` → linear-time Tarjan biconnectivity,
* general ``k`` → Even-style decision built on Menger's theorem and
  Dinic max-flow over the node-split digraph, with flows truncated at
  ``k`` augmenting paths.

Correctness of the general case rests on the minimal-separator argument:
if ``κ(G) < k`` there is an inclusion-minimal separator ``S`` with
``|S| < k``; fixing any vertex ``v`` (we use one of minimum degree),
either ``v ∉ S`` — then some vertex ``u`` in another component of
``G - S`` is non-adjacent to ``v`` and ``κ(v, u) < k`` — or ``v ∈ S`` —
then ``v`` has neighbors in two different components of ``G - S``
(minimality), and that non-adjacent neighbor pair has local connectivity
``< k``.  Hence checking ``κ(v, u)`` for all ``u`` non-adjacent to ``v``
plus ``κ(u, w)`` for all non-adjacent ``u, w ∈ N(v)`` is sufficient.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.exceptions import GraphError
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.graph import Graph
from repro.graphs.maxflow import FlowNetwork
from repro.graphs.traversal import is_connected

__all__ = [
    "local_node_connectivity",
    "is_k_connected",
    "vertex_connectivity",
]


def _split_network(graph: Graph) -> FlowNetwork:
    """Build the node-split digraph: ``in(v) = v``, ``out(v) = v + n``.

    Internal arcs ``in(v) -> out(v)`` carry capacity 1; each undirected
    edge ``{u, v}`` becomes ``out(u) -> in(v)`` and ``out(v) -> in(u)``
    with capacity 1 (unit is enough because flow through any vertex is
    already capped at 1 by its internal arc).
    """
    n = graph.num_nodes
    net = FlowNetwork(2 * n)
    for v in range(n):
        net.add_arc(v, v + n, 1)
    for u, v in graph.edges():
        net.add_arc(u + n, v, 1)
        net.add_arc(v + n, u, 1)
    return net


def local_node_connectivity(
    graph: Graph, s: int, t: int, *, limit: Optional[int] = None
) -> int:
    """Return local vertex connectivity κ(s, t), optionally capped at *limit*.

    κ(s, t) is the maximum number of internally node-disjoint s–t paths
    (equivalently, by Menger, the minimum size of a vertex cut separating
    non-adjacent ``s`` and ``t``).  For adjacent pairs the direct edge
    contributes one path that no vertex cut can break, so we remove the
    edge, compute the flow, and add 1.

    When *limit* is given the computation stops once *limit* disjoint
    paths are found, returning *limit* — the decision-procedure fast path.
    """
    if s == t:
        raise GraphError("local connectivity requires s != t")
    n = graph.num_nodes
    if not (0 <= s < n and 0 <= t < n):
        raise GraphError("s or t outside graph")
    cap = n - 1 if limit is None else min(limit, n - 1)
    if cap <= 0:
        return 0

    if graph.has_edge(s, t):
        reduced = Graph(n)
        for u, v in graph.edges():
            if {u, v} != {s, t}:
                reduced.add_edge(u, v)
        return 1 + local_node_connectivity(reduced, s, t, limit=cap - 1)

    net = _split_network(graph)
    return net.max_flow(s + n, t, limit=cap)


def is_k_connected(graph: Graph, k: int) -> bool:
    """Exact decision: is ``κ(G) >= k``?

    Follows the standard convention that a k-connected graph needs at
    least ``k + 1`` nodes; ``k <= 0`` is vacuously true.
    """
    if k <= 0:
        return True
    n = graph.num_nodes
    if n < k + 1:
        return False
    if k == 1:
        return is_connected(graph)
    if k == 2:
        return is_biconnected(graph)

    degrees = graph.degrees()
    if int(degrees.min()) < k:
        return False
    pivot = int(degrees.argmin())

    # Every queried pair below is non-adjacent, so all queries run on
    # the same split digraph: build it once and reset capacities per
    # query (construction dominates the truncated flows otherwise).
    # The pivot-sourced queries additionally share their first Dinic
    # phase — on pristine capacities the source BFS is sink-independent.
    net = _split_network(graph)
    pristine = net.save_capacities()
    pivot_levels = net.bfs_levels(pivot + n)

    def local_at_least_k(s: int, t: int, shared=None) -> bool:
        net.restore_capacities(pristine)
        return net.max_flow(s + n, t, limit=k, first_levels=shared) >= k

    neighbors = graph.adjacency(pivot)
    # Scan low-degree targets first: when the decision fails, the
    # deficient pair usually involves a sparsely connected vertex, so
    # this ordering turns failures into early exits.  (Success still
    # has to scan everything — Menger gives no shortcut there.)
    non_neighbors = [u for u in range(n) if u != pivot and u not in neighbors]
    non_neighbors.sort(key=lambda u: int(degrees[u]))
    for u in non_neighbors:
        if not local_at_least_k(pivot, u, shared=pivot_levels):
            return False
    for u, w in itertools.combinations(sorted(neighbors), 2):
        if not graph.has_edge(u, w):
            if not local_at_least_k(u, w):
                return False
    return True


def vertex_connectivity(graph: Graph) -> int:
    """Exact vertex connectivity ``κ(G)``.

    Conventions match networkx: a single node or a disconnected graph has
    κ = 0; the complete graph ``K_n`` has κ = n - 1.
    """
    n = graph.num_nodes
    if n == 1:
        return 0
    if graph.num_edges == n * (n - 1) // 2:
        return n - 1  # complete graph: no non-adjacent pair exists
    if not is_connected(graph):
        return 0

    degrees = graph.degrees()
    best = int(degrees.min())
    pivot = int(degrees.argmin())

    neighbors = graph.adjacency(pivot)
    for u in range(n):
        if u != pivot and u not in neighbors:
            best = min(best, local_node_connectivity(graph, pivot, u, limit=best))
            if best == 0:  # pragma: no cover - connected graphs never hit 0
                return 0
    for u, w in itertools.combinations(sorted(neighbors), 2):
        if not graph.has_edge(u, w):
            best = min(best, local_node_connectivity(graph, u, w, limit=best))
    return best
