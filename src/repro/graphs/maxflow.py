"""Dinic maximum flow on small integer-capacity digraphs.

Used by :mod:`repro.graphs.vertex_connectivity` to compute local vertex
connectivity on a node-split digraph with unit capacities.  The
implementation supports an optional *flow limit*: k-connectivity
decisions only need to know whether ``maxflow >= k``, so augmentation
stops as soon as the limit is reached.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import GraphError

__all__ = ["FlowNetwork"]

_INF = 1 << 60


class FlowNetwork:
    """Residual-arc flow network with Dinic's algorithm.

    Arcs are stored in the paired representation: arc ``a`` and its
    residual twin ``a ^ 1`` sit at consecutive indices, so the reverse
    of arc ``a`` is always ``a ^ 1``.
    """

    __slots__ = ("_n", "_head", "_to", "_cap", "_next")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise GraphError(f"num_nodes must be >= 1, got {num_nodes}")
        self._n = num_nodes
        self._head: List[int] = [-1] * num_nodes  # per-node arc-list head
        self._to: List[int] = []
        self._cap: List[int] = []
        self._next: List[int] = []

    @property
    def num_nodes(self) -> int:
        return self._n

    def add_arc(self, u: int, v: int, capacity: int) -> int:
        """Add directed arc ``u -> v``; return the arc index.

        The residual reverse arc (capacity 0) is created automatically.
        """
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"arc ({u}, {v}) outside [0, {self._n})")
        if capacity < 0:
            raise GraphError(f"capacity must be >= 0, got {capacity}")
        idx = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._next.append(self._head[u])
        self._head[u] = idx
        self._to.append(u)
        self._cap.append(0)
        self._next.append(self._head[v])
        self._head[v] = idx + 1
        return idx

    def _bfs_levels(self, source: int, sink: int) -> Optional[List[int]]:
        levels = [-1] * self._n
        levels[source] = 0
        queue = [source]
        qi = 0
        to, cap, nxt, head = self._to, self._cap, self._next, self._head
        sink_level = -1
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            lu = levels[u]
            # Nodes at or beyond the sink's level cannot lie on a
            # shortest augmenting path; stop expanding there.
            if sink_level != -1 and lu + 1 >= sink_level:
                break
            a = head[u]
            while a != -1:
                v = to[a]
                if cap[a] > 0 and levels[v] == -1:
                    levels[v] = lu + 1
                    if v == sink:
                        sink_level = levels[v]
                    else:
                        queue.append(v)
                a = nxt[a]
        return levels if sink_level != -1 else None

    def _blocking_flow(
        self, source: int, sink: int, levels: List[int], limit: int
    ) -> int:
        """Send up to *limit* units of blocking flow along level arcs.

        Iterative DFS; ``iters[u]`` is the next arc to try from ``u``
        (the standard "current arc" optimization).
        """
        to, cap, nxt = self._to, self._cap, self._next
        iters = list(self._head)
        total = 0
        path: List[int] = []  # arc indices from source to current node
        u = source
        while True:
            if u == sink:
                bottleneck = limit - total
                for a in path:
                    if cap[a] < bottleneck:
                        bottleneck = cap[a]
                for a in path:
                    cap[a] -= bottleneck
                    cap[a ^ 1] += bottleneck
                total += bottleneck
                if total >= limit:
                    return total
                # Restart from the first saturated arc on the path.
                cut = 0
                while cut < len(path) and cap[path[cut]] > 0:
                    cut += 1
                del path[cut:]
                u = source if not path else to[path[-1]]
                continue
            # Advance along an admissible arc, if any.
            a = iters[u]
            while a != -1 and not (cap[a] > 0 and levels[to[a]] == levels[u] + 1):
                a = nxt[a]
            iters[u] = a
            if a != -1:
                path.append(a)
                u = to[a]
            else:
                # Dead end: prune u from the level graph and back up.
                levels[u] = -1
                if not path:
                    return total
                back = path.pop()
                u = to[back ^ 1]

    def max_flow(self, source: int, sink: int, limit: int = _INF) -> int:
        """Compute the max flow from *source* to *sink*, stopping at *limit*.

        Mutates residual capacities; build a fresh network per query.
        (Repeated truncated queries against one fixed graph — the
        k-connectivity pivot scan — run on the specialized ISAP scanner
        in :mod:`repro.graphs.vertex_connectivity` instead.)
        """
        if not (0 <= source < self._n and 0 <= sink < self._n):
            raise GraphError("source/sink outside network")
        if source == sink:
            raise GraphError("source and sink must differ")
        if limit <= 0:
            return 0
        flow = 0
        while flow < limit:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                break
            pushed = self._blocking_flow(source, sink, levels, limit - flow)
            if pushed == 0:
                break
            flow += pushed
        return flow
