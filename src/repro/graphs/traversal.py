"""Breadth/depth-first traversal, components, and shortest paths."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "bfs_order",
    "connected_components",
    "is_connected",
    "shortest_path",
    "eccentricity",
]


def bfs_order(graph: Graph, source: int) -> List[int]:
    """Return nodes reachable from *source* in BFS visitation order."""
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} outside graph")
    seen = [False] * graph.num_nodes
    seen[source] = True
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.adjacency(u):
            if not seen[v]:
                seen[v] = True
                order.append(v)
                queue.append(v)
    return order


def connected_components(graph: Graph) -> List[List[int]]:
    """Return components as node lists, largest first (ties by smallest node)."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in range(graph.num_nodes):
        if seen[start]:
            continue
        seen[start] = True
        comp = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.adjacency(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(comp)
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether the graph has a single connected component."""
    if graph.num_nodes == 1:
        return True
    return len(bfs_order(graph, 0)) == graph.num_nodes


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """Return a shortest source→target node path, or ``None`` if disconnected.

    BFS predecessor reconstruction; the path includes both endpoints.
    Used by the WSN routing layer to exhibit an actual secure
    communication path between two sensors.
    """
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} outside graph")
    if not 0 <= target < graph.num_nodes:
        raise GraphError(f"target {target} outside graph")
    if source == target:
        return [source]
    prev: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.adjacency(u):
            if v not in prev:
                prev[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def eccentricity(graph: Graph, source: int) -> int:
    """Return the max BFS distance from *source* to any reachable node."""
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} outside graph")
    dist = {source: 0}
    queue = deque([source])
    far = 0
    while queue:
        u = queue.popleft()
        for v in graph.adjacency(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                far = max(far, dist[v])
                queue.append(v)
    return far
