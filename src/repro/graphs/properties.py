"""Scalar and distributional graph properties used by the experiments.

The min-degree law (Lemma 8) and degree-distribution law (Lemma 9) need
fast access to degree statistics; these helpers work both on
:class:`~repro.graphs.graph.Graph` objects and directly on numpy edge
arrays (the Monte Carlo fast path).
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "degrees_from_edges",
    "min_degree",
    "min_degree_edges",
    "isolated_node_count",
    "degree_histogram",
    "degree_histogram_edges",
    "nodes_with_degree",
    "average_clustering",
]


def degrees_from_edges(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    """Degree vector from an ``(m, 2)`` edge array, without building a Graph."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = np.asarray(edges, dtype=np.int64)
    degs = np.zeros(num_nodes, dtype=np.int64)
    if edges.size == 0:
        return degs
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    np.add.at(degs, edges[:, 0], 1)
    np.add.at(degs, edges[:, 1], 1)
    return degs


def min_degree(graph: Graph) -> int:
    """Minimum degree ``δ(G)``."""
    return int(graph.degrees().min())


def min_degree_edges(num_nodes: int, edges: np.ndarray) -> int:
    """Minimum degree computed straight from an edge array."""
    return int(degrees_from_edges(num_nodes, edges).min())


def isolated_node_count(num_nodes: int, edges: np.ndarray) -> int:
    """Number of degree-0 nodes (the k=1 obstruction in the limit law)."""
    return int((degrees_from_edges(num_nodes, edges) == 0).sum())


def degree_histogram(graph: Graph) -> np.ndarray:
    """Histogram ``h[d] = #nodes of degree d`` (length ``max degree + 1``)."""
    degs = graph.degrees()
    return np.bincount(degs, minlength=int(degs.max()) + 1 if degs.size else 1)


def degree_histogram_edges(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    """Degree histogram straight from an edge array."""
    degs = degrees_from_edges(num_nodes, edges)
    return np.bincount(degs, minlength=int(degs.max()) + 1)


def nodes_with_degree(num_nodes: int, edges: np.ndarray, h: int) -> int:
    """Number of nodes of exactly degree *h* — the Lemma 9 statistic."""
    h = check_nonnegative_int(h, "h")
    degs = degrees_from_edges(num_nodes, edges)
    return int((degs == h).sum())


def average_clustering(graph: Graph) -> float:
    """Average local clustering coefficient.

    Nodes of degree < 2 contribute 0 (the networkx convention), so the
    statistic is defined on every graph.  Random intersection graphs are
    known to cluster much more strongly than Erdős–Rényi graphs at equal
    edge density (Bloznelis 2013) — an effect showcased by one of the
    examples.
    """
    n = graph.num_nodes
    if n == 0:  # pragma: no cover - Graph enforces n >= 1
        return 0.0
    edges = graph.to_edge_array()
    if edges.size == 0:
        return 0.0
    degs = degrees_from_edges(n, edges)
    # CSR adjacency with sorted neighbor lists, built in one lexsort.
    heads = np.concatenate([edges[:, 0], edges[:, 1]])
    tails = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((tails, heads))
    neighbors = tails[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degs, out=indptr[1:])
    # Common-neighbor count per edge via sorted-array intersection.
    # Summed over the edges incident to u this counts each triangle at u
    # twice, so c(u) = S[u] / (d(d-1)) without a separate halving.
    common = np.empty(edges.shape[0], dtype=np.int64)
    for e in range(edges.shape[0]):
        u, v = edges[e, 0], edges[e, 1]
        common[e] = np.intersect1d(
            neighbors[indptr[u] : indptr[u + 1]],
            neighbors[indptr[v] : indptr[v + 1]],
            assume_unique=True,
        ).size
    coeff_sum = np.zeros(n, dtype=np.float64)
    np.add.at(coeff_sum, edges[:, 0], common)
    np.add.at(coeff_sum, edges[:, 1], common)
    mask = degs >= 2
    if not mask.any():
        return 0.0
    local = coeff_sum[mask] / (degs[mask] * (degs[mask] - 1.0))
    return float(local.sum() / n)
