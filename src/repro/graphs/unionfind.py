"""Disjoint-set union (union-find) and edge-array connectivity.

Figure 1's 180k+ Monte Carlo trials each reduce to one question — "is
this edge list connected on n nodes?" — so this module is the single
hottest code path in the repository.  It therefore works directly on
numpy edge arrays without constructing a :class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import GraphError
from repro.kernels import get_backend
from repro.utils.validation import check_positive_int

__all__ = [
    "UnionFind",
    "is_connected_edges",
    "count_components_edges",
    "connected_components_labels",
    "is_connected_pair_keys",
    "count_components_pair_keys",
]

# Below this edge count the per-edge Python union-find loop beats the
# vectorized kernel's fixed numpy overhead; above it the kernel wins.
_VECTOR_THRESHOLD = 192


class UnionFind:
    """Union-find with path halving and union by size."""

    __slots__ = ("_parent", "_size", "num_components")

    def __init__(self, num_items: int) -> None:
        num_items = check_positive_int(num_items, "num_items")
        self._parent = list(range(num_items))
        self._size = [1] * num_items
        self.num_components = num_items

    def find(self, x: int) -> int:
        """Return the representative of *x* (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; return ``True`` if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_sizes(self) -> List[int]:
        """Sizes of all components, descending."""
        sizes = [self._size[i] for i in range(len(self._parent)) if self.find(i) == i]
        return sorted(sizes, reverse=True)


def _validate_edges(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.min() < 0 or edges.max() >= num_nodes:
        raise GraphError("edge endpoints outside [0, num_nodes)")
    return edges


def _min_label_components(
    num_nodes: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Min-label component kernel, dispatched to the active backend.

    ``labels[i]`` is the smallest node id in *i*'s component.  The
    pure-numpy pointer-jumping implementation lives in
    :func:`repro.kernels.reference.min_label_components`; accelerated
    backends (numba) register alternatives in :mod:`repro.kernels`.
    """
    return get_backend().min_label_components(num_nodes, u, v)


def connected_components_labels(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    """Component label per node (smallest member id) from an edge array."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = _validate_edges(num_nodes, edges)
    if edges.size == 0:
        return np.arange(num_nodes, dtype=np.int64)
    return _min_label_components(num_nodes, edges[:, 0], edges[:, 1])


def is_connected_pair_keys(num_nodes: int, pair_keys: np.ndarray) -> bool:
    """Connectivity decision straight from int64 pair keys ``u * n + v``.

    The Monte Carlo sweep hot path: avoids decoding keys into an
    ``(m, 2)`` edge array (and a fortiori any Graph construction) before
    deciding connectivity.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    pair_keys = np.asarray(pair_keys, dtype=np.int64)
    if num_nodes == 1:
        return True
    if pair_keys.size < num_nodes - 1:
        return False
    labels = _min_label_components(
        num_nodes, pair_keys // num_nodes, pair_keys % num_nodes
    )
    # Node 0's label can only ever be 0, so connectivity means all-zero.
    return bool((labels == 0).all())


def count_components_pair_keys(num_nodes: int, pair_keys: np.ndarray) -> int:
    """Number of components straight from int64 pair keys ``u * n + v``."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    pair_keys = np.asarray(pair_keys, dtype=np.int64)
    if pair_keys.size == 0:
        return num_nodes
    labels = _min_label_components(
        num_nodes, pair_keys // num_nodes, pair_keys % num_nodes
    )
    return int(np.unique(labels).size)


def is_connected_edges(num_nodes: int, edges: np.ndarray) -> bool:
    """Return whether the edge list spans one connected component.

    A single node with no edges counts as connected; ``num_nodes >= 2``
    with an empty edge list does not.  Small edge lists run the
    early-exiting Python union-find; larger ones the vectorized
    min-label kernel.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = _validate_edges(num_nodes, edges)
    if num_nodes == 1:
        return True
    if edges.shape[0] < num_nodes - 1:
        return False
    if edges.shape[0] >= _VECTOR_THRESHOLD:
        labels = _min_label_components(num_nodes, edges[:, 0], edges[:, 1])
        return bool((labels == 0).all())
    uf = UnionFind(num_nodes)
    remaining = num_nodes - 1
    for u, v in edges:
        if uf.union(int(u), int(v)):
            remaining -= 1
            if remaining == 0:
                return True
    return False


def count_components_edges(num_nodes: int, edges: np.ndarray) -> int:
    """Return the number of connected components of the edge list."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = _validate_edges(num_nodes, edges)
    if edges.shape[0] >= _VECTOR_THRESHOLD:
        labels = _min_label_components(num_nodes, edges[:, 0], edges[:, 1])
        return int(np.unique(labels).size)
    uf = UnionFind(num_nodes)
    for u, v in edges:
        uf.union(int(u), int(v))
    return uf.num_components
