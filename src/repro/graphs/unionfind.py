"""Disjoint-set union (union-find) and edge-array connectivity.

Figure 1's 180k+ Monte Carlo trials each reduce to one question — "is
this edge list connected on n nodes?" — so this module is the single
hottest code path in the repository.  It therefore works directly on
numpy edge arrays without constructing a :class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import GraphError
from repro.utils.validation import check_positive_int

__all__ = ["UnionFind", "is_connected_edges", "count_components_edges"]


class UnionFind:
    """Union-find with path halving and union by size."""

    __slots__ = ("_parent", "_size", "num_components")

    def __init__(self, num_items: int) -> None:
        num_items = check_positive_int(num_items, "num_items")
        self._parent = list(range(num_items))
        self._size = [1] * num_items
        self.num_components = num_items

    def find(self, x: int) -> int:
        """Return the representative of *x* (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; return ``True`` if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_sizes(self) -> List[int]:
        """Sizes of all components, descending."""
        sizes = [self._size[i] for i in range(len(self._parent)) if self.find(i) == i]
        return sorted(sizes, reverse=True)


def _validate_edges(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.min() < 0 or edges.max() >= num_nodes:
        raise GraphError("edge endpoints outside [0, num_nodes)")
    return edges


def is_connected_edges(num_nodes: int, edges: np.ndarray) -> bool:
    """Return whether the edge list spans one connected component.

    A single node with no edges counts as connected; ``num_nodes >= 2``
    with an empty edge list does not.  Early-exits as soon as the
    component count reaches one.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = _validate_edges(num_nodes, edges)
    if num_nodes == 1:
        return True
    if edges.shape[0] < num_nodes - 1:
        return False
    uf = UnionFind(num_nodes)
    remaining = num_nodes - 1
    for u, v in edges:
        if uf.union(int(u), int(v)):
            remaining -= 1
            if remaining == 0:
                return True
    return False


def count_components_edges(num_nodes: int, edges: np.ndarray) -> int:
    """Return the number of connected components of the edge list."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edges = _validate_edges(num_nodes, edges)
    uf = UnionFind(num_nodes)
    for u, v in edges:
        uf.union(int(u), int(v))
    return uf.num_components
