"""Minimal immutable-ish undirected graph container.

The simulation hot paths operate on raw numpy edge arrays, but the
algorithmic layer (connectivity, flows, routing) wants adjacency sets.
:class:`Graph` bridges the two: it is built from an edge array or edge
iterable, stores adjacency sets plus the canonical edge list, and offers
cheap conversions back to numpy.  Nodes are always ``0 .. n-1`` — sensor
identity mapping is the WSN layer's concern, not the graph substrate's.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.utils.validation import check_positive_int

__all__ = ["Graph"]

EdgeLike = Iterable[Tuple[int, int]]


class Graph:
    """Simple undirected graph on nodes ``0 .. n-1`` without self-loops.

    Duplicate edges collapse; ``(i, j)`` and ``(j, i)`` are the same
    edge.  The class is append-only (``add_edge``) — algorithms in this
    package never mutate their input graphs.
    """

    __slots__ = ("_n", "_adj", "_num_edges")

    def __init__(self, num_nodes: int, edges: EdgeLike = ()) -> None:
        self._n = check_positive_int(num_nodes, "num_nodes")
        self._adj: List[Set[int]] = [set() for _ in range(self._n)]
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(int(u), int(v))

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edge_array(cls, num_nodes: int, edge_array: np.ndarray) -> "Graph":
        """Build from an ``(m, 2)`` integer array (as produced by generators)."""
        edge_array = np.asarray(edge_array)
        if edge_array.size == 0:
            return cls(num_nodes)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError(
                f"edge_array must have shape (m, 2), got {edge_array.shape}"
            )
        return cls(num_nodes, (map(int, row) for row in edge_array))

    @classmethod
    def complete(cls, num_nodes: int) -> "Graph":
        """Complete graph ``K_n`` (useful in tests: κ(K_n) = n - 1)."""
        g = cls(num_nodes)
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                g.add_edge(u, v)
        return g

    @classmethod
    def cycle(cls, num_nodes: int) -> "Graph":
        """Cycle graph ``C_n`` (κ = 2 for n >= 3)."""
        if num_nodes < 3:
            raise GraphError("cycle requires at least 3 nodes")
        return cls(num_nodes, [(i, (i + 1) % num_nodes) for i in range(num_nodes)])

    @classmethod
    def path(cls, num_nodes: int) -> "Graph":
        """Path graph ``P_n`` (κ = 1 for n >= 2)."""
        return cls(num_nodes, [(i, i + 1) for i in range(num_nodes - 1)])

    # -- mutation ---------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; self-loops are rejected, duplicates ignored."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    # -- queries ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def neighbors(self, u: int) -> FrozenSet[int]:
        """Neighbor set of *u* (frozen: callers must not mutate adjacency)."""
        self._check_node(u)
        return frozenset(self._adj[u])

    def adjacency(self, u: int) -> Set[int]:
        """Internal adjacency set of *u* — read-only by convention.

        Exposed (underscore-free) because the flow/traversal algorithms
        in this package iterate neighbor sets in tight loops and the
        ``frozenset`` copy of :meth:`neighbors` would dominate runtime.
        """
        self._check_node(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._adj[u])

    def degrees(self) -> np.ndarray:
        """Degree of every node as an ``int64`` vector."""
        return np.array([len(a) for a in self._adj], dtype=np.int64)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate canonical edges ``(u, v)`` with ``u < v``, sorted."""
        for u in range(self._n):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> Set[Tuple[int, int]]:
        """Canonical edge set as Python set of ``(u, v)``, ``u < v``."""
        return set(self.edges())

    def to_edge_array(self) -> np.ndarray:
        """Canonical ``(m, 2)`` int64 edge array (sorted, ``u < v``)."""
        if self._num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(list(self.edges()), dtype=np.int64)

    def subgraph_without_node(self, removed: int) -> "Graph":
        """Copy of the graph with *removed*'s edges deleted (node kept).

        Keeping the node (as isolated) preserves node indexing, which is
        what the k-connectivity helpers need when probing ``G - v``.
        """
        self._check_node(removed)
        g = Graph(self._n)
        for u in range(self._n):
            if u == removed:
                continue
            for v in self._adj[u]:
                if v != removed and u < v:
                    g.add_edge(u, v)
        return g

    # -- dunder -------------------------------------------------------------

    def __contains__(self, edge: Sequence[int]) -> bool:
        u, v = edge
        return self.has_edge(int(u), int(v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self._n}, num_edges={self._num_edges})"

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise GraphError(f"node {u} outside [0, {self._n})")
