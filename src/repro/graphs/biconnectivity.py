"""Articulation points and biconnectivity (Tarjan, iterative).

``k = 2`` connectivity checks run inside Monte Carlo loops, so the
classical recursive Hopcroft–Tarjan DFS is implemented iteratively to
avoid Python's recursion limit at ``n = 1000+`` and to keep constant
factors low.
"""

from __future__ import annotations

from typing import Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

__all__ = ["articulation_points", "is_biconnected"]


def articulation_points(graph: Graph) -> Set[int]:
    """Return the set of articulation (cut) vertices of the graph.

    Works per connected component; an articulation point of any
    component is reported.  Runs in ``O(n + m)``.
    """
    n = graph.num_nodes
    disc = [-1] * n  # discovery times; -1 = unvisited
    low = [0] * n
    parent = [-1] * n
    child_count = [0] * n
    result: Set[int] = set()
    timer = 0

    for root in range(n):
        if disc[root] != -1:
            continue
        # Iterative DFS with explicit neighbor iterators.
        stack = [(root, iter(graph.adjacency(root)))]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            u, it = stack[-1]
            advanced = False
            for v in it:
                if disc[v] == -1:
                    parent[v] = u
                    child_count[u] += 1
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append((v, iter(graph.adjacency(v))))
                    advanced = True
                    break
                if v != parent[u]:
                    low[u] = min(low[u], disc[v])
            if not advanced:
                stack.pop()
                p = parent[u]
                if p != -1:
                    low[p] = min(low[p], low[u])
                    if p != root and low[u] >= disc[p]:
                        result.add(p)
        if child_count[root] >= 2:
            result.add(root)
    return result


def is_biconnected(graph: Graph) -> bool:
    """Return whether the graph is 2-connected (``κ(G) >= 2``).

    Follows the standard convention requiring ``n >= 3``: ``K_2`` is
    1-connected only.  Equivalent to "connected and no articulation
    points" for ``n >= 3``.
    """
    if graph.num_nodes < 3:
        return False
    if not is_connected(graph):
        return False
    return not articulation_points(graph)
