"""Random graph generators: Erdős–Rényi ``G(n, p)``.

Two exact sampling backends are provided:

* ``dense`` — Bernoulli-samples every one of the ``N = n(n-1)/2``
  potential edges via chunked vectorized draws.  Cost ``O(N)``, memory
  bounded by the chunk size.  Best for the simulation scales of the
  paper (``n`` up to a few thousand).
* ``sparse`` — draws the edge count ``m ~ Binomial(N, p)`` and then a
  uniform ``m``-subset of the linear pair indices with Floyd's
  algorithm.  Cost ``O(m)``; exact because conditioned on its size the
  Bernoulli edge set is a uniform subset.

Both backends return a canonical ``(m, 2)`` int64 edge array with
``u < v`` in every row, sorted lexicographically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator, sample_distinct_integers
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "erdos_renyi_edges",
    "erdos_renyi_graph",
    "pair_index_to_edge",
    "edge_to_pair_index",
]

_CHUNK = 1 << 22  # 4M Bernoulli draws per chunk: ~32 MB of float64
_SPARSE_THRESHOLD = 1 << 25  # switch to O(m) sampling past ~33M pairs


def pair_index_to_edge(num_nodes: int, indices: np.ndarray) -> np.ndarray:
    """Decode linear pair indices to edges ``(i, j)`` with ``i < j``.

    The linear order enumerates pairs as ``(0,1), (0,2), ..., (0,n-1),
    (1,2), ...``; index ``t`` of pair ``(i, j)`` is
    ``offset(i) + j - i - 1`` with ``offset(i) = i(n-1) - i(i-1)/2``.
    The inverse uses the quadratic formula plus an exact integer fix-up
    to be safe against floating-point rounding.
    """
    n = num_nodes
    t = np.asarray(indices, dtype=np.int64)
    total = n * (n - 1) // 2
    if t.size and (t.min() < 0 or t.max() >= total):
        raise ParameterError("pair index outside [0, n(n-1)/2)")
    tw = 2 * n - 1
    disc = np.maximum(tw * tw - 8.0 * t.astype(np.float64), 0.0)
    i = ((tw - np.sqrt(disc)) / 2.0).astype(np.int64)
    i = np.clip(i, 0, n - 2)

    def offset(row: np.ndarray) -> np.ndarray:
        return row * (n - 1) - row * (row - 1) // 2

    # Fix-up: float rounding can land one row off in either direction.
    for _ in range(3):
        too_high = offset(i) > t
        if not too_high.any():
            break
        i = i - too_high.astype(np.int64)
    for _ in range(3):
        too_low = (i + 1 <= n - 2) & (offset(i + 1) <= t)
        if not too_low.any():
            break
        i = i + too_low.astype(np.int64)

    j = t - offset(i) + i + 1
    return np.stack([i, j], axis=1)


def edge_to_pair_index(num_nodes: int, edges: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pair_index_to_edge` (canonical ``u < v`` rows)."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    i = np.minimum(edges[:, 0], edges[:, 1])
    j = np.maximum(edges[:, 0], edges[:, 1])
    return i * (num_nodes - 1) - i * (i - 1) // 2 + j - i - 1


def _sample_dense(
    num_nodes: int, prob: float, rng: np.random.Generator
) -> np.ndarray:
    total = num_nodes * (num_nodes - 1) // 2
    hits = []
    start = 0
    while start < total:
        stop = min(start + _CHUNK, total)
        mask = rng.random(stop - start) < prob
        idx = np.nonzero(mask)[0]
        if idx.size:
            hits.append(idx + start)
        start = stop
    if not hits:
        return np.empty((0, 2), dtype=np.int64)
    return pair_index_to_edge(num_nodes, np.concatenate(hits))


def _sample_sparse(
    num_nodes: int, prob: float, rng: np.random.Generator
) -> np.ndarray:
    total = num_nodes * (num_nodes - 1) // 2
    m = int(rng.binomial(total, prob))
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    if m > total:  # pragma: no cover - binomial cannot exceed total
        m = total
    # Batched distinct-index draws (exact uniform m-subset of [0, total)),
    # replacing the per-element Floyd set loop.
    idx = sample_distinct_integers(total, m, rng)
    return pair_index_to_edge(num_nodes, idx)


def erdos_renyi_edges(
    num_nodes: int,
    prob: float,
    seed: RandomState = None,
    *,
    method: str = "auto",
) -> np.ndarray:
    """Sample the edge array of ``G(n, p)``.

    Parameters
    ----------
    num_nodes, prob:
        Graph size and independent edge probability.
    seed:
        Anything accepted by :func:`repro.utils.rng.as_generator`.
    method:
        ``"dense"``, ``"sparse"``, or ``"auto"`` (sparse for very large,
        very sparse graphs; dense otherwise).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    prob = check_probability(prob, "prob")
    rng = as_generator(seed)
    if prob == 0.0 or num_nodes == 1:
        return np.empty((0, 2), dtype=np.int64)
    total = num_nodes * (num_nodes - 1) // 2
    if prob == 1.0:
        return pair_index_to_edge(num_nodes, np.arange(total, dtype=np.int64))

    if method == "auto":
        expected = total * prob
        method = (
            "sparse"
            if total > _SPARSE_THRESHOLD and expected < total / 64
            else "dense"
        )
    if method == "dense":
        return _sample_dense(num_nodes, prob, rng)
    if method == "sparse":
        return _sample_sparse(num_nodes, prob, rng)
    raise ParameterError(f"unknown method {method!r}; use dense/sparse/auto")


def erdos_renyi_graph(
    num_nodes: int,
    prob: float,
    seed: RandomState = None,
    *,
    method: str = "auto",
) -> Graph:
    """Sample ``G(n, p)`` as a :class:`~repro.graphs.graph.Graph`."""
    edges = erdos_renyi_edges(num_nodes, prob, seed, method=method)
    return Graph.from_edge_array(num_nodes, edges)


def expected_edge_count(num_nodes: int, prob: float) -> float:
    """Expected number of edges ``p n (n-1) / 2`` (used by tests/benches)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    prob = check_probability(prob, "prob")
    return prob * num_nodes * (num_nodes - 1) / 2.0


def critical_probability(num_nodes: int, k: int = 1) -> float:
    """ER k-connectivity threshold ``(ln n + (k-1) ln ln n)/n`` (Lemma 7)."""
    from repro.probability.limits import critical_edge_probability

    return critical_edge_probability(num_nodes, k)
