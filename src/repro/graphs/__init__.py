"""Graph substrate: containers, algorithms, and random generators."""

from repro.graphs.biconnectivity import articulation_points, is_biconnected
from repro.graphs.edge_connectivity import (
    edge_connectivity,
    is_k_edge_connected,
    local_edge_connectivity,
)
from repro.graphs.generators import (
    edge_to_pair_index,
    erdos_renyi_edges,
    erdos_renyi_graph,
    expected_edge_count,
    pair_index_to_edge,
)
from repro.graphs.graph import Graph
from repro.graphs.operators import (
    decode_edges,
    encode_edges,
    intersect_edge_arrays,
    intersection,
    is_spanning_subgraph,
    union,
)
from repro.graphs.properties import (
    average_clustering,
    degree_histogram,
    degree_histogram_edges,
    degrees_from_edges,
    isolated_node_count,
    min_degree,
    min_degree_edges,
    nodes_with_degree,
)
from repro.graphs.traversal import (
    bfs_order,
    connected_components,
    eccentricity,
    is_connected,
    shortest_path,
)
from repro.graphs.unionfind import (
    UnionFind,
    connected_components_labels,
    count_components_edges,
    count_components_pair_keys,
    is_connected_edges,
    is_connected_pair_keys,
)
from repro.graphs.vertex_connectivity import (
    is_k_connected,
    local_node_connectivity,
    vertex_connectivity,
)
from repro.graphs.maxflow import FlowNetwork

__all__ = [
    "articulation_points",
    "is_biconnected",
    "edge_connectivity",
    "is_k_edge_connected",
    "local_edge_connectivity",
    "edge_to_pair_index",
    "erdos_renyi_edges",
    "erdos_renyi_graph",
    "expected_edge_count",
    "pair_index_to_edge",
    "Graph",
    "decode_edges",
    "encode_edges",
    "intersect_edge_arrays",
    "intersection",
    "is_spanning_subgraph",
    "union",
    "average_clustering",
    "degree_histogram",
    "degree_histogram_edges",
    "degrees_from_edges",
    "isolated_node_count",
    "min_degree",
    "min_degree_edges",
    "nodes_with_degree",
    "bfs_order",
    "connected_components",
    "eccentricity",
    "is_connected",
    "shortest_path",
    "UnionFind",
    "connected_components_labels",
    "count_components_edges",
    "count_components_pair_keys",
    "is_connected_edges",
    "is_connected_pair_keys",
    "is_k_connected",
    "local_node_connectivity",
    "vertex_connectivity",
    "FlowNetwork",
]
