"""The long-running study service: a file-spool async job queue.

``repro serve --spool DIR`` watches ``DIR/jobs/`` for study JSONs,
claims each atomically (rename into ``DIR/active/`` — safe against a
second server on the same spool), and executes up to
``max_concurrent`` jobs in worker threads.  Every job runs through the
cached execution path (:func:`repro.service.cache.run_cached`) when
the server has a cache, so repeated and overlapping submissions are
answered as hits/extensions, and through the PR 6 scheduler for
per-unit supervision.  Concurrent jobs share the warm process pool:
:mod:`repro.simulation.pool` hands each run the same executor under a
lease, so two jobs interleave work units instead of spawning rival
pools.

The spool is also the API.  For each job the server writes

* ``DIR/status/<job>.json`` — lifecycle state (``queued`` → ``running``
  → ``done``/``failed``), timestamps, and the cache disposition;
* ``DIR/events/<job>.jsonl`` — the job's progress events, one JSON per
  line, streamed as they happen (unit completed, cell converged, cache
  hit/miss, fault quarantined — see :mod:`repro.service.events`);
* ``DIR/results/<job>.json`` — the full ``StudyResult`` on success.

``repro submit`` drops a job file and (with ``--wait``) tails the
status + event files; ``repro status`` renders them.  File-based
transport keeps the service dependency-free and transparently
debuggable; swapping the spool for a socket changes none of the job
semantics.

Job files are either a bare study JSON (scenario object / list /
``{"scenarios": [...]}``) or a wrapper ``{"study": ..., "options":
{"target_ci": ..., "max_trials": ..., "block_trials": ...}}`` for
adaptive runs.  Events emitted while a job runs are tagged with its
``job_id`` via :func:`repro.service.events.event_context`, so one
process-wide bus serves any number of concurrent jobs.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Union

from repro.exceptions import ParameterError
from repro.service import events
from repro.service.cache import ResultCache, run_cached
from repro.service.shards import ShardTransport
from repro.simulation.scheduler import SchedulerPolicy
from repro.study.compiler import Study

__all__ = ["JOB_FORMAT", "StudyService"]

JOB_FORMAT = "repro-job/v1"

_SPOOL_DIRS = ("jobs", "active", "status", "events", "results")


def _now() -> float:
    return time.time()


class StudyService:
    """Watches a spool directory and executes submitted studies."""

    def __init__(
        self,
        spool: Union[str, pathlib.Path],
        *,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        max_concurrent: int = 2,
        scheduler: Optional[SchedulerPolicy] = None,
        transport: Optional[ShardTransport] = None,
        poll_interval: float = 0.2,
    ) -> None:
        if not isinstance(max_concurrent, int) or max_concurrent < 1:
            raise ParameterError(
                f"max_concurrent must be a positive int, got {max_concurrent!r}"
            )
        self.spool = pathlib.Path(spool)
        for sub in _SPOOL_DIRS:
            (self.spool / sub).mkdir(parents=True, exist_ok=True)
        self.cache = cache
        self.workers = workers
        self.max_concurrent = max_concurrent
        # Jobs always run supervised: the scheduler is what quarantines
        # faulty units instead of failing the job, and its per-unit
        # accounting is what feeds the ``unit_completed`` event stream.
        # Supervised runs are bit-identical to plain ones when every
        # unit completes, so defaulting costs nothing but bookkeeping.
        self.scheduler = scheduler if scheduler is not None else SchedulerPolicy()
        self.transport = transport
        self.poll_interval = poll_interval
        self._status_lock = threading.Lock()

    # -- spool paths ---------------------------------------------------

    def _path(self, kind: str, job_id: str, suffix: str = ".json") -> pathlib.Path:
        return self.spool / kind / f"{job_id}{suffix}"

    # -- status/event plumbing -----------------------------------------

    def _write_status(self, job_id: str, status: Dict[str, object]) -> None:
        path = self._path("status", job_id)
        tmp = path.with_name(path.name + ".tmp")
        with self._status_lock:
            tmp.write_text(json.dumps(status, sort_keys=True))
            tmp.replace(path)

    def read_status(self, job_id: str) -> Optional[Dict[str, object]]:
        try:
            data = json.loads(self._path("status", job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def _event_sink(self, job_id: str):
        path = self._path("events", job_id, suffix=".jsonl")

        def sink(event: events.Event) -> None:
            if event.fields.get("job_id") != job_id:
                return
            with open(path, "a") as stream:
                stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

        return sink

    # -- job execution -------------------------------------------------

    def _parse_job(self, data: object) -> tuple:
        """``(study, options)`` from a job file's payload."""
        options: Dict[str, object] = {}
        if isinstance(data, dict) and data.get("format") == JOB_FORMAT:
            raw_options = data.get("options", {})
            if not isinstance(raw_options, dict):
                raise ParameterError(
                    f"job options must be a mapping, got {type(raw_options).__name__}"
                )
            options = raw_options
            data = data.get("study")
        return Study.from_dict(data), options  # type: ignore[arg-type]

    def _execute(self, study: Study, options: Dict[str, object]):
        target_ci = options.get("target_ci")
        if target_ci is not None:
            from repro.study.adaptive import AdaptivePolicy, run_adaptive_study

            policy = AdaptivePolicy(
                ci_target=float(target_ci),  # type: ignore[arg-type]
                max_trials=int(options.get("max_trials", 4000)),  # type: ignore[arg-type]
                block_trials=options.get("block_trials"),  # type: ignore[arg-type]
            )
            return run_adaptive_study(
                study, policy, workers=self.workers, scheduler=self.scheduler
            )
        if self.cache is not None:
            return run_cached(
                study,
                self.cache,
                workers=self.workers,
                scheduler=self.scheduler,
                transport=self.transport,
            )
        if self.transport is not None:
            from repro.service.shards import run_sharded

            return run_sharded(
                study,
                self.transport,
                workers=self.workers,
                scheduler=self.scheduler,
            )
        return study.run(workers=self.workers, scheduler=self.scheduler)

    def _run_job(self, job_id: str, path: pathlib.Path) -> None:
        status: Dict[str, object] = {
            "job_id": job_id,
            "state": "running",
            "started": _now(),
        }
        self._write_status(job_id, status)
        sink = self._event_sink(job_id)
        events.subscribe(sink)
        try:
            with events.event_context(job_id=job_id):
                events.emit("job_started")
                study, options = self._parse_job(json.loads(path.read_text()))
                result = self._execute(study, options)
                result_path = self._path("results", job_id)
                result.save(result_path)
                status.update(
                    state="done",
                    finished=_now(),
                    result=str(result_path),
                    scenarios=result.names(),
                    units=result.provenance.get("units"),
                    cache=result.provenance.get("cache"),
                )
                faults = result.provenance.get("faults")
                if isinstance(faults, dict):
                    status["faults"] = {
                        "completed": faults.get("completed"),
                        "units": faults.get("units"),
                        "dead_units": len(faults.get("dead_units", ())),  # type: ignore[arg-type]
                    }
                events.emit(
                    "job_completed",
                    scenarios=result.names(),
                    units=result.provenance.get("units"),
                )
        except Exception as exc:
            status.update(
                state="failed",
                finished=_now(),
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(limit=8),
            )
            with events.event_context(job_id=job_id):
                events.emit("job_failed", error=status["error"])
        finally:
            events.unsubscribe(sink)
            self._write_status(job_id, status)
            path.unlink(missing_ok=True)

    # -- the serve loop ------------------------------------------------

    def _claim_jobs(self) -> List[tuple]:
        """Atomically move pending job files into ``active/``."""
        claimed = []
        pending = sorted((self.spool / "jobs").glob("*.json"))
        for path in pending:
            job_id = path.stem
            target = self._path("active", job_id)
            try:
                path.rename(target)
            except OSError:
                continue  # another server claimed it first
            self._write_status(
                job_id, {"job_id": job_id, "state": "queued", "submitted": _now()}
            )
            events.emit("job_queued", job_id=job_id)
            claimed.append((job_id, target))
        return claimed

    def serve_forever(
        self,
        *,
        max_jobs: Optional[int] = None,
        idle_timeout: Optional[float] = None,
    ) -> int:
        """Run the service loop; returns the number of jobs executed.

        *max_jobs* stops after that many jobs complete; *idle_timeout*
        stops after that many seconds with no pending or running work.
        Both exist so CI and tests can run a bounded server; a real
        deployment passes neither and stops on SIGINT.
        """
        executed = 0
        idle_since = _now()
        with ThreadPoolExecutor(max_workers=self.max_concurrent) as pool:
            futures = {}
            try:
                while True:
                    if max_jobs is None or executed + len(futures) < max_jobs:
                        for job_id, path in self._claim_jobs():
                            futures[pool.submit(self._run_job, job_id, path)] = job_id
                    done = [f for f in futures if f.done()]
                    for future in done:
                        futures.pop(future)
                        future.result()  # _run_job never raises; assert that
                        executed += 1
                    if futures:
                        idle_since = _now()
                    else:
                        if max_jobs is not None and executed >= max_jobs:
                            break
                        if (
                            idle_timeout is not None
                            and _now() - idle_since > idle_timeout
                        ):
                            break
                    time.sleep(self.poll_interval)
            except KeyboardInterrupt:
                pass
        return executed
