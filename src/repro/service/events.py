"""Structured progress events for the study execution service.

A tiny process-local pub/sub bus: producers deep in the stack — the
fault-tolerant scheduler (unit completed, fault quarantined), the
adaptive driver (cell converged, round finished), the shard transport
(shard dispatched/folded), the result cache (hit/miss/extension), and
the job queue (job lifecycle) — call :func:`emit`; consumers such as
``repro serve`` (which journals each job's events to a JSONL stream
read back by ``repro submit --wait`` / ``repro status``) register a
sink with :func:`subscribe`.

Design constraints, in order:

* **Zero cost when nobody listens.**  ``emit`` with no sinks is one
  attribute read and a falsy check; the engine's hot paths pay nothing
  for the service layer existing.
* **No repro imports.**  Producers live below the service layer
  (``simulation/scheduler.py``, ``study/adaptive.py``) and import this
  module lazily; importing it must never re-enter the package graph.
* **Context tagging, not plumbed arguments.**  The job queue runs
  concurrent jobs in threads sharing one bus; :func:`event_context`
  tags every event emitted within its scope (a ``contextvars``
  context) with e.g. ``job_id``, so sinks can demultiplex without any
  producer knowing jobs exist.

Events are plain data (:class:`Event`): a kind string, a wall-clock
timestamp, and a flat field mapping — JSON-serializable by
construction so they stream through files and sockets unmodified.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import threading
import time
from typing import Callable, Dict, Iterator, List, Tuple

__all__ = [
    "Event",
    "emit",
    "subscribe",
    "unsubscribe",
    "capture_events",
    "event_context",
]


@dataclasses.dataclass(frozen=True)
class Event:
    """One progress event: what happened, when, and its details."""

    kind: str
    time: float
    fields: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "time": self.time}
        out.update(self.fields)
        return out


_lock = threading.Lock()
_sinks: Tuple[Callable[[Event], None], ...] = ()

_context: contextvars.ContextVar[Tuple[Tuple[str, object], ...]] = (
    contextvars.ContextVar("repro_event_context", default=())
)


def subscribe(sink: Callable[[Event], None]) -> Callable[[Event], None]:
    """Register *sink* to receive every subsequent event; returns it."""
    global _sinks
    with _lock:
        _sinks = _sinks + (sink,)
    return sink


def unsubscribe(sink: Callable[[Event], None]) -> None:
    """Remove *sink*; unknown sinks are ignored (idempotent teardown)."""
    global _sinks
    with _lock:
        _sinks = tuple(s for s in _sinks if s is not sink)


def emit(kind: str, **fields: object) -> None:
    """Publish an event to every sink, tagged with the active context.

    Sink exceptions are swallowed: a broken progress consumer must
    never fail the computation it is observing.
    """
    sinks = _sinks  # snapshot: emit never holds the lock
    if not sinks:
        return
    extra = _context.get()
    if extra:
        merged = dict(extra)
        merged.update(fields)
        fields = merged
    event = Event(
        kind=kind,
        time=time.time(),  # repro: noqa[R002] -- progress-event timestamps are observability metadata, never folded into results
        fields=fields,
    )
    for sink in sinks:
        try:
            sink(event)
        except Exception:
            pass


@contextlib.contextmanager
def event_context(**extra: object) -> Iterator[None]:
    """Tag every event emitted in this scope (and thread) with *extra*."""
    merged = dict(_context.get())
    merged.update(extra)
    token = _context.set(tuple(merged.items()))
    try:
        yield
    finally:
        _context.reset(token)


@contextlib.contextmanager
def capture_events(kinds: Tuple[str, ...] = ()) -> Iterator[List[Event]]:
    """Collect events emitted in this scope into the yielded list.

    With *kinds* given, only those event kinds are kept.  The primary
    test/introspection helper; production consumers use long-lived
    :func:`subscribe` sinks.
    """
    captured: List[Event] = []

    def sink(event: Event) -> None:
        if not kinds or event.kind in kinds:
            captured.append(event)

    subscribe(sink)
    try:
        yield captured
    finally:
        unsubscribe(sink)
