"""Content-addressed result cache with trial-window overlap resolution.

The cache key is :meth:`Scenario.content_hash` — sha256 over the
scenario's canonical JSON normal form *minus* ``trials``.  Excluding
the trial count is the whole point: trials is the one axis results may
legally differ on while describing the same experiment, so a stored
60-trial result *is* the answer to a 40-trial query (truncate — trial
slots are addressed by absolute index) and *most* of the answer to a
100-trial query (extend — run only ``[60, 100)`` and merge).  Every
other field difference (seed, curves, grid, metrics, channel) changes
the hash and misses.

Dispositions of :func:`run_cached`, per study:

* ``hit`` — every scenario's stored window covers its request; zero
  work units execute.
* ``extension`` — stored windows cover a proper prefix;
  :meth:`Study.run_extension` (optionally sharded over a transport)
  computes only the missing ``[covered, requested)`` delta, merged and
  stored back.
* ``miss`` — no usable stored prefix; full run, stored.
* ``bypass`` — the study is uncacheable (protocol scenarios, mixed
  per-scenario trial counts); it runs plainly, nothing is stored.

Only complete (NaN-free) results are stored: a partial result (dead
units, adaptive raggedness) is not a valid prefix to extend, because a
one-shot run at the larger count would have evaluated the skipped
cells.  Fault reports ride along with stored results and are folded —
deduplicated by :func:`~repro.simulation.scheduler.combine_fault_reports`
— into the final provenance of any run that executes new work, so a
cached-then-extended study reports each historical fault exactly once.
A pure *hit* executes nothing: its ``provenance["faults"]`` never
resurrects stored reports (the run itself was fault-free); the folded
history stays inspectable under ``provenance["cache"]["stored_faults"]``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.simulation.scheduler import SchedulerPolicy, combine_fault_reports
from repro.service import events
from repro.service.shards import ShardTransport, run_sharded
from repro.study.compiler import Study
from repro.study.result import ScenarioResult, StudyResult
from repro.study.scenario import Scenario

__all__ = ["CACHE_FORMAT", "CacheEntry", "ResultCache", "run_cached"]

CACHE_FORMAT = "repro-cache/v1"


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One stored scenario result and the faults it survived."""

    result: ScenarioResult
    faults: Optional[Dict[str, object]]

    @property
    def trials(self) -> int:
        return self.result.num_trials


class ResultCache:
    """File-backed store mapping scenario content hash → result JSON.

    Layout: ``root/<hash[:2]>/<hash>.json`` (fan-out keeps directories
    small at scale).  Writes go through a same-directory temp file +
    ``rename`` so concurrent readers never observe a torn entry.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, scenario: Scenario) -> Optional[CacheEntry]:
        """The stored entry for *scenario*'s family, or ``None``.

        Unreadable or mismatched entries (hand-edited, interrupted
        writes from pre-atomic-write versions, hash collisions) are
        treated as misses, never as errors — the cache must only ever
        make runs cheaper.
        """
        key = scenario.content_hash()
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or data.get("format") != CACHE_FORMAT:
            return None
        if data.get("scenario_hash") != key:
            return None
        try:
            result = ScenarioResult.from_dict(data["result"])  # type: ignore[arg-type]
        except Exception:
            return None
        if result.scenario.content_hash() != key or result.trial_offset != 0:
            return None
        faults = data.get("faults")
        return CacheEntry(
            result=result,
            faults=faults if isinstance(faults, dict) else None,
        )

    def store(
        self,
        result: ScenarioResult,
        faults: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Store *result* if it improves on what is held; report whether.

        Skipped (returns ``False``) when the result is partial
        (NaN-bearing — not a valid extension prefix), is itself a
        window shard (nonzero offset), or does not extend the stored
        trial coverage.
        """
        if result.trial_offset != 0:
            return False
        if np.isnan(result.values).any():
            return False
        key = result.scenario.content_hash()
        existing = self.lookup(result.scenario)
        if existing is not None and existing.trials >= result.num_trials:
            return False
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {
            "format": CACHE_FORMAT,
            "scenario_hash": key,
            "result": result.to_dict(),
        }
        if faults is not None:
            payload["faults"] = faults
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        return True


def _fault_report(provenance: Mapping[str, object]) -> Optional[Dict[str, object]]:
    """The run's structured fault report, typed; ``None`` when absent."""
    faults = provenance.get("faults")
    return faults if isinstance(faults, dict) else None


def _unit_count(provenance: Mapping[str, object]) -> int:
    """The run's executed-unit count, typed; 0 when absent/malformed."""
    units = provenance.get("units", 0)
    return int(units) if isinstance(units, int) else 0


def _plain_run(
    study: Study,
    transport: Optional[ShardTransport],
    axis: str,
    shards: Optional[int],
    workers: Optional[int],
    scheduler: Optional[SchedulerPolicy],
    window: Optional[Tuple[int, int]] = None,
) -> StudyResult:
    """Full or delta execution, routed through the transport if given."""
    if transport is not None:
        return run_sharded(
            study,
            transport,
            axis=axis,
            shards=shards,
            workers=workers,
            scheduler=scheduler,
            window=window,
        )
    if window is not None:
        return study.run_extension(
            window[0], window[1], workers=workers, scheduler=scheduler
        )
    return study.run(workers=workers, scheduler=scheduler)


def run_cached(
    study: Study,
    cache: ResultCache,
    *,
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
    transport: Optional[ShardTransport] = None,
    axis: str = "trial",
    shards: Optional[int] = None,
) -> StudyResult:
    """Answer *study* from *cache*, computing only what is missing.

    Bit-identity contract: whatever the disposition, the returned
    per-scenario values equal a cold one-shot run of *study* exactly —
    truncation slices absolute-indexed trial slots, extension reruns
    the identical seeded windows, and merge concatenates them in order.
    Provenance gains a ``"cache"`` entry recording the disposition,
    per-scenario content hashes, covered/requested trials, the delta
    window, and the executed-unit count.
    """
    if not isinstance(cache, ResultCache):
        raise ParameterError(
            f"cache must be a ResultCache, got {type(cache).__name__}"
        )
    hashes = {sc.name: sc.content_hash() for sc in study.scenarios}
    requested_counts = {sc.trials for sc in study.scenarios}
    cacheable = (
        all(sc.kind == "sweep" for sc in study.scenarios)
        and len(requested_counts) == 1
    )
    if not cacheable:
        # Protocol scenarios have no extension path, and mixed trial
        # counts have no single family window to resolve overlap on.
        result = _plain_run(study, transport, axis, shards, workers, scheduler)
        events.emit("cache_bypass", scenarios=sorted(hashes))
        provenance = dict(result.provenance)
        provenance["cache"] = {
            "disposition": "bypass",
            "scenario_hashes": hashes,
            "executed_units": _unit_count(provenance),
        }
        return StudyResult(results=result.results, provenance=provenance)

    requested = requested_counts.pop()
    entries = {sc.name: cache.lookup(sc) for sc in study.scenarios}
    covered = min(
        (entry.trials if entry is not None else 0 for entry in entries.values()),
        default=0,
    )
    # Fault history rides the cache entries; ``run_faults`` is what the
    # work executed by THIS call reported.  The two are folded together
    # for the store-back (each historical fault stored exactly once),
    # but only runs that executed new work surface the fold as their
    # own ``provenance["faults"]`` — a pure hit executed nothing, so
    # resurrecting stored crash reports there would claim faults that
    # never happened in this invocation.
    stored_faults: List[Optional[Dict[str, object]]] = []
    run_faults: Optional[Dict[str, object]] = None

    if covered >= requested:
        disposition = "hit"
        results = {}
        for sc in study.scenarios:
            entry = entries[sc.name]
            assert entry is not None
            results[sc.name] = entry.result.truncated(requested)
            stored_faults.append(entry.faults)
        executed_units = 0
        delta_window = None
        base_provenance: Dict[str, object] = {
            "engine": "study/v1",
            "kernel_backends": [],
            "units": 0,
            "deployments": 0,
        }
        events.emit(
            "cache_hit",
            scenarios=sorted(hashes),
            covered_trials=covered,
            requested_trials=requested,
        )
    elif covered > 0:
        disposition = "extension"
        delta_window = (covered, requested)
        events.emit(
            "cache_extension",
            scenarios=sorted(hashes),
            covered_trials=covered,
            requested_trials=requested,
            delta_window=list(delta_window),
        )
        delta = _plain_run(
            study, transport, axis, shards, workers, scheduler, window=delta_window
        )
        results = {}
        for sc in study.scenarios:
            entry = entries[sc.name]
            assert entry is not None
            base = entry.result.truncated(covered)
            results[sc.name] = base.merge(delta[sc.name])
            stored_faults.append(entry.faults)
        run_faults = _fault_report(delta.provenance)
        executed_units = _unit_count(delta.provenance)
        base_provenance = dict(delta.provenance)
    else:
        disposition = "miss"
        delta_window = None
        events.emit(
            "cache_miss",
            scenarios=sorted(hashes),
            requested_trials=requested,
        )
        full = _plain_run(study, transport, axis, shards, workers, scheduler)
        results = {sc.name: full[sc.name] for sc in study.scenarios}
        run_faults = _fault_report(full.provenance)
        executed_units = _unit_count(full.provenance)
        base_provenance = dict(full.provenance)

    combined_faults = combine_fault_reports([*stored_faults, run_faults])
    for sc in study.scenarios:
        cache.store(results[sc.name], faults=combined_faults)

    provenance = dict(base_provenance)
    provenance.pop("trial_window", None)  # the merged result is full-window
    provenance["units"] = executed_units
    if transport is not None:
        provenance.setdefault("transport", transport.name)
    cache_info: Dict[str, object] = {
        "disposition": disposition,
        "store": str(cache.root),
        "scenario_hashes": hashes,
        "covered_trials": covered,
        "requested_trials": requested,
        "delta_window": list(delta_window) if delta_window else None,
        "executed_units": executed_units,
    }
    if disposition == "hit":
        # Zero work units ran: the answer's fault history stays visible
        # under the cache record, but provenance["faults"] — what THIS
        # run's execution reported — must not resurrect it.
        if combined_faults is not None:
            cache_info["stored_faults"] = combined_faults
    elif combined_faults is not None:
        # New work merged with (possibly faulted) stored results: fold
        # history + this run's report, each historical fault exactly
        # once (see combine_fault_reports dedup).
        provenance["faults"] = combined_faults
    elif "faults" in provenance:
        del provenance["faults"]
    provenance["cache"] = cache_info
    return StudyResult(
        results=tuple(results[sc.name] for sc in study.scenarios),
        provenance=provenance,
    )
