"""Sharded study execution service.

The serving layer over the merge substrate (PR 4) and the
fault-tolerant per-unit scheduler (PR 6):

* :mod:`repro.service.shards` — self-describing shard JSONs and the
  pluggable transports (in-process, subprocess worker) that execute
  them, folded back bit-identically with overlay/merge;
* :mod:`repro.service.cache` — the content-addressed result cache and
  its overlap resolution (cache hit + ``run_extension`` delta);
* :mod:`repro.service.queue` — the long-running study service behind
  ``repro serve`` / ``repro submit`` / ``repro status``;
* :mod:`repro.service.events` — the structured progress-event bus.

Submodules load lazily (PEP 562): lower layers (the scheduler, the
adaptive driver) import :mod:`repro.service.events` at emit time, and
this package must not drag the full study stack back in when that
happens mid-import.
"""

from __future__ import annotations

import importlib

_SUBMODULES = ("cache", "events", "queue", "shards")

__all__ = list(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBMODULES))
