"""Self-describing shard JSONs and the transports that execute them.

A *shard* is one serializable slice of a compiled study: the full
study declaration (so any worker anywhere can recompile the identical
plan), the per-scenario content hashes (integrity — a worker refuses a
shard whose study does not hash to what the coordinator promised), the
deployment family it targets, an absolute trial window, and optionally
a subset of the family's size axis.  Executing a shard is
:meth:`~repro.study.compiler.Study.run_extension` over that window
with an active-map restriction, under the PR 6 per-unit supervisor
when a scheduler policy is in force — so every shard internally gets
retries, timeouts, speculation, and checksummed results for free.

Sharding axes
-------------
``axis="trial"`` splits each family's trial range into contiguous
windows (the classic throughput axis); ``axis="size"`` splits a
growth sweep's size grid, every shard covering the full window of its
size indices (the natural axis when single-``n`` columns are the
expensive unit).  Trial-axis shards fold with
:meth:`~repro.study.result.ScenarioResult.merge` in trial order;
size-axis shards share one window and fold with
:meth:`~repro.study.result.ScenarioResult.overlay` (NaN-disjoint cell
fill).  Both folds are bit-identical to the one-shot run: deployments
are seeded by absolute ``(size_index, ring_index, trial)`` addresses,
so where the work ran never changes what it computed.

Transports
----------
:class:`InProcessTransport` executes shards in the calling process —
the zero-dependency default and the reference the others are held to.
:class:`SubprocessTransport` invokes ``repro worker SHARD.json`` in a
fresh interpreter per shard — the "remote" stand-in proving shards
fully round-trip through JSON and process boundaries; a socket/ssh
transport is a drop-in (implement :meth:`ShardTransport.run`).
Results carry per-scenario payload checksums (PR 6's
:func:`~repro.simulation.scheduler.payload_checksum`) recomputed and
verified at the coordinator before folding.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError, TransportError
from repro.simulation.scheduler import (
    SchedulerPolicy,
    combine_fault_reports,
    payload_checksum,
)
from repro.service import events
from repro.study.compiler import ActiveMap, Study
from repro.study.result import ScenarioResult, StudyResult

__all__ = [
    "SHARD_FORMAT",
    "SHARD_RESULT_FORMAT",
    "make_shards",
    "execute_shard",
    "fold_shard_results",
    "run_sharded",
    "ShardTransport",
    "InProcessTransport",
    "SubprocessTransport",
    "get_transport",
]

SHARD_FORMAT = "repro-shard/v1"
SHARD_RESULT_FORMAT = "repro-shard-result/v1"


def _scenario_hashes(study: Study) -> Dict[str, str]:
    return {sc.name: sc.content_hash() for sc in study.scenarios}


def make_shards(
    study: Study,
    *,
    axis: str = "trial",
    shards: Optional[int] = None,
    window: Optional[Tuple[int, int]] = None,
) -> List[Dict[str, object]]:
    """Slice *study* into self-describing shard dicts.

    Every shard targets one deployment family (trial windows are
    per-family quantities, so a shard mixing families could not carry
    one well-defined window).  *shards* caps the split count per
    family; *window* restricts all shards to the absolute trial range
    ``[start, stop)`` instead of each family's full ``[0, trials)`` —
    the cache uses this to shard delta (extension) work.
    """
    for scenario in study.scenarios:
        if scenario.kind == "protocol":
            raise ParameterError(
                f"sharded execution supports sweep scenarios only; "
                f"{scenario.name!r} is a protocol scenario"
            )
    if axis not in ("trial", "size"):
        raise ParameterError(f"shard axis must be 'trial' or 'size', got {axis!r}")
    if shards is not None and (not isinstance(shards, int) or shards < 1):
        raise ParameterError(f"shards must be a positive int, got {shards!r}")
    plans = study.compile()
    study_dict = study.to_dict()
    hashes = _scenario_hashes(study)
    out: List[Dict[str, object]] = []

    def shard(gi: int, trial_window: Tuple[int, int], sizes=None) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "format": SHARD_FORMAT,
            "study": study_dict,
            "scenario_hashes": hashes,
            "group": gi,
            "trial_window": [int(trial_window[0]), int(trial_window[1])],
        }
        if sizes is not None:
            entry["sizes"] = [int(si) for si in sizes]
        return entry

    for gi, plan in enumerate(plans):
        start, stop = (0, plan.trials) if window is None else window
        if not 0 <= start < stop:
            raise ParameterError(
                f"invalid shard trial window [{start}, {stop})"
            )
        if axis == "size":
            count = plan.num_sizes if shards is None else min(shards, plan.num_sizes)
            for chunk in np.array_split(np.arange(plan.num_sizes), count):
                if chunk.size:
                    out.append(shard(gi, (start, stop), sizes=chunk.tolist()))
        else:
            span = stop - start
            count = min(span, 4 if shards is None else shards)
            edges = np.linspace(start, stop, count + 1).astype(int)
            for a, b in zip(edges[:-1], edges[1:]):
                if b > a:
                    out.append(shard(gi, (int(a), int(b))))
    return out


def _validate_shard(shard: Dict[str, object]) -> None:
    if not isinstance(shard, dict) or shard.get("format") != SHARD_FORMAT:
        raise TransportError(
            f"not a {SHARD_FORMAT} shard: format="
            f"{shard.get('format') if isinstance(shard, dict) else type(shard).__name__!r}"
        )
    for field in ("study", "scenario_hashes", "group", "trial_window"):
        if field not in shard:
            raise TransportError(f"shard is missing required field {field!r}")


def execute_shard(
    shard: Dict[str, object],
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
) -> Dict[str, object]:
    """Execute one shard dict and return its result payload.

    The single execution path shared by every transport: the in-process
    transport calls it directly, ``repro worker`` calls it in a child
    interpreter.  The embedded study is recompiled locally and verified
    against the coordinator's content hashes before any work runs.
    """
    _validate_shard(shard)
    study = Study.from_dict(shard["study"])  # type: ignore[arg-type]
    promised = shard["scenario_hashes"]
    local = _scenario_hashes(study)
    if promised != local:
        stale = sorted(
            name
            for name in set(promised) | set(local)  # type: ignore[arg-type]
            if promised.get(name) != local.get(name)  # type: ignore[union-attr]
        )
        from repro.exceptions import ShardMismatchError

        raise ShardMismatchError(
            f"shard scenario hashes do not match its embedded study for "
            f"{stale}; the shard was edited or mixed up in transport"
        )
    plans = study.compile()
    gi = shard["group"]
    if not isinstance(gi, int) or not 0 <= gi < len(plans):
        raise TransportError(
            f"shard group index {gi!r} out of range for {len(plans)} plan(s)"
        )
    plan = plans[gi]
    sizes = shard.get("sizes")
    size_indices = range(plan.num_sizes) if sizes is None else sizes
    active: ActiveMap = {}
    for si in size_indices:  # type: ignore[assignment]
        if not isinstance(si, int) or not 0 <= si < plan.num_sizes:
            raise TransportError(
                f"shard size index {si!r} out of range for "
                f"{plan.num_sizes} size(s)"
            )
        for ri in range(plan.num_rings):
            active[(gi, si, ri)] = tuple(
                tuple(range(len(sc.curves_at(si)))) for sc in plan.scenarios
            )
    start, stop = shard["trial_window"]  # type: ignore[misc]
    sub = study.run_extension(
        int(start), int(stop), active=active, workers=workers, scheduler=scheduler
    )
    members = {sc.name for sc in plan.scenarios}
    results = {}
    checksums = {}
    for scenario in study.scenarios:
        if scenario.name not in members:
            continue  # other families' tensors are all-NaN here
        res = sub[scenario.name]
        results[scenario.name] = res.to_dict()
        checksums[scenario.name] = payload_checksum(res.values)
    payload: Dict[str, object] = {
        "format": SHARD_RESULT_FORMAT,
        "group": gi,
        "trial_window": [int(start), int(stop)],
        "results": results,
        "checksums": checksums,
        "units": int(sub.provenance.get("units", 0)),  # type: ignore[arg-type]
        "deployments": int(sub.provenance.get("deployments", 0)),  # type: ignore[arg-type]
    }
    faults = sub.provenance.get("faults")
    if faults is not None:
        payload["faults"] = faults
    return payload


def fold_shard_results(
    study: Study,
    payloads: Sequence[Dict[str, object]],
    *,
    window: Optional[Tuple[int, int]] = None,
) -> Tuple[Dict[str, ScenarioResult], Dict[str, object]]:
    """Verify and fold shard result payloads back into one result set.

    Per scenario: payload checksums are recomputed and verified, shards
    of one window :meth:`~repro.study.result.ScenarioResult.overlay`
    (size-axis), then windows :meth:`~repro.study.result.ScenarioResult.merge`
    in trial order (trial-axis).  The folded result must exactly cover
    the expected window — missing shards are an error, not silent NaN.
    Returns ``(results_by_name, aggregate)`` where *aggregate* carries
    summed units/deployments and the combined fault report.
    """
    per_scenario: Dict[str, List[ScenarioResult]] = {}
    units = 0
    deployments = 0
    fault_dicts: List[Optional[Dict[str, object]]] = []
    for payload in payloads:
        if not isinstance(payload, dict) or payload.get("format") != SHARD_RESULT_FORMAT:
            raise TransportError(
                f"not a {SHARD_RESULT_FORMAT} payload: "
                f"format={payload.get('format') if isinstance(payload, dict) else type(payload).__name__!r}"
            )
        units += int(payload.get("units", 0))  # type: ignore[arg-type]
        deployments += int(payload.get("deployments", 0))  # type: ignore[arg-type]
        fault_dicts.append(payload.get("faults"))  # type: ignore[arg-type]
        checksums = payload.get("checksums", {})
        for name, raw in payload["results"].items():  # type: ignore[union-attr]
            res = ScenarioResult.from_dict(raw)
            expected = checksums.get(name)  # type: ignore[union-attr]
            if expected is not None and payload_checksum(res.values) != expected:
                raise TransportError(
                    f"shard result for scenario {name!r} failed its payload "
                    f"checksum; the values were corrupted in transport"
                )
            per_scenario.setdefault(name, []).append(res)
    results: Dict[str, ScenarioResult] = {}
    for scenario in study.scenarios:
        shards = per_scenario.get(scenario.name)
        if not shards:
            raise TransportError(
                f"no shard produced results for scenario {scenario.name!r}"
            )
        # Bucket by window, overlay within, merge across in trial order.
        buckets: Dict[Tuple[int, int], ScenarioResult] = {}
        for res in shards:
            key = res.trial_range
            buckets[key] = buckets[key].overlay(res) if key in buckets else res
        folded: Optional[ScenarioResult] = None
        for _, res in sorted(buckets.items()):
            folded = res if folded is None else folded.merge(res)
        assert folded is not None
        start, stop = (0, scenario.trials) if window is None else window
        if folded.trial_range != (start, stop):
            raise TransportError(
                f"folded shards cover trial window {folded.trial_range} of "
                f"scenario {scenario.name!r}, expected [{start}, {stop})"
            )
        results[scenario.name] = folded
    aggregate: Dict[str, object] = {
        "units": units,
        "deployments": deployments,
    }
    combined = combine_fault_reports(fault_dicts)
    if combined is not None:
        aggregate["faults"] = combined
    return results, aggregate


# -- transports --------------------------------------------------------


class ShardTransport:
    """Executes shard dicts somewhere; subclass per medium."""

    name = "base"

    def run(self, shard: Dict[str, object]) -> Dict[str, object]:
        raise NotImplementedError

    def run_many(
        self, shards: Sequence[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Execute shards, results in submission order."""
        return [self.run(shard) for shard in shards]


class InProcessTransport(ShardTransport):
    """Execute shards in the calling process — the reference transport."""

    name = "inprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        scheduler: Optional[SchedulerPolicy] = None,
    ) -> None:
        self.workers = workers
        self.scheduler = scheduler

    def run(self, shard: Dict[str, object]) -> Dict[str, object]:
        return execute_shard(shard, workers=self.workers, scheduler=self.scheduler)


class SubprocessTransport(ShardTransport):
    """Execute each shard as ``repro worker SHARD.json`` in a child python.

    The "remote worker" stand-in: the shard crosses a process boundary
    as JSON on disk, the worker recompiles the study from scratch, and
    the result comes back the same way — everything a socket transport
    would do minus the socket.  Scheduler policy is not forwarded as an
    argument; workers inherit the environment, so ``REPRO_CHAOS`` /
    ``REPRO_PERSISTENT_POOL`` / ``REPRO_KERNEL_BACKEND`` apply inside
    them exactly as they would locally.
    """

    name = "subprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        max_inflight: int = 2,
        timeout: Optional[float] = None,
        python: Optional[str] = None,
    ) -> None:
        if not isinstance(max_inflight, int) or max_inflight < 1:
            raise ParameterError(
                f"max_inflight must be a positive int, got {max_inflight!r}"
            )
        self.workers = workers
        self.max_inflight = max_inflight
        self.timeout = timeout
        self.python = python or sys.executable

    def _env(self) -> Dict[str, str]:
        # The child must import repro even when the parent runs from a
        # source checkout: prepend this package's parent directory.
        env = dict(os.environ)
        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join((src, existing))
        return env

    def run(self, shard: Dict[str, object]) -> Dict[str, object]:
        _validate_shard(shard)
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            shard_path = pathlib.Path(tmp) / "shard.json"
            out_path = pathlib.Path(tmp) / "result.json"
            shard_path.write_text(json.dumps(shard))
            cmd = [
                self.python,
                "-m",
                "repro",
                "worker",
                str(shard_path),
                "--output",
                str(out_path),
            ]
            if self.workers is not None:
                cmd.extend(["--workers", str(self.workers)])
            try:
                proc = subprocess.run(
                    cmd,
                    env=self._env(),
                    capture_output=True,
                    text=True,
                    timeout=self.timeout,
                )
            except subprocess.TimeoutExpired as exc:
                raise TransportError(
                    f"shard worker timed out after {self.timeout}s: {exc}"
                )
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-8:]
                raise TransportError(
                    f"shard worker exited with code {proc.returncode}: "
                    + " | ".join(tail)
                )
            try:
                return json.loads(out_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise TransportError(
                    f"shard worker produced no readable result payload: {exc}"
                )

    def run_many(
        self, shards: Sequence[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        if len(shards) <= 1 or self.max_inflight == 1:
            return [self.run(shard) for shard in shards]
        with ThreadPoolExecutor(
            max_workers=min(self.max_inflight, len(shards))
        ) as pool:
            return list(pool.map(self.run, shards))


_TRANSPORTS = ("inprocess", "subprocess")


def get_transport(
    name: str,
    *,
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
    max_inflight: int = 2,
    timeout: Optional[float] = None,
) -> ShardTransport:
    """Build a transport by name (the CLI's ``--transport`` values)."""
    if name == "inprocess":
        return InProcessTransport(workers=workers, scheduler=scheduler)
    if name == "subprocess":
        if scheduler is not None:
            raise ParameterError(
                "the subprocess transport cannot forward a scheduler policy "
                "object; set REPRO_CHAOS (workers inherit the environment) "
                "or use the inprocess transport"
            )
        return SubprocessTransport(
            workers=workers, max_inflight=max_inflight, timeout=timeout
        )
    raise ParameterError(
        f"unknown transport {name!r}; available: {', '.join(_TRANSPORTS)}"
    )


def run_sharded(
    study: Study,
    transport: Optional[ShardTransport] = None,
    *,
    axis: str = "trial",
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
    window: Optional[Tuple[int, int]] = None,
) -> StudyResult:
    """Run *study* as shards over *transport*, folded bit-identically.

    The sharded sibling of :meth:`Study.run` (sweep scenarios only):
    slice per *axis*, execute every shard via *transport* (default
    in-process), verify checksums, fold in trial order.  With *window*
    the result is an extension shard covering ``[start, stop)`` like
    :meth:`Study.run_extension` — the cache's delta path.  Provenance
    records the transport, shard axis/count, per-scenario content
    hashes, executed units, and the combined fault report.
    """
    if transport is None:
        transport = InProcessTransport(workers=workers, scheduler=scheduler)
    shard_dicts = make_shards(study, axis=axis, shards=shards, window=window)
    for index, shard in enumerate(shard_dicts):
        events.emit(
            "shard_dispatched",
            shard=index,
            shards=len(shard_dicts),
            group=shard["group"],
            trial_window=shard["trial_window"],
            sizes=shard.get("sizes"),
            transport=transport.name,
        )
    payloads = transport.run_many(shard_dicts)
    results, aggregate = fold_shard_results(study, payloads, window=window)
    events.emit(
        "shard_folded",
        shards=len(shard_dicts),
        units=aggregate["units"],
        transport=transport.name,
    )
    plans = study.compile()
    provenance: Dict[str, object] = {
        "engine": "study/v1",
        "transport": transport.name,
        "shard_axis": axis,
        "shards": len(shard_dicts),
        "kernel_backends": sorted({p.kernel_backend for p in plans}),
        "scenario_hashes": _scenario_hashes(study),
        "units": aggregate["units"],
        "deployments": aggregate["deployments"],
    }
    if window is not None:
        provenance["trial_window"] = [int(window[0]), int(window[1])]
    if "faults" in aggregate:
        provenance["faults"] = aggregate["faults"]
    return StudyResult(
        results=tuple(results[s.name] for s in study.scenarios),
        provenance=provenance,
    )
