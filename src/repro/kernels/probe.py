"""Micro-probes for kernel backends (the ``repro kernels`` subcommand).

Each probe runs every registered backend over a tiny fixed workload,
checks the results against the reference backend (and against known
closed-form answers where available), and reports micro-timings.  The
point is a fast, dependency-free smoke: "is this backend importable,
correct on the basics, and roughly how fast" — not a benchmark (see
``benchmarks/test_bench_kernels.py`` for those).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.kernels import (
    available_backends,
    get_backend,
)
from repro.kernels.base import verify_backend_contract

__all__ = ["probe_backend", "probe_backends", "render_probes"]

_TIMING_REPS = 5


def _probe_inputs():
    """One deterministic small workload shared by every probe."""
    rng = np.random.default_rng(20170608)
    n = 120
    # A sparse ER-ish edge set with two planted components.
    m = 260
    u = rng.integers(0, n // 2, size=m, dtype=np.int64)
    v = rng.integers(0, n // 2, size=m, dtype=np.int64)
    keep = u != v
    half_edges = np.stack(
        [np.minimum(u[keep], v[keep]), np.maximum(u[keep], v[keep])], axis=1
    )
    other_half = half_edges + n // 2  # mirror component on nodes n/2..n-1
    edges = np.concatenate([half_edges, other_half])
    # A key incidence: 40 nodes, ring size 6, pool 90.  Rings are
    # K-subsets (no key repeats within a node) like real deployments —
    # the overlap_counts contract assumes unique (node, key) rows.
    rings = np.argsort(rng.random((40, 90)), axis=1)[:, :6].astype(np.int64)
    node_ids = np.repeat(np.arange(40, dtype=np.int64), 6)
    key_ids = rings.ravel()
    # A moderately dense graph for the k-connectivity probe.
    gn = 48
    gu, gv = np.triu_indices(gn, k=1)
    dense_keep = rng.random(gu.size) < 0.25
    kedges = np.stack([gu[dense_keep], gv[dense_keep]], axis=1).astype(np.int64)
    return n, edges, node_ids, key_ids, kedges, gn


def _timed(fn) -> float:
    best = float("inf")
    for _ in range(_TIMING_REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def probe_backend(name: str) -> Dict[str, object]:
    """Probe one backend; returns an info dict (never raises on failure)."""
    listing = {info["name"]: info for info in available_backends()}
    info: Dict[str, object] = {
        "name": name,
        "available": bool(listing.get(name, {}).get("available", False)),
        "reason": str(listing.get(name, {}).get("reason", "unregistered")),
        "ok": False,
        "checks": {},
        "micro_s": {},
    }
    if not info["available"]:
        return info
    try:
        backend = get_backend(name)
        reference = get_backend("reference")
        n, edges, node_ids, key_ids, kedges, gn = _probe_inputs()
        checks: Dict[str, bool] = {}
        micro: Dict[str, float] = {}

        # Contract conformance first: a backend whose kernel signatures
        # drift from the ABC fails its probe with the mismatch named,
        # instead of failing at a keyword call site mid-sweep.
        contract_problems = verify_backend_contract(backend)
        checks["contract"] = not contract_problems
        if contract_problems:
            info["reason"] = "; ".join(contract_problems)

        labels = backend.min_label_components(n, edges[:, 0], edges[:, 1])
        expected = reference.min_label_components(n, edges[:, 0], edges[:, 1])
        checks["min_label_components"] = bool(np.array_equal(labels, expected))
        micro["min_label_components"] = _timed(
            lambda: backend.min_label_components(n, edges[:, 0], edges[:, 1])
        )

        pk, pc = backend.overlap_counts(node_ids, key_ids, 40)
        rk, rc = reference.overlap_counts(node_ids, key_ids, 40)
        checks["overlap_counts"] = bool(
            np.array_equal(pk, rk) and np.array_equal(pc, rc)
        )
        micro["overlap_counts"] = _timed(
            lambda: backend.overlap_counts(node_ids, key_ids, 40)
        )

        cert = backend.sparse_certificate(gn, kedges, 3)
        checks["certificate_size"] = cert.shape[0] <= 3 * (gn - 1)
        checks["certificate_subset"] = bool(
            np.isin(cert[:, 0] * gn + cert[:, 1], kedges[:, 0] * gn + kedges[:, 1]).all()
        )
        # Backends must select the SAME certificate edges, not merely
        # equally valid ones — the value-identity contract.
        checks["certificate_matches_reference"] = bool(
            np.array_equal(cert, reference.sparse_certificate(gn, kedges, 3))
        )
        plain = backend.k_connected(gn, kedges, 3, certificate=False)
        with_cert = backend.k_connected(gn, kedges, 3, certificate=True)
        checks["k_connected_certificate_agrees"] = plain == with_cert
        # Known answers: a cycle is 2- but not 3-connected.
        cyc = np.stack(
            [np.arange(8, dtype=np.int64), (np.arange(8, dtype=np.int64) + 1) % 8],
            axis=1,
        )
        cyc = np.stack([cyc.min(axis=1), cyc.max(axis=1)], axis=1)
        checks["k_connected_cycle"] = (
            backend.k_connected(8, cyc, 2) and not backend.k_connected(8, cyc, 3)
        )
        micro["k_connected"] = _timed(lambda: backend.k_connected(gn, kedges, 3))

        info["checks"] = checks
        info["micro_s"] = {key: round(val, 6) for key, val in micro.items()}
        info["ok"] = all(checks.values())
    except Exception as exc:  # pragma: no cover - defensive: report, not crash
        info["reason"] = f"probe raised {type(exc).__name__}: {exc}"
        info["ok"] = False
    return info


def probe_backends(only: Optional[str] = None) -> List[Dict[str, object]]:
    """Probe every registered backend (or just *only*)."""
    names = [info["name"] for info in available_backends()]
    if only is not None:
        names = [name for name in names if name == only]
    return [probe_backend(str(name)) for name in names]


def render_probes(probes: List[Dict[str, object]]) -> str:
    """Human-readable probe report for the CLI."""
    lines = ["kernel backends:"]
    for probe in probes:
        name = probe["name"]
        if not probe["available"]:
            lines.append(f"  {name:12} unavailable  ({probe['reason']})")
            continue
        status = "ok" if probe["ok"] else "FAILED"
        timings = ", ".join(
            f"{key}={val * 1e3:.2f}ms" for key, val in probe["micro_s"].items()
        )
        lines.append(f"  {name:12} {status:11} {timings}")
        if not probe["ok"]:
            failed = [key for key, good in probe["checks"].items() if not good]
            detail = ", ".join(failed) if failed else probe["reason"]
            lines.append(f"  {'':12} failed checks: {detail}")
    return "\n".join(lines)
