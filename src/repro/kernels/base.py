"""The :class:`KernelBackend` interface: three narrow hot-path kernels.

Profiling across PRs 1–4 identified three kernels that dominate every
Monte Carlo workload in this repository:

1. **min-label connectivity union** — component labels of an edge array
   (the connectivity decision of every sweep trial);
2. **candidate-pair overlap counting** — shared-key multiplicities per
   co-holding node pair from the key → holders incidence (the sampling
   cost of every deployment);
3. **the exact k-connectivity decision** — the Even-style Dinic scan
   with a Nagamochi–Ibaraki sparse-certificate preprocessing pass (the
   decision cost of every ``k >= 2`` sweep).

A backend supplies implementations of exactly these entry points and
nothing else; everything above (sweep engine, study compiler,
experiments, WSN layer) dispatches through
:func:`repro.kernels.get_backend`.  Backends must be *decision- and
value-identical*: swapping one never changes a result, only wall-clock
— the consistency-test corpus in ``tests/test_kernels.py`` pins this.

The contracts are deliberately array-first (no ``Graph`` objects cross
the seam), so compiled backends (numba today, cupy in the planned GPU
exploration) can run without touching Python object graphs.
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, List, Tuple, Type, Union

import numpy as np

__all__ = ["KernelBackend", "kernel_contracts", "verify_backend_contract"]


class KernelBackend(abc.ABC):
    """Abstract kernel backend; see the module docstring for contracts."""

    #: Registry name (unique; used by config fields, CLI, and env var).
    name: str = "abstract"

    #: One-line provenance string (dependency versions etc.).
    description: str = ""

    # -- kernel 1: min-label connectivity union ------------------------

    @abc.abstractmethod
    def min_label_components(
        self, num_nodes: int, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Component label per node for the edge list ``(u[i], v[i])``.

        ``labels[i]`` must be the smallest node id in *i*'s component
        (so connectivity is ``(labels == 0).all()`` and the number of
        components is ``np.unique(labels).size``).  Endpoint arrays are
        int64 and may be empty.
        """

    # -- kernel 2: candidate-pair overlap counting ---------------------

    @abc.abstractmethod
    def overlap_counts(
        self, node_ids: np.ndarray, key_ids: np.ndarray, num_nodes: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Shared-key count per co-holding node pair.

        Input is the flattened incidence (``node_ids[i]`` holds
        ``key_ids[i]``; both int64, non-empty; rows are unique — a node
        holds a key at most once, as key rings are subsets).  Returns
        ``(pair_keys, counts)`` where ``pair_keys`` encodes each
        unordered pair ``(a, b), a < b`` sharing at least one key as
        ``a * num_nodes + b``, sorted ascending, and ``counts`` is the
        number of shared keys.  Pairs sharing zero keys are absent.
        """

    # -- kernel 3: the exact k-connectivity decision -------------------

    @abc.abstractmethod
    def sparse_certificate(
        self, num_nodes: int, edges: np.ndarray, k: int
    ) -> np.ndarray:
        """Nagamochi–Ibaraki sparse certificate for the κ >= k decision.

        Returns a subset of the ``(m, 2)`` int64 canonical edge array
        with at most ``k * (num_nodes - 1)`` edges such that the
        certificate subgraph is k-vertex-connected iff the input graph
        is (scan-first forest decomposition: the union of ``k``
        successive scan-first-search spanning forests, Cheriyan–Kao–
        Thurimella / Nagamochi–Ibaraki).  Row order of surviving edges
        is preserved.  Inputs that are already at or below the bound
        may be returned unchanged.
        """

    def k_connected(
        self,
        num_nodes: int,
        edges: np.ndarray,
        k: int,
        *,
        certificate: bool = True,
    ) -> bool:
        """Exact decision: is the edge array's graph k-vertex-connected?

        The default composes the shared decision engine
        (:func:`repro.graphs.vertex_connectivity.is_k_connected_edges`)
        with this backend's kernels: min-label union for ``k = 1``,
        Tarjan biconnectivity for ``k = 2``, and the truncated-Dinic
        pivot scan for general ``k`` — each running on this backend's
        :meth:`sparse_certificate` when *certificate* is enabled.
        Backends with a fully compiled decision path may override.
        """
        from repro.graphs.vertex_connectivity import is_k_connected_edges

        return is_k_connected_edges(
            num_nodes, edges, k, certificate=certificate, backend=self
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name}>"


def _signature_names(fn) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(positional names incl. self, keyword-only names) of *fn*."""
    positional: List[str] = []
    kwonly: List[str] = []
    for param in inspect.signature(fn).parameters.values():
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional.append(param.name)
        elif param.kind is inspect.Parameter.KEYWORD_ONLY:
            kwonly.append(param.name)
    return tuple(positional), tuple(kwonly)


def kernel_contracts() -> Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """The live contract table: abstract kernel method → parameter names.

    One source of truth for every consumer that needs to know "what
    must a backend implement": the ``repro kernels`` probe validates
    loaded backends against it, and the R004 lint rule
    (:mod:`repro.analysis.rules.structure`) checks backend *source*
    against it — so neither can drift from the ABC.
    """
    return {
        name: _signature_names(getattr(KernelBackend, name))
        for name in sorted(KernelBackend.__abstractmethods__)
    }


def verify_backend_contract(
    backend: Union[KernelBackend, Type[KernelBackend]],
) -> List[str]:
    """Check *backend* against the kernel contracts; return problems.

    An empty list means the backend implements every contract with
    parameter names matching the ABC exactly (keyword call sites across
    the dispatch seam rely on the names, not just the arity).  Used by
    the ``repro kernels`` probe so a misdeclared backend fails its
    probe instead of failing deep inside a sweep.
    """
    cls = backend if isinstance(backend, type) else type(backend)
    problems: List[str] = []
    for name, (positional, kwonly) in kernel_contracts().items():
        impl = getattr(cls, name, None)
        if impl is None or getattr(impl, "__isabstractmethod__", False):
            problems.append(f"missing kernel contract {name!r}")
            continue
        got_pos, got_kw = _signature_names(impl)
        if got_pos != positional or got_kw != kwonly:
            problems.append(
                f"{name!r} signature {got_pos + got_kw} does not match "
                f"the contract {positional + kwonly}"
            )
    return problems
