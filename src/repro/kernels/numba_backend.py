"""Optional numba-jitted kernel backend.

Importing this module never requires numba: availability is probed
lazily and :func:`make_backend` raises :class:`~repro.exceptions.KernelError`
with the import failure when the dependency is missing.  The registry
(:mod:`repro.kernels`) only loads this module when the ``"numba"``
backend is actually selected, so the default installation stays
numba-free (the CI default legs prove it).

The jitted kernels mirror the reference contracts exactly:

* min-label union — a path-halving union-find that always hooks the
  larger root under the smaller, so the root of every set *is* its
  minimum member id (the reference min-label contract for free);
* overlap counting — sort the incidence by key, emit pair events per
  key run, sort the pair keys, run-length encode;
* sparse certificate — CSR adjacency + k rounds of scan-first BFS
  forests, identical edge selection logic to the reference pass.

All functions are cached (``cache=True``) so warm-pool workers pay the
JIT compile once per machine, not once per process.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import KernelError
from repro.kernels.reference import ReferenceBackend

__all__ = ["NumbaBackend", "make_backend", "numba_available"]

try:  # pragma: no cover - exercised by the CI numba job
    import numba
    from numba import njit

    _NUMBA_IMPORT_ERROR: Exception = None  # type: ignore[assignment]
except ImportError as exc:  # numba absent: the gate the default CI legs prove
    numba = None  # type: ignore[assignment]
    njit = None  # type: ignore[assignment]
    _NUMBA_IMPORT_ERROR = exc


def numba_available() -> bool:
    """Whether the numba dependency imported successfully."""
    return numba is not None


if numba is not None:  # pragma: no cover - exercised by the CI numba job

    @njit(cache=True)
    def _min_label_uf(num_nodes, u, v):
        parent = np.arange(num_nodes, dtype=np.int64)
        for i in range(u.shape[0]):
            a = u[i]
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            b = v[i]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                # Smaller root wins, so every root is its set's minimum.
                if a < b:
                    parent[b] = a
                else:
                    parent[a] = b
        labels = np.empty(num_nodes, dtype=np.int64)
        for i in range(num_nodes):
            r = i
            while parent[r] != r:
                r = parent[r]
            x = i
            while parent[x] != r:
                nxt = parent[x]
                parent[x] = r
                x = nxt
            labels[i] = r
        return labels

    @njit(cache=True)
    def _overlap_counts(node_ids, key_ids, num_nodes):
        order = np.argsort(key_ids)
        total = key_ids.shape[0]
        # Pass 1: number of pair events (sum of C(run, 2) per key run).
        npairs = 0
        i = 0
        while i < total:
            j = i + 1
            while j < total and key_ids[order[j]] == key_ids[order[i]]:
                j += 1
            run = j - i
            npairs += run * (run - 1) // 2
            i = j
        if npairs == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        # Pass 2: emit one pair key per co-holding pair per key.
        pairs = np.empty(npairs, dtype=np.int64)
        pos = 0
        i = 0
        while i < total:
            j = i + 1
            while j < total and key_ids[order[j]] == key_ids[order[i]]:
                j += 1
            for a in range(i, j):
                na = node_ids[order[a]]
                for b in range(a + 1, j):
                    nb = node_ids[order[b]]
                    if na < nb:
                        pairs[pos] = na * num_nodes + nb
                    else:
                        pairs[pos] = nb * num_nodes + na
                    pos += 1
            i = j
        pairs.sort()
        # Run-length encode (the np.unique(return_counts=True) contract).
        nunique = 1
        for t in range(1, npairs):
            if pairs[t] != pairs[t - 1]:
                nunique += 1
        keys = np.empty(nunique, dtype=np.int64)
        counts = np.empty(nunique, dtype=np.int64)
        slot = 0
        run_start = 0
        for t in range(1, npairs + 1):
            if t == npairs or pairs[t] != pairs[run_start]:
                keys[slot] = pairs[run_start]
                counts[slot] = t - run_start
                slot += 1
                run_start = t
        return keys, counts

    @njit(cache=True)
    def _scan_first_used(num_nodes, eu, ev, k):
        m = eu.shape[0]
        counts = np.zeros(num_nodes, dtype=np.int64)
        for e in range(m):
            counts[eu[e]] += 1
            counts[ev[e]] += 1
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for i in range(num_nodes):
            indptr[i + 1] = indptr[i] + counts[i]
        fill = indptr[:num_nodes].copy()
        adj_nbr = np.empty(2 * m, dtype=np.int64)
        adj_eid = np.empty(2 * m, dtype=np.int64)
        # Two passes (all u-endpoints in edge order, then all
        # v-endpoints) reproduce the reference backend's stable-argsort
        # adjacency order exactly, so BFS tie-breaking — and therefore
        # the selected certificate edges — match the reference
        # bit-for-bit, not just decision-for-decision.
        for e in range(m):
            a = eu[e]
            adj_nbr[fill[a]] = ev[e]
            adj_eid[fill[a]] = e
            fill[a] += 1
        for e in range(m):
            b = ev[e]
            adj_nbr[fill[b]] = eu[e]
            adj_eid[fill[b]] = e
            fill[b] += 1
        used = np.zeros(m, dtype=np.bool_)
        visited = np.zeros(num_nodes, dtype=np.bool_)
        queue = np.empty(num_nodes, dtype=np.int64)
        remaining = m
        for _ in range(k):
            if remaining == 0:
                break
            visited[:] = False
            for root in range(num_nodes):
                if visited[root]:
                    continue
                visited[root] = True
                queue[0] = root
                head = 0
                tail = 1
                while head < tail:
                    x = queue[head]
                    head += 1
                    for idx in range(indptr[x], indptr[x + 1]):
                        w = adj_nbr[idx]
                        if visited[w]:
                            continue
                        e = adj_eid[idx]
                        if used[e]:
                            continue
                        visited[w] = True
                        used[e] = True
                        remaining -= 1
                        queue[tail] = w
                        tail += 1
        return used


class NumbaBackend(ReferenceBackend):
    """Numba-jitted backend; falls back to nothing — construction fails
    fast when numba is missing (see :func:`make_backend`)."""

    name = "numba"

    def __init__(self) -> None:
        if numba is None:  # pragma: no cover - guarded by make_backend
            raise KernelError(
                f"numba backend requested but numba is not importable: "
                f"{_NUMBA_IMPORT_ERROR}"
            )
        self.description = f"numba {numba.__version__} jitted kernels"

    def min_label_components(
        self, num_nodes: int, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        if u.size == 0:
            return np.arange(num_nodes, dtype=np.int64)
        return _min_label_uf(
            num_nodes,
            np.ascontiguousarray(u, dtype=np.int64),
            np.ascontiguousarray(v, dtype=np.int64),
        )

    def overlap_counts(
        self, node_ids: np.ndarray, key_ids: np.ndarray, num_nodes: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _overlap_counts(
            np.ascontiguousarray(node_ids, dtype=np.int64),
            np.ascontiguousarray(key_ids, dtype=np.int64),
            num_nodes,
        )

    def sparse_certificate(
        self, num_nodes: int, edges: np.ndarray, k: int
    ) -> np.ndarray:
        m = int(edges.shape[0])
        if m == 0 or k < 1 or m <= k * (num_nodes - 1):
            return edges
        used = _scan_first_used(
            num_nodes,
            np.ascontiguousarray(edges[:, 0], dtype=np.int64),
            np.ascontiguousarray(edges[:, 1], dtype=np.int64),
            k,
        )
        return edges[used]


def make_backend() -> NumbaBackend:
    """Instantiate the numba backend, raising ``KernelError`` when gated."""
    if numba is None:
        raise KernelError(
            "the 'numba' kernel backend needs the optional numba "
            f"dependency, which failed to import: {_NUMBA_IMPORT_ERROR}"
        )
    return NumbaBackend()
