"""Pluggable kernel backends for the three Monte Carlo hot paths.

This package is the dispatch seam between the algorithmic layers and
their compute kernels.  A *backend* (:class:`~repro.kernels.base.
KernelBackend`) implements three narrow, array-first contracts — the
min-label connectivity union, candidate-pair overlap counting, and the
exact k-connectivity decision with its Nagamochi–Ibaraki sparse
certificate — and everything above (``graphs/``, ``keygraphs/``,
``simulation/``, ``study/``, the CLI) calls :func:`get_backend` instead
of a concrete implementation.  The GPU/cupy exploration and any future
compiled kernel plug in here by registering one more backend.

Selection, highest precedence first:

1. an explicit name argument (``get_backend("numba")``), which is how
   a ``Scenario``'s ``kernel_backend`` config field and a resolved
   ``SweepSpec`` reach the workers;
2. the process-wide active backend (:func:`set_backend` /
   :func:`use_backend` — the CLI ``--kernel-backend`` flag);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. the ``reference`` default (pure numpy, always available).

Resolution happens in the *submitting* process: the sweep engine and
study compiler resolve the ambient name before scheduling and pin it
into every work unit, so warm-pool workers honor an override made after
the pool was spawned (a forked worker's environment snapshot is stale
by then).  Optional-dependency backends (``numba``) are registered
unconditionally but load lazily; selecting one without its dependency
raises :class:`~repro.exceptions.KernelError` at resolution time, in
the parent, not deep inside a worker.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import os
from typing import Callable, Dict, Iterator, List, Optional

from repro.exceptions import KernelError
from repro.kernels.base import KernelBackend
from repro.kernels.reference import ReferenceBackend

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "available_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the default backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_DEFAULT = "reference"

# name -> (loader, availability probe, unavailable-reason supplier)
_LOADERS: Dict[str, Callable[[], KernelBackend]] = {}
_AVAILABLE: Dict[str, Callable[[], bool]] = {}
_REASONS: Dict[str, Callable[[], str]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}

#: Process-wide active backend name (set_backend / use_backend).
_ACTIVE: Optional[str] = None


def register_backend(
    name: str,
    loader: Callable[[], KernelBackend],
    *,
    available: Optional[Callable[[], bool]] = None,
    unavailable_reason: Optional[Callable[[], str]] = None,
) -> None:
    """Register a backend *loader* under *name*.

    *loader* is called at most once (instances are cached); *available*
    is a cheap availability probe consulted without loading (defaults
    to always-available).  Re-registering a name replaces it (tests and
    external packages use this to inject instrumented backends).
    """
    if not name or not isinstance(name, str):
        raise KernelError(f"backend name must be a non-empty string, got {name!r}")
    _LOADERS[name] = loader
    _AVAILABLE[name] = available if available is not None else (lambda: True)
    _REASONS[name] = (
        unavailable_reason if unavailable_reason is not None else (lambda: "")
    )
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """Registered backend names, default first, then registration order."""
    names = list(_LOADERS)
    if _DEFAULT in names:
        names.remove(_DEFAULT)
        names.insert(0, _DEFAULT)
    return names


def backend_available(name: str) -> bool:
    """Whether *name* is registered and its dependencies import."""
    probe = _AVAILABLE.get(name)
    return bool(probe and probe())


def available_backends() -> List[Dict[str, object]]:
    """Registry listing: one info dict per registered backend.

    Keys: ``name``, ``available`` (dependency probe), ``default``
    (whether ambient resolution currently selects it), and ``reason``
    (why an unavailable backend is unavailable, else ``""``).

    Never raises: a broken ambient selection (e.g. a typo in
    ``REPRO_KERNEL_BACKEND``) marks no backend as default instead of
    crashing — this listing is the diagnostic surface for exactly that
    misconfiguration.
    """
    try:
        selected: Optional[str] = resolve_backend_name()
    except KernelError:
        selected = None
    out: List[Dict[str, object]] = []
    for name in backend_names():
        avail = backend_available(name)
        out.append(
            {
                "name": name,
                "available": avail,
                "default": name == selected,
                "reason": "" if avail else _REASONS[name](),
            }
        )
    return out


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve *name* (or the ambient default) to a registered name.

    Precedence for ``None``: active backend (:func:`set_backend` /
    :func:`use_backend`), then ``REPRO_KERNEL_BACKEND``, then
    ``"reference"``.  Unknown names raise :class:`KernelError` naming
    the registry — availability is *not* checked here (scenario
    validation wants name checking without importing numba).
    """
    source = "requested"
    if name is None:
        if _ACTIVE is not None:
            name, source = _ACTIVE, "active"
        else:
            env = os.environ.get(ENV_VAR, "").strip()
            if env:
                name, source = env, f"env {ENV_VAR}"
            else:
                return _DEFAULT
    if name not in _LOADERS:
        raise KernelError(
            f"unknown kernel backend {name!r} ({source}); "
            f"registered backends: {', '.join(backend_names())}"
        )
    return name


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Return the backend instance for *name* (ambient default if None).

    Loads lazily and caches; selecting a registered-but-unavailable
    backend raises :class:`KernelError` with the dependency failure.
    """
    name = resolve_backend_name(name)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _LOADERS[name]()
        _INSTANCES[name] = instance
    return instance


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide active backend.

    Validates the name *and* loads the backend immediately, so a bad
    ``--kernel-backend`` flag fails at the CLI boundary, not mid-sweep.
    """
    global _ACTIVE
    if name is None:
        _ACTIVE = None
        return
    get_backend(name)  # validates registration + availability
    _ACTIVE = name


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[KernelBackend]:
    """Context manager pinning the active backend for the duration.

    The worker-side half of the dispatch contract: work units carry a
    resolved backend name and wrap their evaluation in
    ``use_backend(name)`` so every kernel call site underneath —
    however deep — dispatches to the scheduled backend.  ``None`` pins
    whatever ambient resolution currently selects.
    """
    global _ACTIVE
    resolved = resolve_backend_name(name)
    backend = get_backend(resolved)
    previous = _ACTIVE
    _ACTIVE = resolved  # the registry key, which may differ from .name
    try:
        yield backend
    finally:
        _ACTIVE = previous


def _numba_importable() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


def _load_numba_backend() -> KernelBackend:
    module = importlib.import_module("repro.kernels.numba_backend")
    return module.make_backend()


register_backend("reference", ReferenceBackend)
register_backend(
    "numba",
    _load_numba_backend,
    available=_numba_importable,
    unavailable_reason=lambda: "optional dependency 'numba' is not installed",
)
