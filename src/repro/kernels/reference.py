"""The pure-numpy reference kernel backend.

Every kernel here is the battle-tested implementation the repository
ran on before the backend layer existed, moved behind the
:class:`~repro.kernels.base.KernelBackend` interface:

* :func:`min_label_components` is the PR 1 pointer-jumping min-label
  propagation (formerly ``repro.graphs.unionfind._min_label_components``);
* :func:`overlap_counts` is the group-size-batched ``np.unique``
  inverted-index counter (formerly the body of
  ``repro.keygraphs.uniform_graph.overlap_counts_from_rings``);
* :func:`scan_first_certificate` is new in PR 5: the Nagamochi–Ibaraki
  sparse certificate via k rounds of scan-first (BFS) spanning forests.

All other backends are validated against this one — it defines the
numbers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.base import KernelBackend

__all__ = [
    "ReferenceBackend",
    "min_label_components",
    "overlap_counts",
    "scan_first_certificate",
]


def min_label_components(
    num_nodes: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Array-based union-find: minimum-label propagation with pointer jumping.

    ``labels[i]`` converges to the smallest node id in *i*'s component.
    Each outer round hooks the larger endpoint label onto the smaller
    (``np.minimum.at``) and then compresses paths to a fixpoint by
    repeated ``labels[labels]`` jumping, so the whole computation is
    O(m + n) numpy work per round with O(log n) rounds in practice —
    no per-edge Python iteration.
    """
    labels = np.arange(num_nodes, dtype=np.int64)
    if u.size == 0:
        return labels
    while True:
        lu = labels[u]
        lv = labels[v]
        active = lu != lv
        if not active.any():
            return labels
        np.minimum.at(
            labels,
            np.maximum(lu[active], lv[active]),
            np.minimum(lu[active], lv[active]),
        )
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped


def overlap_counts(
    node_ids: np.ndarray, key_ids: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared-key count per co-holding pair via the inverted key index.

    Emits one pair event per co-holding pair per key and counts pair
    multiplicities with ``np.unique``.  Keys are processed in batches of
    equal holder count, so each batch is one ``(num_keys, m)`` gather
    plus one ``triu``-index expansion — no per-key Python iteration.
    """
    order = np.argsort(key_ids, kind="stable")
    sorted_keys = key_ids[order]
    sorted_nodes = node_ids[order]

    # Group boundaries: starts[i] .. starts[i+1] hold one key's holders.
    change = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], change, [sorted_keys.size]))
    group_sizes = np.diff(starts)

    pair_chunks = []
    for m in np.unique(group_sizes):
        m = int(m)
        if m < 2:
            continue
        sel = np.flatnonzero(group_sizes == m)
        # (len(sel), m) matrix of holder ids for every key of this size.
        gather = starts[sel][:, None] + np.arange(m, dtype=np.int64)[None, :]
        holders = sorted_nodes[gather]
        ia, ib = np.triu_indices(m, k=1)
        a = holders[:, ia].ravel()
        b = holders[:, ib].ravel()
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        pair_chunks.append(lo * np.int64(num_nodes) + hi)

    if not pair_chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    all_pairs = np.concatenate(pair_chunks)
    pair_keys, counts = np.unique(all_pairs, return_counts=True)
    return pair_keys, counts.astype(np.int64)


def scan_first_certificate(
    num_nodes: int, edges: np.ndarray, k: int
) -> np.ndarray:
    """Union of ``k`` successive scan-first-search spanning forests.

    ``F_i`` is a BFS spanning forest of ``G - (F_1 ∪ … ∪ F_{i-1})``
    (BFS is a scan-first search: scanning a vertex visits every still
    unvisited residual neighbor).  By Cheriyan–Kao–Thurimella the union
    ``F_1 ∪ … ∪ F_k`` is k-vertex-connected iff ``G`` is, and it has at
    most ``k * (num_nodes - 1)`` edges — so the Dinic pivot scan of the
    exact decision runs on O(k·n) edges no matter how dense ``G`` was.
    Inputs already within the bound are returned as-is.
    """
    m = int(edges.shape[0])
    if m == 0 or k < 1 or m <= k * (num_nodes - 1):
        return edges

    # CSR adjacency with edge ids (each undirected edge appears twice).
    u = edges[:, 0]
    v = edges[:, 1]
    endpoints = np.concatenate((u, v))
    order = np.argsort(endpoints, kind="stable")
    adj_nbr = np.concatenate((v, u))[order].tolist()
    eids = np.arange(m, dtype=np.int64)
    adj_eid = np.concatenate((eids, eids))[order].tolist()
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(endpoints, minlength=num_nodes), out=indptr[1:])
    indptr = indptr.tolist()

    used = [False] * m
    remaining = m
    for _ in range(k):
        if remaining == 0:
            break
        visited = [False] * num_nodes
        for root in range(num_nodes):
            if visited[root]:
                continue
            visited[root] = True
            queue = [root]
            qi = 0
            while qi < len(queue):
                x = queue[qi]
                qi += 1
                for idx in range(indptr[x], indptr[x + 1]):
                    w = adj_nbr[idx]
                    if visited[w]:
                        continue
                    e = adj_eid[idx]
                    if used[e]:
                        continue
                    visited[w] = True
                    used[e] = True
                    remaining -= 1
                    queue.append(w)
    return edges[np.asarray(used, dtype=bool)]


class ReferenceBackend(KernelBackend):
    """The default backend: pure numpy, no optional dependencies."""

    name = "reference"
    description = "pure numpy (always available; defines the numbers)"

    def min_label_components(
        self, num_nodes: int, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        return min_label_components(num_nodes, u, v)

    def overlap_counts(
        self, node_ids: np.ndarray, key_ids: np.ndarray, num_nodes: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return overlap_counts(node_ids, key_ids, num_nodes)

    def sparse_certificate(
        self, num_nodes: int, edges: np.ndarray, k: int
    ) -> np.ndarray:
        return scan_first_certificate(num_nodes, edges, k)
