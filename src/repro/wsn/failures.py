"""Failure injection.

k-connectivity is motivated by fault tolerance: the network should stay
connected "despite the failure of any (k-1) sensors or links" (paper,
abstract).  This module provides the two standard failure drivers —
uniformly random node failures and targeted worst-case probes — plus a
sampler that *certifies* the k-connectivity guarantee by exhaustively
or randomly knocking out ``k - 1`` sensors.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_nonnegative_int, check_probability
from repro.wsn.network import SecureWSN

__all__ = [
    "random_node_failures",
    "apply_random_failures",
    "connectivity_after_failures",
    "worst_case_failure_search",
]


def random_node_failures(
    num_nodes: int, failure_prob: float, seed: RandomState = None
) -> np.ndarray:
    """Sample the failed-node id set: each node fails i.i.d. with given prob."""
    failure_prob = check_probability(failure_prob, "failure_prob")
    rng = as_generator(seed)
    mask = rng.random(num_nodes) < failure_prob
    return np.flatnonzero(mask).astype(np.int64)


def apply_random_failures(
    network: SecureWSN, failure_prob: float, seed: RandomState = None
) -> np.ndarray:
    """Fail each live sensor independently; return the failed ids."""
    failed = random_node_failures(network.num_nodes, failure_prob, seed)
    network.fail_nodes(failed.tolist())
    return failed


def connectivity_after_failures(
    network: SecureWSN, failed: Sequence[int]
) -> bool:
    """Is the network still connected after failing *failed* sensors?

    Non-destructive: the network's failure state is restored afterwards.
    """
    previously_dead = [s.node_id for s in network.sensors if not s.alive]
    network.fail_nodes(list(failed))
    try:
        return network.is_connected()
    finally:
        network.restore_all()
        if previously_dead:
            network.fail_nodes(previously_dead)


def worst_case_failure_search(
    network: SecureWSN,
    num_failures: int,
    *,
    max_combinations: int = 20000,
    seed: RandomState = None,
) -> Tuple[bool, List[int]]:
    """Search for a ``num_failures``-node set whose removal disconnects the net.

    Exhaustive when the number of candidate sets is at most
    *max_combinations*; otherwise a uniform random sample of that many
    sets is probed.  Returns ``(survives_all_probed, witness)`` where
    *witness* is a disconnecting set if one was found (else empty).

    Note: with an exhaustive search, ``survives_all_probed=True`` is a
    proof that the network is ``(num_failures + 1)``-connected or better
    (provided it was connected to begin with).
    """
    num_failures = check_nonnegative_int(num_failures, "num_failures")
    n = network.num_nodes
    if num_failures >= n:
        raise ParameterError("cannot fail at least as many sensors as exist")
    if num_failures == 0:
        return network.is_connected(), []

    total = 1
    for i in range(num_failures):
        total = total * (n - i) // (i + 1)

    candidates: Iterable[Tuple[int, ...]]
    if total <= max_combinations:
        candidates = itertools.combinations(range(n), num_failures)
    else:
        rng = as_generator(seed)
        candidates = (
            tuple(sorted(rng.choice(n, size=num_failures, replace=False).tolist()))
            for _ in range(max_combinations)
        )

    for combo in candidates:
        if not connectivity_after_failures(network, list(combo)):
            return False, list(combo)
    return True, []
