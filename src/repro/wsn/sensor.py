"""Sensor abstraction for the WSN layer."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

__all__ = ["Sensor"]


@dataclasses.dataclass
class Sensor:
    """One deployed sensor.

    Attributes
    ----------
    node_id:
        Index ``0 .. n-1`` within the deployment (also the graph node id).
    ring:
        Sorted array of preloaded key ids.
    position:
        Optional ``(x, y)`` placement (populated under the disk model).
    alive:
        ``False`` once the sensor has failed or been captured; dead
        sensors carry no secure links in the current topology.
    """

    node_id: int
    ring: np.ndarray
    position: Optional[Tuple[float, float]] = None
    alive: bool = True

    @property
    def ring_size(self) -> int:
        """Number of keys held (the memory cost the paper dimensions)."""
        return int(self.ring.size)

    def holds_key(self, key_id: int) -> bool:
        """Return whether the sensor's ring contains *key_id*."""
        idx = int(np.searchsorted(self.ring, key_id))
        return idx < self.ring.size and int(self.ring[idx]) == int(key_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "alive" if self.alive else "failed"
        return f"Sensor(id={self.node_id}, |ring|={self.ring_size}, {status})"
