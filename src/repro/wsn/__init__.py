"""WSN layer: deployed networks, routing, failures, attacks, metrics."""

from repro.wsn.attacks import (
    CaptureAttackResult,
    analytic_compromise_fraction,
    capture_attack,
)
from repro.wsn.failures import (
    apply_random_failures,
    connectivity_after_failures,
    random_node_failures,
    worst_case_failure_search,
)
from repro.wsn.metrics import TopologySummary, summarize
from repro.wsn.network import SecureWSN
from repro.wsn.resilience import ResilienceOutcome, evaluate_resilience
from repro.wsn.routing import SecureRoute, find_secure_route, route_stretch
from repro.wsn.sensor import Sensor

__all__ = [
    "CaptureAttackResult",
    "analytic_compromise_fraction",
    "capture_attack",
    "apply_random_failures",
    "connectivity_after_failures",
    "random_node_failures",
    "worst_case_failure_search",
    "TopologySummary",
    "summarize",
    "SecureWSN",
    "ResilienceOutcome",
    "evaluate_resilience",
    "SecureRoute",
    "find_secure_route",
    "route_stretch",
    "Sensor",
]
