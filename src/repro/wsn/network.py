"""The secure-WSN façade: scheme ∘ channel → topology ``G_{n,q}``.

:class:`SecureWSN` deploys ``n`` sensors with a key predistribution
scheme and a channel model, then materializes the secure topology: the
edge ``{i, j}`` exists iff the rings share at least ``q`` keys *and* the
channel is on — exactly ``G_q(n,K,P) ∩ G(n,p)`` of the paper's Eq. (1)
when the channel is :class:`~repro.channels.onoff.OnOffChannel`.

The class keeps the intermediate layers inspectable (key graph, channel
mask, per-sensor rings) because the experiments need them, and supports
in-place node failure, which re-derives the surviving topology.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channels.base import ChannelModel, ChannelRealization
from repro.channels.disk import DiskRealization
from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.graphs.graph import Graph
from repro.graphs.unionfind import is_connected_edges
from repro.graphs.vertex_connectivity import is_k_connected as _graph_k_connected
from repro.keygraphs.schemes import QCompositeScheme
from repro.params import QCompositeParams
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_positive_int
from repro.wsn.sensor import Sensor

__all__ = ["SecureWSN"]


class SecureWSN:
    """A deployed secure wireless sensor network.

    Parameters
    ----------
    num_nodes:
        Number of sensors to deploy.
    scheme:
        Key predistribution scheme (ring assignment + link rule).
    channel:
        Channel model; defaults to a perfect channel (``p = 1``).
    seed:
        Root seed; ring assignment and channel state draw from
        independent spawned streams.
    """

    def __init__(
        self,
        num_nodes: int,
        scheme: QCompositeScheme,
        channel: Optional[ChannelModel] = None,
        seed: RandomState = None,
    ) -> None:
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        if self.num_nodes < 2:
            raise ParameterError("a network needs at least 2 sensors")
        self.scheme = scheme
        self.channel = channel if channel is not None else OnOffChannel(1.0)

        ring_rng, channel_rng = spawn_generators(seed, 2)
        self.rings = scheme.assign_rings(self.num_nodes, ring_rng)
        self.channel_state: ChannelRealization = self.channel.sample(
            self.num_nodes, channel_rng
        )

        self.sensors: List[Sensor] = [
            Sensor(node_id=i, ring=self.rings[i]) for i in range(self.num_nodes)
        ]
        if isinstance(self.channel_state, DiskRealization):
            for sensor in self.sensors:
                x, y = self.channel_state.positions[sensor.node_id]
                sensor.position = (float(x), float(y))

        # Key-graph candidate edges and the channel decision per candidate.
        self._key_edges = scheme.key_graph_edges(self.rings)
        self._channel_mask = self.channel_state.edge_mask(self._key_edges)
        self._secure_edges_all = self._key_edges[self._channel_mask]
        self._graph_cache: Optional[Graph] = None

    # -- topology ---------------------------------------------------------

    @property
    def key_graph_edges(self) -> np.ndarray:
        """Edges of the key graph ``G_q`` (ignores channels and failures)."""
        return self._key_edges

    def secure_edges(self) -> np.ndarray:
        """Current secure topology edges (channel on ∧ both endpoints alive)."""
        edges = self._secure_edges_all
        dead = [s.node_id for s in self.sensors if not s.alive]
        if not dead:
            return edges
        dead_arr = np.array(dead, dtype=np.int64)
        keep = ~(
            np.isin(edges[:, 0], dead_arr) | np.isin(edges[:, 1], dead_arr)
        )
        return edges[keep]

    def graph(self) -> Graph:
        """Secure topology as a :class:`Graph` (cached until failures change)."""
        if self._graph_cache is None:
            self._graph_cache = Graph.from_edge_array(
                self.num_nodes, self.secure_edges()
            )
        return self._graph_cache

    def _invalidate(self) -> None:
        self._graph_cache = None

    # -- connectivity -------------------------------------------------------

    def is_connected(self) -> bool:
        """Can every pair of live sensors communicate securely (k = 1)?

        Failed sensors are excluded from the requirement: connectivity is
        evaluated on the subgraph induced by live sensors.
        """
        alive = [s.node_id for s in self.sensors if s.alive]
        if len(alive) <= 1:
            return True
        if len(alive) == self.num_nodes:
            return is_connected_edges(self.num_nodes, self.secure_edges())
        relabel = {node: idx for idx, node in enumerate(alive)}
        edges = self.secure_edges()
        remapped = np.array(
            [(relabel[int(u)], relabel[int(v)]) for u, v in edges], dtype=np.int64
        ).reshape(-1, 2)
        return is_connected_edges(len(alive), remapped)

    def is_k_connected(self, k: int) -> bool:
        """Exact k-connectivity of the current secure topology.

        Evaluated on the full node set when all sensors are alive, or on
        the live-induced subgraph otherwise.
        """
        alive = [s.node_id for s in self.sensors if s.alive]
        if len(alive) == self.num_nodes:
            return _graph_k_connected(self.graph(), k)
        relabel = {node: idx for idx, node in enumerate(alive)}
        sub = Graph(max(len(alive), 1))
        for u, v in self.secure_edges():
            sub.add_edge(relabel[int(u)], relabel[int(v)])
        return _graph_k_connected(sub, k)

    # -- link-level API -------------------------------------------------------

    def can_communicate(self, a: int, b: int) -> bool:
        """Secure one-hop link between sensors *a* and *b* right now?"""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise ParameterError("a and b must be distinct sensors")
        if not (self.sensors[a].alive and self.sensors[b].alive):
            return False
        if not self.scheme.can_establish(self.rings[a], self.rings[b]):
            return False
        pair = np.array([[min(a, b), max(a, b)]], dtype=np.int64)
        return bool(self.channel_state.edge_mask(pair)[0])

    def link_key(self, a: int, b: int) -> Optional[bytes]:
        """Link key for a usable secure link, else ``None``."""
        if not self.can_communicate(a, b):
            return None
        return self.scheme.link_key(self.rings[a], self.rings[b])

    # -- failures ----------------------------------------------------------

    def fail_nodes(self, node_ids: Sequence[int]) -> None:
        """Mark sensors as failed (battery depletion, capture, ...)."""
        for node in node_ids:
            self._check_node(int(node))
            self.sensors[int(node)].alive = False
        self._invalidate()

    def restore_all(self) -> None:
        """Revive every sensor (fresh analysis on the same deployment)."""
        for sensor in self.sensors:
            sensor.alive = True
        self._invalidate()

    def live_count(self) -> int:
        """Number of live sensors."""
        return sum(1 for s in self.sensors if s.alive)

    # -- misc -------------------------------------------------------------

    @classmethod
    def from_params(
        cls, params: QCompositeParams, seed: RandomState = None
    ) -> "SecureWSN":
        """Deploy directly from a :class:`QCompositeParams` bundle."""
        scheme = QCompositeScheme(
            params.key_ring_size, params.pool_size, params.overlap
        )
        channel = OnOffChannel(params.channel_prob)
        return cls(params.num_nodes, scheme, channel, seed)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ParameterError(f"sensor id {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SecureWSN(n={self.num_nodes}, scheme={self.scheme!r}, "
            f"channel={self.channel!r}, live={self.live_count()})"
        )
