"""Node-capture attacks and the q-composite resilience tradeoff.

The paper's introduction motivates the q-composite scheme by its
"strength against small-scale network capture attacks while trading off
increased vulnerability in the face of large-scale attacks" (Chan et
al. 2003).  This module quantifies that tradeoff:

* :func:`capture_attack` — simulate an adversary capturing ``x``
  sensors, pooling their key rings, and eavesdropping: a link between
  two *non-captured* sensors is compromised iff **all** of its shared
  keys are captured (the link key is the hash of the entire shared set).
* :func:`analytic_compromise_fraction` — the Chan–Perrig–Song closed
  form: a given key is captured with probability ``1 - (1 - K/P)^x``,
  so a link secured by ``m`` shared keys falls with probability
  ``(1 - (1 - K/P)^x)^m``, averaged over the conditional overlap
  distribution ``m | m >= q``.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.exceptions import ParameterError
from repro.probability.hypergeometric import overlap_pmf_vector
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_key_parameters,
    check_nonnegative_int,
    check_positive_int,
)
from repro.wsn.network import SecureWSN

__all__ = [
    "CaptureAttackResult",
    "capture_attack",
    "analytic_compromise_fraction",
]


@dataclasses.dataclass(frozen=True)
class CaptureAttackResult:
    """Outcome of one simulated node-capture attack."""

    captured_nodes: List[int]
    num_captured_keys: int
    links_evaluated: int
    links_compromised: int

    @property
    def compromise_fraction(self) -> float:
        """Fraction of external secure links the adversary can read."""
        if self.links_evaluated == 0:
            return 0.0
        return self.links_compromised / self.links_evaluated


def capture_attack(
    network: SecureWSN, num_captured: int, seed: RandomState = None
) -> CaptureAttackResult:
    """Capture *num_captured* random sensors and audit all external links.

    Only links between two non-captured sensors count ("external"):
    links touching a captured sensor are trivially lost with the node
    and are excluded, following Chan et al.'s resilience metric.
    """
    num_captured = check_nonnegative_int(num_captured, "num_captured")
    if num_captured >= network.num_nodes:
        raise ParameterError("cannot capture the entire network")
    rng = as_generator(seed)
    captured = np.sort(
        rng.choice(network.num_nodes, size=num_captured, replace=False)
    ).astype(np.int64)

    pool_size = network.scheme.pool_size
    captured_mask = np.zeros(pool_size, dtype=bool)
    for node in captured:
        captured_mask[network.rings[int(node)]] = True

    captured_set = set(captured.tolist())
    evaluated = 0
    compromised = 0
    for u, v in network.secure_edges():
        u, v = int(u), int(v)
        if u in captured_set or v in captured_set:
            continue
        evaluated += 1
        common = np.intersect1d(network.rings[u], network.rings[v])
        if captured_mask[common].all():
            compromised += 1

    return CaptureAttackResult(
        captured_nodes=captured.tolist(),
        num_captured_keys=int(captured_mask.sum()),
        links_evaluated=evaluated,
        links_compromised=compromised,
    )


def analytic_compromise_fraction(
    key_ring_size: int, pool_size: int, q: int, num_captured: int
) -> float:
    """Chan–Perrig–Song estimate of the compromised-link fraction.

    ``sum_{m >= q} P[overlap = m | overlap >= q] * (1 - (1 - K/P)^x)^m``.

    The per-key capture probability treats rings as independent samples,
    which is asymptotically exact and accurate to within Monte Carlo
    noise at the paper's scales (validated by the attack experiment).
    """
    check_key_parameters(key_ring_size, pool_size, q)
    num_captured = check_nonnegative_int(num_captured, "num_captured")
    check_positive_int(q, "q")
    if num_captured == 0:
        return 0.0

    key_captured = 1.0 - (1.0 - key_ring_size / pool_size) ** num_captured
    pmf = overlap_pmf_vector(key_ring_size, pool_size)
    tail = pmf[q:]
    tail_mass = tail.sum()
    if tail_mass <= 0.0:
        return 0.0
    powers = key_captured ** np.arange(q, key_ring_size + 1, dtype=np.float64)
    return float((tail * powers).sum() / tail_mass)
