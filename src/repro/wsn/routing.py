"""Secure multi-hop routing over the WSN topology.

"Connectivity means that any two sensors can find a path in between for
secure communication" (paper, abstract) — this module exhibits those
paths.  Each hop of a route is a usable secure link, so relaying along
the route gives end-to-end secure communication; the per-hop link keys
are available for the examples that demonstrate actual payload
protection.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.exceptions import ParameterError
from repro.graphs.traversal import shortest_path
from repro.wsn.network import SecureWSN

__all__ = ["SecureRoute", "find_secure_route", "route_stretch"]


@dataclasses.dataclass(frozen=True)
class SecureRoute:
    """A secure multi-hop route between two sensors.

    ``hops[i]``/``hops[i+1]`` is the i-th secure link; ``link_keys``
    aligns with those links.
    """

    hops: List[int]
    link_keys: List[bytes]

    @property
    def length(self) -> int:
        """Number of links on the route."""
        return max(0, len(self.hops) - 1)


def find_secure_route(
    network: SecureWSN, source: int, target: int
) -> Optional[SecureRoute]:
    """Shortest secure route from *source* to *target*, or ``None``.

    Routes only traverse live sensors and on-channels (i.e. edges of the
    current secure topology).  The returned route carries the derived
    per-hop link keys.
    """
    if not 0 <= source < network.num_nodes:
        raise ParameterError(f"source {source} outside network")
    if not 0 <= target < network.num_nodes:
        raise ParameterError(f"target {target} outside network")
    if not network.sensors[source].alive or not network.sensors[target].alive:
        return None

    path = shortest_path(network.graph(), source, target)
    if path is None:
        return None
    keys: List[bytes] = []
    for a, b in zip(path, path[1:]):
        key = network.scheme.link_key(network.rings[a], network.rings[b])
        if key is None:  # pragma: no cover - topology edges always share >= q keys
            return None
        keys.append(key)
    return SecureRoute(hops=path, link_keys=keys)


def route_stretch(network: SecureWSN, source: int, target: int) -> Optional[float]:
    """Ratio of secure-route length to key-graph route length.

    Measures how much the unreliable channels lengthen communication
    paths relative to full visibility (paper Section IX's notion).  Both
    routes must exist; otherwise ``None``.
    """
    secure = find_secure_route(network, source, target)
    if secure is None:
        return None
    from repro.graphs.graph import Graph

    key_graph = Graph.from_edge_array(network.num_nodes, network.key_graph_edges)
    baseline = shortest_path(key_graph, source, target)
    if baseline is None or len(baseline) <= 1:
        return None
    return secure.length / (len(baseline) - 1)
