"""Topology summary metrics for a deployed network."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.graphs.properties import (
    average_clustering,
    degrees_from_edges,
)
from repro.wsn.network import SecureWSN

__all__ = ["TopologySummary", "summarize"]


@dataclasses.dataclass(frozen=True)
class TopologySummary:
    """Snapshot of the secure topology's key health indicators."""

    num_nodes: int
    num_live: int
    num_secure_links: int
    min_degree: int
    mean_degree: float
    isolated_nodes: int
    connected: bool
    clustering: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def summarize(network: SecureWSN, *, with_clustering: bool = True) -> TopologySummary:
    """Compute a :class:`TopologySummary` of the current topology.

    ``with_clustering=False`` skips the ``O(n d^2)`` clustering pass for
    callers inside tight loops.
    """
    edges = network.secure_edges()
    degs = degrees_from_edges(network.num_nodes, edges)
    live = network.live_count()
    clustering = (
        average_clustering(network.graph()) if with_clustering else float("nan")
    )
    return TopologySummary(
        num_nodes=network.num_nodes,
        num_live=live,
        num_secure_links=int(edges.shape[0]),
        min_degree=int(degs.min()),
        mean_degree=float(degs.mean()),
        isolated_nodes=int((degs == 0).sum()),
        connected=network.is_connected(),
        clustering=clustering,
    )
