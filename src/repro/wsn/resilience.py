"""Resilient connectivity under node capture (paper ref [36]).

A capture attack does double damage: the captured sensors disappear
*and* the adversary learns their keys, so links between surviving
sensors whose entire shared-key set is captured can no longer be
trusted.  *Resilient connectivity* asks whether the surviving sensors
remain connected using only uncompromised links — the operational
question behind "On resilience and connectivity of secure WSNs under
node capture attacks" (Zhao 2017, the paper's reference [36]).

This module evaluates it exactly on a deployed :class:`SecureWSN`:
remove captured sensors, drop every compromised surviving link, and
check connectivity (or k-connectivity) of what is left.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.unionfind import is_connected_edges
from repro.graphs.vertex_connectivity import is_k_connected_edges
from repro.utils.rng import RandomState, as_generator
from repro.wsn.network import SecureWSN

__all__ = ["ResilienceOutcome", "evaluate_resilience"]


@dataclasses.dataclass(frozen=True)
class ResilienceOutcome:
    """Result of one capture + resilient-connectivity evaluation."""

    captured_nodes: List[int]
    survivors: int
    surviving_links: int
    compromised_links: int
    connected_ignoring_compromise: bool
    resiliently_connected: bool

    @property
    def compromise_fraction(self) -> float:
        total = self.surviving_links + self.compromised_links
        return self.compromised_links / total if total else 0.0


def evaluate_resilience(
    network: SecureWSN,
    num_captured: int,
    seed: RandomState = None,
    *,
    k: int = 1,
) -> ResilienceOutcome:
    """Capture random sensors; check k-connectivity over trusted links only.

    Non-destructive: the network's failure state is left untouched (the
    evaluation works on a relabeled copy of the surviving topology).
    """
    if num_captured < 0:
        raise ParameterError("num_captured must be >= 0")
    if num_captured >= network.num_nodes - 1:
        raise ParameterError("need at least two surviving sensors")
    rng = as_generator(seed)
    captured = set(
        int(x)
        for x in rng.choice(network.num_nodes, size=num_captured, replace=False)
    )

    pool_size = network.scheme.pool_size
    captured_keys = np.zeros(pool_size, dtype=bool)
    for node in captured:
        captured_keys[network.rings[node]] = True

    survivors = [i for i in range(network.num_nodes) if i not in captured]
    relabel = {node: idx for idx, node in enumerate(survivors)}

    trusted: List[tuple] = []
    surviving: List[tuple] = []
    compromised = 0
    for u, v in network.secure_edges():
        u, v = int(u), int(v)
        if u in captured or v in captured:
            continue
        pair = (relabel[u], relabel[v])
        surviving.append(pair)
        common = np.intersect1d(network.rings[u], network.rings[v])
        if captured_keys[common].all():
            compromised += 1
        else:
            trusted.append(pair)

    n_live = len(survivors)
    trusted_arr = np.array(trusted, dtype=np.int64).reshape(-1, 2)
    all_arr = np.array(surviving, dtype=np.int64).reshape(-1, 2)

    if k == 1:
        resilient = is_connected_edges(n_live, trusted_arr)
        plain = is_connected_edges(n_live, all_arr)
    else:
        resilient = is_k_connected_edges(n_live, trusted_arr, k)
        plain = is_k_connected_edges(n_live, all_arr, k)

    return ResilienceOutcome(
        captured_nodes=sorted(captured),
        survivors=n_live,
        surviving_links=len(trusted),
        compromised_links=compromised,
        connected_ignoring_compromise=plain,
        resiliently_connected=resilient,
    )
