"""Component evolution: emergence of the giant component (extension).

Section IX cites Bloznelis–Jaworski–Rybarczyk: a linear-size ("giant")
component emerges in the key graph once the edge probability exceeds
``1/n`` — far below the ``ln n / n`` connectivity threshold that is the
paper's subject.  This experiment traces the whole evolution for the
composed graph ``G_{n,q} = G_q ∩ G(n,p)``: sweeping the mean degree
``c = n·t`` across 1, it measures the largest-component fraction and
compares it against the classical branching-process limit for ER graphs
(the unique root of ``ρ = 1 − e^{−cρ}``), which the intersection graph
should track at matched edge probability.
"""

from __future__ import annotations

import functools
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.unionfind import UnionFind
from repro.params import QCompositeParams
from repro.probability.hypergeometric import overlap_survival
from repro.simulation.engine import run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.trials import sample_secure_edges
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = [
    "build_giant_study",
    "run_giant_component",
    "render_giant_component",
    "giant_component_trial",
    "er_giant_fraction",
]


def er_giant_fraction(mean_degree: float, *, tol: float = 1e-12) -> float:
    """Limit fraction ρ(c) of the giant component in ``G(n, c/n)``.

    The unique positive root of ``ρ = 1 − e^{−cρ}`` for ``c > 1``; zero
    for ``c <= 1``.  Solved by monotone fixed-point iteration.
    """
    if mean_degree <= 1.0:
        return 0.0
    rho = 1.0 - 1.0 / mean_degree  # warm start above the root's basin
    for _ in range(200):
        nxt = 1.0 - math.exp(-mean_degree * rho)
        if abs(nxt - rho) < tol:
            return nxt
        rho = nxt
    return rho


def giant_component_trial(
    params: QCompositeParams, rng: np.random.Generator
) -> float:
    """One deployment → fraction of nodes in the largest component."""
    edges = sample_secure_edges(params, rng)
    uf = UnionFind(params.num_nodes)
    for u, v in edges:
        uf.union(int(u), int(v))
    return uf.component_sizes()[0] / params.num_nodes


def _channel_probs(
    mean_degrees: Sequence[float],
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
) -> List[float]:
    s = overlap_survival(key_ring_size, pool_size, q)
    probs = []
    for c in mean_degrees:
        p = c / (num_nodes * s)
        if not 0.0 < p <= 1.0:
            raise ValueError(
                f"mean degree {c} needs channel prob {p:.4g} outside (0, 1]; "
                "adjust key_ring_size"
            )
        probs.append(p)
    return probs


def build_giant_study(
    trials: Optional[int] = None,
    mean_degrees: Sequence[float] = (0.5, 0.8, 1.0, 1.3, 2.0, 3.0, 5.0),
    num_nodes: int = 1000,
    key_ring_size: int = 60,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170613,
) -> Study:
    """The whole phase-transition sweep as curves of one deployment.

    Every mean degree ``c`` differs only in the channel probability, so
    the entire evolution is measured on *shared* sampled key graphs
    with nested thinning — the emergence curve is monotone within each
    deployment by construction.
    """
    trials = trials if trials is not None else trials_from_env(40, full=200)
    probs = _channel_probs(mean_degrees, num_nodes, key_ring_size, pool_size, q)
    return Study(
        (
            Scenario(
                name="giant",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(key_ring_size,),
                curves=tuple((q, p) for p in probs),
                metrics=(MetricSpec("giant_fraction"),),
                trials=trials,
                seed=seed,
            ),
        )
    )


def run_giant_component(
    trials: Optional[int] = None,
    mean_degrees: Sequence[float] = (0.5, 0.8, 1.0, 1.3, 2.0, 3.0, 5.0),
    num_nodes: int = 1000,
    key_ring_size: int = 60,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170613,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Sweep the mean degree ``c``; measure giant-component fractions.

    The channel probability is solved from ``c = n·p·s(K,P,q)`` so the
    key-graph structure is held fixed while the composed graph crosses
    the phase transition.  ``backend="legacy"`` keeps the original
    independent-per-point sampling as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(40, full=200)
    probs = _channel_probs(mean_degrees, num_nodes, key_ring_size, pool_size, q)
    if backend == "study":
        study = build_giant_study(
            trials, mean_degrees, num_nodes, key_ring_size, pool_size, q, seed
        )
        scenario_result = study.run(workers=workers)["giant"]
    points: List[CurvePoint] = []
    for c, p in zip(mean_degrees, probs):
        params = QCompositeParams(
            num_nodes=num_nodes,
            key_ring_size=key_ring_size,
            pool_size=pool_size,
            overlap=q,
            channel_prob=p,
        )
        if backend == "study":
            arr = scenario_result.series("giant_fraction", (q, p), key_ring_size)
        else:
            fractions = run_trials(
                functools.partial(giant_component_trial, params),
                trials,
                seed=seed + int(c * 100),
                workers=workers,
            )
            arr = np.array(fractions)
        # Estimate slot: fraction of deployments with a >10% giant part.
        giant_hits = int((arr > 0.1).sum())
        points.append(
            CurvePoint(
                point={
                    "mean_degree": c,
                    "mean_fraction": float(arr.mean()),
                    "std_fraction": float(arr.std(ddof=1)) if trials > 1 else 0.0,
                },
                estimate=BernoulliEstimate.from_counts(giant_hits, trials),
                prediction=er_giant_fraction(c),
            )
        )
    return ExperimentResult(
        name="giant_component",
        config={
            "trials": trials,
            "mean_degrees": list(mean_degrees),
            "num_nodes": num_nodes,
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_giant_component(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                pt.point["mean_degree"],
                pt.point["mean_fraction"],
                pt.prediction,
                pt.estimate.estimate,
            ]
        )
    return format_table(
        [
            "mean degree c",
            "largest comp. fraction (emp)",
            "ER limit ρ(c)",
            "P[giant > 10%]",
        ],
        rows,
        title=(
            "Giant component evolution in G_q ∩ G(n,p) "
            f"(n={result.config['num_nodes']}, K={result.config['key_ring_size']}, "
            f"q={result.config['q']}, trials={result.config['trials']})"
        ),
    )
