"""Disk vs on/off channels at matched edge probability (Section IX).

The paper closes its related-work section with an open question: does a
zero–one law like Theorem 1 hold under the *disk* model?  It conjectures
yes, "in view of the similarity in (k-)connectivity between the random
graphs induced by the disk model and the on/off channel model".  This
experiment provides the empirical side of that conjecture: with the
channel marginal probability matched exactly (``π r² = p`` on the
torus), it compares the connectivity probability of the q-composite
scheme under both channel models across the threshold window.

The disk model's geometric dependence (triangle inequality) makes its
composed graph *harder* to connect at equal marginal — visible as the
disk column lagging the on/off column — while both transition in the
same narrow window, supporting the conjecture qualitatively.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence

import numpy as np

from repro.channels.disk import DiskChannel
from repro.core.theorem1 import predict_k_connectivity
from repro.exceptions import ParameterError
from repro.graphs.unionfind import is_connected_edges
from repro.keygraphs.rings import sample_uniform_rings
from repro.keygraphs.uniform_graph import edges_from_rings
from repro.params import QCompositeParams
from repro.simulation.engine import run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_connectivity
from repro.study import MetricSpec, Scenario, Study
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

__all__ = [
    "build_disk_study",
    "run_disk_comparison",
    "render_disk_comparison",
    "disk_connectivity_trial",
]


def build_disk_study(
    trials: Optional[int] = None,
    ring_sizes: Sequence[int] = (40, 50, 60, 70, 80),
    channel_prob: float = 0.5,
    num_nodes: int = 500,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170612,
) -> Study:
    """Two scenarios — on/off and disk — sharing one deployment family.

    Because both scenarios pin the same ``(n, P, K grid, trials,
    seed)``, the compiler samples the key rings *once* per ``(K,
    trial)`` and realizes both channel models on the same key graph:
    the on/off column thresholds one uniform per candidate edge, the
    disk column thresholds the torus distance at ``r = sqrt(p / pi)``
    (matched marginal).  The model comparison is therefore paired
    deployment-by-deployment — pure channel effect, no key-graph noise.
    """
    trials = trials if trials is not None else trials_from_env(60, full=300)
    common = dict(
        num_nodes=num_nodes,
        pool_size=pool_size,
        ring_sizes=tuple(int(r) for r in ring_sizes),
        curves=((q, float(channel_prob)),),
        metrics=(MetricSpec("connectivity"),),
        trials=trials,
        seed=seed,
    )
    return Study(
        (
            Scenario(name="disk_onoff", channel="onoff", **common),
            Scenario(name="disk_disk", channel="disk", **common),
        )
    )


def disk_connectivity_trial(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    radius: float,
    rng: np.random.Generator,
) -> bool:
    """One deployment under the disk channel → connected?"""
    ring_rng, place_rng = spawn_generators(rng, 2)
    rings = sample_uniform_rings(num_nodes, key_ring_size, pool_size, ring_rng)
    key_edges = edges_from_rings(rings, q)
    realization = DiskChannel(radius, torus=True).sample(num_nodes, place_rng)
    mask = realization.edge_mask(key_edges)
    return is_connected_edges(num_nodes, key_edges[mask])


def run_disk_comparison(
    trials: Optional[int] = None,
    ring_sizes: Sequence[int] = (40, 50, 60, 70, 80),
    channel_prob: float = 0.5,
    num_nodes: int = 500,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170612,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Sweep K under both channel models at one matched marginal ``p``.

    ``backend="legacy"`` keeps the original unpaired per-point
    sampling as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(60, full=300)
    disk = DiskChannel.for_edge_probability(channel_prob, torus=True)
    if backend == "study":
        study = build_disk_study(
            trials, ring_sizes, channel_prob, num_nodes, pool_size, q, seed
        )
        study_result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for ring in ring_sizes:
        params = QCompositeParams(
            num_nodes=num_nodes,
            key_ring_size=ring,
            pool_size=pool_size,
            overlap=q,
            channel_prob=channel_prob,
        )
        if backend == "study":
            curve = (q, channel_prob)
            onoff_est = study_result["disk_onoff"].bernoulli(
                "connectivity", curve, ring
            )
            disk_est = study_result["disk_disk"].bernoulli(
                "connectivity", curve, ring
            )
        else:
            onoff_est = estimate_connectivity(
                params, trials, seed=seed + ring, workers=workers
            )
            disk_outcomes = run_trials(
                functools.partial(
                    disk_connectivity_trial,
                    num_nodes,
                    ring,
                    pool_size,
                    q,
                    disk.radius,
                ),
                trials,
                seed=seed + 100000 + ring,
                workers=workers,
            )
            disk_est = BernoulliEstimate.from_counts(sum(disk_outcomes), trials)
        points.append(
            CurvePoint(
                point={
                    "K": ring,
                    "disk_estimate": disk_est.estimate,
                    "disk_ci_low": disk_est.ci_low,
                    "disk_ci_high": disk_est.ci_high,
                    "radius": disk.radius,
                },
                estimate=onoff_est,
                prediction=predict_k_connectivity(params, k=1).probability,
            )
        )
    return ExperimentResult(
        name="disk_comparison",
        config={
            "trials": trials,
            "ring_sizes": list(ring_sizes),
            "channel_prob": channel_prob,
            "num_nodes": num_nodes,
            "pool_size": pool_size,
            "q": q,
            "radius": disk.radius,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_disk_comparison(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["K"]),
                pt.estimate.estimate,
                pt.point["disk_estimate"],
                pt.prediction,
            ]
        )
    return format_table(
        ["K", "on/off empirical", "disk empirical", "theorem1 (on/off)"],
        rows,
        title=(
            "Disk vs on/off channels at matched marginal "
            f"p={result.config['channel_prob']} "
            f"(n={result.config['num_nodes']}, q={result.config['q']}, "
            f"r={result.config['radius']:.4f}, trials={result.config['trials']})"
        ),
    )
