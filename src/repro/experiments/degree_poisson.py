"""Lemma 9 validation: fixed-degree node counts are asymptotically Poisson.

For each degree ``h`` the experiment samples the count ``N_h`` of
degree-``h`` nodes across many deployments near the critical scaling
and compares:

* the empirical mean of ``N_h`` against the paper's Poissonized mean
  ``λ_{n,h}`` and the exact binomial mean (their gap is the
  Poissonization error, which shrinks with ``n``);
* the empirical *distribution* of ``N_h`` against ``Poisson(λ_{n,h})``
  via total-variation distance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.degree_distribution import lambda_nh, lambda_nh_exact
from repro.core.scaling import channel_prob_for_alpha
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.poisson import poisson_total_variation
from repro.simulation.engine import trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import sample_degree_counts
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_degree_poisson_study", "run_degree_poisson", "render_degree_poisson"]


def build_degree_poisson_study(
    trials: Optional[int] = None,
    degrees: Sequence[int] = (0, 1, 2),
    alpha: float = 0.0,
    num_nodes: int = 1000,
    key_ring_size: int = 60,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170609,
) -> Study:
    """One scenario; every degree ``h`` is one metric of one deployment.

    All ``N_h`` counts come from a single ``np.bincount`` per sampled
    world — the legacy path resampled the whole deployment once per
    ``h``.
    """
    trials = trials if trials is not None else trials_from_env(120, full=600)
    p = channel_prob_for_alpha(num_nodes, key_ring_size, pool_size, q, alpha, k=1)
    return Study(
        (
            Scenario(
                name="degree_poisson",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(key_ring_size,),
                curves=((q, p),),
                metrics=tuple(MetricSpec("degree_count", h=h) for h in degrees),
                trials=trials,
                seed=seed,
            ),
        )
    )


def run_degree_poisson(
    trials: Optional[int] = None,
    degrees: Sequence[int] = (0, 1, 2),
    alpha: float = 0.0,
    num_nodes: int = 1000,
    key_ring_size: int = 60,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170609,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Sample degree-``h`` counts at the critical scaling (α = 0 default).

    ``backend="legacy"`` keeps the original one-deployment-per-``h``
    sampling as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(120, full=600)
    p = channel_prob_for_alpha(num_nodes, key_ring_size, pool_size, q, alpha, k=1)
    params = QCompositeParams(
        num_nodes=num_nodes,
        key_ring_size=key_ring_size,
        pool_size=pool_size,
        overlap=q,
        channel_prob=p,
    )
    t = params.edge_probability()
    if backend == "study":
        study = build_degree_poisson_study(
            trials, degrees, alpha, num_nodes, key_ring_size, pool_size, q, seed
        )
        scenario_result = study.run(workers=workers)["degree_poisson"]

    points: List[CurvePoint] = []
    for h in degrees:
        if backend == "study":
            counts = scenario_result.series(
                f"degree_count[h={h}]", (q, p), key_ring_size
            ).astype(np.int64)
        else:
            counts = sample_degree_counts(
                params, h, trials, seed=seed + h, workers=workers
            )
        lam = lambda_nh(num_nodes, t, h)
        lam_exact = lambda_nh_exact(num_nodes, t, h)
        histogram = np.bincount(counts)
        tv = poisson_total_variation(histogram, lam)
        points.append(
            CurvePoint(
                point={
                    "h": h,
                    "empirical_mean": float(counts.mean()),
                    "empirical_var": float(counts.var(ddof=1)) if trials > 1 else 0.0,
                    "lambda_poissonized": lam,
                    "lambda_exact": lam_exact,
                    "tv_distance": tv,
                },
                # Estimate slot: fraction of deployments with N_h = 0,
                # comparable to the Poisson prediction e^{-λ}.
                estimate=BernoulliEstimate.from_counts(
                    int((counts == 0).sum()), trials
                ),
                prediction=float(np.exp(-lam)),
            )
        )
    return ExperimentResult(
        name="degree_poisson",
        config={
            "trials": trials,
            "degrees": list(degrees),
            "alpha": alpha,
            "num_nodes": num_nodes,
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "channel_prob": p,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_degree_poisson(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["h"]),
                pt.point["empirical_mean"],
                pt.point["lambda_poissonized"],
                pt.point["lambda_exact"],
                pt.point["empirical_var"],
                pt.point["tv_distance"],
                pt.estimate.estimate,
                pt.prediction,
            ]
        )
    return format_table(
        [
            "h",
            "mean N_h",
            "λ (paper)",
            "λ (exact)",
            "var N_h",
            "TV vs Poisson",
            "P[N_h=0] emp",
            "e^{-λ}",
        ],
        rows,
        title=(
            "Lemma 9: Poisson law for degree counts "
            f"(n={result.config['num_nodes']}, K={result.config['key_ring_size']}, "
            f"q={result.config['q']}, p={result.config['channel_prob']:.4f}, "
            f"trials={result.config['trials']})"
        ),
    )
