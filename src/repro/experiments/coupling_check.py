"""Lemmas 5–6 validation: the coupling chain is executable and succeeds.

Lemma 5 couples the uniform key graph over a binomial one,
``G_q(n,K,P) ⪰ H_q(n,x,P)`` with ``x`` from Eq. (66); the coupling
succeeds exactly when every node's binomial ring size stays ≤ K.  This
experiment measures that success probability empirically (and checks
the analytic product formula), *and* verifies on every successful
coupling that the realized ``H_q`` edge set is a subset of the realized
``G_q`` edge set — the spanning-subgraph relation the proof needs.

It also reports how much edge probability the chain gives away:
``z = y·p`` versus the true ``t = s·p`` (Lemma 3 needs only
``z = t(1 - o(1/ln n))``, so the ratio should drift toward 1 as ``n``
grows).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.keygraphs.binomial_graph import coupled_ring_pair
from repro.keygraphs.uniform_graph import edges_from_rings
from repro.probability.couplings import (
    binomial_key_probability,
    coupled_er_probability,
    coupling_success_probability,
)
from repro.probability.hypergeometric import overlap_survival
from repro.simulation.engine import run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.study import Scenario, Study
from repro.utils.tables import format_table
import functools

__all__ = [
    "build_coupling_study",
    "run_coupling_check",
    "render_coupling_check",
    "coupling_trial",
]


def build_coupling_study(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (100, 300, 1000),
    key_ring_size: int = 80,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170610,
) -> Study:
    """One ``"coupling"`` protocol scenario per network size.

    The coupled uniform/binomial ring pair is *jointly structured*
    randomness — it cannot be expressed as a post-filter over shared
    deployments — so it rides the study layer as a registered protocol
    (:mod:`repro.study.protocols`), keeping the scenario JSON-round-
    trippable and the execution on the same deterministic trial engine.
    """
    trials = trials if trials is not None else trials_from_env(40, full=200)
    return Study(
        tuple(
            Scenario(
                name=f"coupling_n{n}",
                kind="protocol",
                protocol="coupling",
                protocol_params={"key_ring_size": key_ring_size, "q": q},
                num_nodes=n,
                pool_size=pool_size,
                trials=trials,
                seed=seed + n,
            )
            for n in num_nodes_grid
        )
    )


def coupling_trial(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    rng: np.random.Generator,
) -> Tuple[bool, bool]:
    """One joint sample → (coupling succeeded, H_q edges ⊆ G_q edges)."""
    x = binomial_key_probability(num_nodes, key_ring_size, pool_size)
    uniform, binomial, success = coupled_ring_pair(
        num_nodes, key_ring_size, x, pool_size, rng
    )
    if not success:
        return (False, False)
    g_edges = edges_from_rings(uniform, q)
    h_edges = edges_from_rings(binomial, q)
    g_set = {(int(u), int(v)) for u, v in g_edges}
    subset_ok = all((int(u), int(v)) in g_set for u, v in h_edges)
    return (True, subset_ok)


def run_coupling_check(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (100, 300, 1000),
    key_ring_size: int = 80,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170610,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Measure coupling success and subset validity across ``n``.

    The ``"study"`` backend runs the registered ``"coupling"``
    protocol through the study layer (same per-trial seeds, so the two
    backends are bit-identical); ``backend="legacy"`` calls the trial
    engine directly.
    """
    from repro.exceptions import ParameterError

    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(40, full=200)
    if backend == "study":
        study = build_coupling_study(
            trials, num_nodes_grid, key_ring_size, pool_size, q, seed
        )
        study_result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for n in num_nodes_grid:
        if backend == "study":
            scenario_result = study_result[f"coupling_n{n}"]
            success_vals = scenario_result.series("success")
            subset_vals = scenario_result.series("subset_ok")
            successes = int(success_vals.sum())
            violations = int(((success_vals == 1.0) & (subset_vals == 0.0)).sum())
        else:
            outcomes = run_trials(
                functools.partial(coupling_trial, n, key_ring_size, pool_size, q),
                trials,
                seed=seed + n,
                workers=workers,
            )
            successes = sum(1 for ok, _ in outcomes if ok)
            violations = sum(1 for ok, sub in outcomes if ok and not sub)
        x = binomial_key_probability(n, key_ring_size, pool_size)
        y = coupled_er_probability(x, pool_size, q)
        s = overlap_survival(key_ring_size, pool_size, q)
        points.append(
            CurvePoint(
                point={
                    "n": n,
                    "x": x,
                    "y_over_s": y / s,
                    "subset_violations": violations,
                },
                estimate=BernoulliEstimate.from_counts(successes, trials),
                prediction=coupling_success_probability(n, key_ring_size, pool_size),
            )
        )
    return ExperimentResult(
        name="coupling_check",
        config={
            "trials": trials,
            "num_nodes_grid": list(num_nodes_grid),
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_coupling_check(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["n"]),
                pt.point["x"],
                pt.estimate.estimate,
                pt.prediction,
                pt.point["y_over_s"],
                int(pt.point["subset_violations"]),
            ]
        )
    return format_table(
        [
            "n",
            "x (Eq. 66)",
            "coupling success (emp)",
            "analytic",
            "y/s ratio",
            "subset violations",
        ],
        rows,
        title=(
            "Lemmas 5-6: binomial-ring coupling "
            f"(K={result.config['key_ring_size']}, P={result.config['pool_size']}, "
            f"q={result.config['q']}, trials={result.config['trials']})"
        ),
    )
