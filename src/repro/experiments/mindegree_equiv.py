"""Lemma 8 validation: min-degree law and its equivalence to k-connectivity.

Two claims are checked on the *same* Monte Carlo deployments:

1. ``P[min degree >= k]`` follows the limit law ``exp(-e^{-α}/(k-1)!)``
   (Lemma 8) — the upper-bound half of Theorem 1's proof;
2. the events ``{min degree >= k}`` and ``{k-connected}`` coincide with
   probability → 1 (their limits agree, so the symmetric difference
   must vanish) — measured directly as a per-deployment agreement rate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mindegree import min_degree_probability_poisson
from repro.core.scaling import channel_prob_for_alpha
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_agreement
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_mindegree_study", "run_mindegree_equiv", "render_mindegree_equiv"]


def build_mindegree_study(
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3),
    alphas: Sequence[float] = (-1.0, 0.0, 1.5),
    num_nodes: int = 300,
    key_ring_size: int = 80,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170608,
) -> Study:
    """One scenario per ``k`` with both Lemma 8 metrics per curve.

    All scenarios share the deployment family, so min-degree and
    k-connectivity are measured on the *same* sampled worlds across the
    whole ``(k, α)`` grid — the agreement rate is a per-deployment
    comparison, and the grid pays for ring sampling once.
    """
    trials = trials if trials is not None else trials_from_env(60, full=300)
    scenarios = []
    for k in ks:
        curves = tuple(
            (q, channel_prob_for_alpha(num_nodes, key_ring_size, pool_size, q, alpha, k))
            for alpha in alphas
        )
        scenarios.append(
            Scenario(
                name=f"mindegree_k{k}",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(key_ring_size,),
                curves=curves,
                metrics=(
                    MetricSpec("min_degree", k=k),
                    MetricSpec("k_connectivity", k=k),
                ),
                trials=trials,
                seed=seed,
            )
        )
    return Study(tuple(scenarios))


def run_mindegree_equiv(
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3),
    alphas: Sequence[float] = (-1.0, 0.0, 1.5),
    num_nodes: int = 300,
    key_ring_size: int = 80,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170608,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Joint min-degree / k-connectivity sweep over (k, α).

    ``n = 300`` keeps the exact ``k = 3`` decision (Dinic/Even) cheap
    enough for hundreds of trials.  ``backend="legacy"`` keeps the
    original independent-per-point sampling as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(60, full=300)
    if backend == "study":
        study = build_mindegree_study(
            trials, ks, alphas, num_nodes, key_ring_size, pool_size, q, seed
        )
        study_result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for ki, k in enumerate(ks):
        for ai, alpha in enumerate(alphas):
            p = channel_prob_for_alpha(
                num_nodes, key_ring_size, pool_size, q, alpha, k
            )
            params = QCompositeParams(
                num_nodes=num_nodes,
                key_ring_size=key_ring_size,
                pool_size=pool_size,
                overlap=q,
                channel_prob=p,
            )
            if backend == "study":
                scenario_result = study_result[f"mindegree_k{k}"]
                deg_est = scenario_result.bernoulli(
                    f"min_degree[k={k}]", (q, p), key_ring_size
                )
                conn_est = scenario_result.bernoulli(
                    f"k_connectivity[k={k}]", (q, p), key_ring_size
                )
                agreement = scenario_result.agreement(
                    f"min_degree[k={k}]",
                    f"k_connectivity[k={k}]",
                    (q, p),
                    key_ring_size,
                )
            else:
                # Grid-index seed derivation: non-negative (SeedSequence
                # rejects negatives, which alpha-based offsets hit for
                # small root seeds) and collision-free across the grid
                # (every (k, alpha) point gets an independent stream).
                deg_est, conn_est, agreement = estimate_agreement(
                    params,
                    k,
                    trials,
                    seed=seed + ki * len(alphas) + ai,
                    workers=workers,
                )
            # Primary estimate slot: the min-degree probability (Lemma 8's
            # statistic); connectivity and agreement ride in the point dict.
            points.append(
                CurvePoint(
                    point={
                        "k": k,
                        "alpha": alpha,
                        "p": p,
                        "kconn_estimate": conn_est.estimate,
                        "kconn_ci_low": conn_est.ci_low,
                        "kconn_ci_high": conn_est.ci_high,
                        "agreement": agreement,
                        "poisson_refined": min_degree_probability_poisson(params, k),
                    },
                    estimate=deg_est,
                    prediction=limit_probability(alpha, k),
                )
            )
    return ExperimentResult(
        name="mindegree_equiv",
        config={
            "trials": trials,
            "ks": list(ks),
            "alphas": list(alphas),
            "num_nodes": num_nodes,
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_mindegree_equiv(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["k"]),
                pt.point["alpha"],
                pt.estimate.estimate,
                pt.point["kconn_estimate"],
                pt.point["agreement"],
                pt.prediction,
                pt.point["poisson_refined"],
            ]
        )
    return format_table(
        [
            "k",
            "alpha",
            "P[min deg>=k]",
            "P[k-conn]",
            "agreement",
            "limit law",
            "Poisson refined",
        ],
        rows,
        title=(
            "Lemma 8: min-degree law and equivalence with k-connectivity "
            f"(n={result.config['num_nodes']}, K={result.config['key_ring_size']}, "
            f"q={result.config['q']}, trials={result.config['trials']})"
        ),
    )
