"""Lemma 8 validation: min-degree law and its equivalence to k-connectivity.

Two claims are checked on the *same* Monte Carlo deployments:

1. ``P[min degree >= k]`` follows the limit law ``exp(-e^{-α}/(k-1)!)``
   (Lemma 8) — the upper-bound half of Theorem 1's proof;
2. the events ``{min degree >= k}`` and ``{k-connected}`` coincide with
   probability → 1 (their limits agree, so the symmetric difference
   must vanish) — measured directly as a per-deployment agreement rate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mindegree import min_degree_probability_poisson
from repro.core.scaling import channel_prob_for_alpha
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_agreement
from repro.utils.tables import format_table

__all__ = ["run_mindegree_equiv", "render_mindegree_equiv"]


def run_mindegree_equiv(
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3),
    alphas: Sequence[float] = (-1.0, 0.0, 1.5),
    num_nodes: int = 300,
    key_ring_size: int = 80,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170608,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Joint min-degree / k-connectivity sweep over (k, α).

    ``n = 300`` keeps the exact ``k = 3`` decision (Dinic/Even) cheap
    enough for hundreds of trials.
    """
    trials = trials if trials is not None else trials_from_env(60, full=300)
    points: List[CurvePoint] = []
    for k in ks:
        for alpha in alphas:
            p = channel_prob_for_alpha(
                num_nodes, key_ring_size, pool_size, q, alpha, k
            )
            params = QCompositeParams(
                num_nodes=num_nodes,
                key_ring_size=key_ring_size,
                pool_size=pool_size,
                overlap=q,
                channel_prob=p,
            )
            deg_est, conn_est, agreement = estimate_agreement(
                params,
                k,
                trials,
                seed=seed + 7 * k + int(alpha * 100),
                workers=workers,
            )
            # Primary estimate slot: the min-degree probability (Lemma 8's
            # statistic); connectivity and agreement ride in the point dict.
            points.append(
                CurvePoint(
                    point={
                        "k": k,
                        "alpha": alpha,
                        "p": p,
                        "kconn_estimate": conn_est.estimate,
                        "kconn_ci_low": conn_est.ci_low,
                        "kconn_ci_high": conn_est.ci_high,
                        "agreement": agreement,
                        "poisson_refined": min_degree_probability_poisson(params, k),
                    },
                    estimate=deg_est,
                    prediction=limit_probability(alpha, k),
                )
            )
    return ExperimentResult(
        name="mindegree_equiv",
        config={
            "trials": trials,
            "ks": list(ks),
            "alphas": list(alphas),
            "num_nodes": num_nodes,
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
        },
        points=points,
    )


def render_mindegree_equiv(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["k"]),
                pt.point["alpha"],
                pt.estimate.estimate,
                pt.point["kconn_estimate"],
                pt.point["agreement"],
                pt.prediction,
                pt.point["poisson_refined"],
            ]
        )
    return format_table(
        [
            "k",
            "alpha",
            "P[min deg>=k]",
            "P[k-conn]",
            "agreement",
            "limit law",
            "Poisson refined",
        ],
        rows,
        title=(
            "Lemma 8: min-degree law and equivalence with k-connectivity "
            f"(n={result.config['num_nodes']}, K={result.config['key_ring_size']}, "
            f"q={result.config['q']}, trials={result.config['trials']})"
        ),
    )
