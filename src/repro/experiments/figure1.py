"""Figure 1: empirical connectivity probability vs key ring size.

Reproduces the paper's only figure: the probability that
``G_{n,q}(n, K, P, p)`` is connected as a function of ``K`` for
``q ∈ {2, 3}`` and ``p ∈ {0.2, 0.5, 1}``, at ``n = 1000``,
``P = 10000``.  The paper averages 500 Monte Carlo experiments per
point; the quick default here is 60 (``REPRO_TRIALS`` overrides,
``REPRO_FULL=1`` selects 500).

Each point also carries the Theorem 1 prediction
``exp(-e^{-α_n})`` evaluated at the *exact* deviation ``α_n``, so the
rendered output shows the asymptotic law tracking the empirical curve —
the paper's central claim — and the analysis helper extracts where each
empirical curve crosses ``e^{-1}`` (the α = 0 level) for comparison
against the Eq. (9) thresholds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.theorem1 import predict_k_connectivity
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_connectivity
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = [
    "FIGURE1_CURVES",
    "default_ring_sizes",
    "build_figure1_study",
    "run_figure1",
    "render_figure1",
    "empirical_crossings",
]

#: The six (q, p) curves of Figure 1, leftmost threshold first.
FIGURE1_CURVES: List[Tuple[int, float]] = [
    (2, 1.0),
    (2, 0.5),
    (2, 0.2),
    (3, 1.0),
    (3, 0.5),
    (3, 0.2),
]

NUM_NODES = 1000
POOL_SIZE = 10000


def default_ring_sizes(step: int = 4) -> List[int]:
    """The paper's K range 28..88 on a configurable grid."""
    return list(range(28, 89, step))


def build_figure1_study(
    trials: Optional[int] = None,
    ring_sizes: Optional[Sequence[int]] = None,
    curves: Optional[Sequence[Tuple[int, float]]] = None,
    seed: int = 20170605,
    num_nodes: int = NUM_NODES,
    pool_size: int = POOL_SIZE,
) -> Study:
    """Figure 1 as a declaration: one scenario, six curves, one metric."""
    trials = trials if trials is not None else trials_from_env(60, full=500)
    ring_sizes = list(ring_sizes) if ring_sizes is not None else default_ring_sizes()
    curves = list(curves) if curves is not None else list(FIGURE1_CURVES)
    return Study(
        (
            Scenario(
                name="figure1",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=tuple(ring_sizes),
                curves=tuple((int(q), float(p)) for q, p in curves),
                metrics=(MetricSpec("connectivity"),),
                trials=trials,
                seed=seed,
            ),
        )
    )


def run_figure1(
    trials: Optional[int] = None,
    ring_sizes: Optional[Sequence[int]] = None,
    curves: Optional[Sequence[Tuple[int, float]]] = None,
    seed: int = 20170605,
    workers: Optional[int] = None,
    num_nodes: int = NUM_NODES,
    pool_size: int = POOL_SIZE,
    backend: str = "study",
) -> ExperimentResult:
    """Run the Figure 1 sweep and return all points.

    The default ``"study"`` backend (alias ``"sweep"``) compiles the
    declaration from :func:`build_figure1_study` onto the shared-
    deployment sweep: one ring sample + overlap count per ``(K,
    trial)`` serves all curves via nested channel thinning, which is
    several times faster and couples the curves for lower-variance
    comparisons.  ``backend="legacy"`` runs the original per-point
    path, kept as an independent cross-check.

    The default seed is fixed so published EXPERIMENTS.md numbers are
    regenerable; pass a different seed for an independent replication.
    """
    trials = trials if trials is not None else trials_from_env(60, full=500)
    ring_sizes = list(ring_sizes) if ring_sizes is not None else default_ring_sizes()
    curves = list(curves) if curves is not None else list(FIGURE1_CURVES)
    if backend not in ("study", "sweep", "legacy"):
        raise ParameterError(
            f"unknown backend {backend!r}; use 'study', 'sweep', or 'legacy'"
        )

    curves = [(int(q), float(p)) for q, p in curves]
    if backend != "legacy":
        study = build_figure1_study(
            trials, ring_sizes, curves, seed, num_nodes, pool_size
        )
        scenario_result = study.run(workers=workers)["figure1"]

    points: List[CurvePoint] = []
    for q, p in curves:
        for ring in ring_sizes:
            params = QCompositeParams(
                num_nodes=num_nodes,
                key_ring_size=ring,
                pool_size=pool_size,
                overlap=q,
                channel_prob=p,
            )
            if backend != "legacy":
                estimate = scenario_result.bernoulli(
                    "connectivity", (q, p), ring
                )
            else:
                estimate = estimate_connectivity(
                    params, trials, seed=seed + ring + int(1000 * p) + 100000 * q,
                    workers=workers,
                )
            points.append(
                CurvePoint(
                    point={"q": q, "p": p, "K": ring},
                    estimate=estimate,
                    prediction=predict_k_connectivity(params, k=1).probability,
                )
            )
    return ExperimentResult(
        name="figure1",
        config={
            "num_nodes": num_nodes,
            "pool_size": pool_size,
            "trials": trials,
            "ring_sizes": list(ring_sizes),
            "curves": [list(c) for c in curves],
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def empirical_crossings(result: ExperimentResult) -> Dict[Tuple[int, float], float]:
    """Where each empirical curve crosses ``e^{-1}`` (linear interpolation).

    Theorem 1 places the α = 0 threshold exactly at probability
    ``e^{-1} ≈ 0.368``, so these crossings are the empirical analogue of
    the Eq. (9) ``K*`` values.
    """
    level = math.exp(-1.0)
    crossings: Dict[Tuple[int, float], float] = {}
    by_curve: Dict[Tuple[int, float], List[Tuple[int, float]]] = {}
    for pt in result.points:
        key = (int(pt.point["q"]), float(pt.point["p"]))
        by_curve.setdefault(key, []).append(
            (int(pt.point["K"]), pt.estimate.estimate)
        )
    for key, series in by_curve.items():
        series.sort()
        crossing = float("nan")
        for (k0, y0), (k1, y1) in zip(series, series[1:]):
            if y0 <= level <= y1 and y1 > y0:
                crossing = k0 + (level - y0) / (y1 - y0) * (k1 - k0)
                break
        crossings[key] = crossing
    return crossings


def render_figure1(result: ExperimentResult) -> str:
    """ASCII rendering: one table per curve plus the crossing summary."""
    blocks: List[str] = []
    by_curve: Dict[Tuple[int, float], List[CurvePoint]] = {}
    for pt in result.points:
        key = (int(pt.point["q"]), float(pt.point["p"]))
        by_curve.setdefault(key, []).append(pt)

    for (q, p), pts in sorted(by_curve.items()):
        pts.sort(key=lambda pt: pt.point["K"])
        rows = [
            [
                int(pt.point["K"]),
                pt.estimate.estimate,
                pt.estimate.ci_low,
                pt.estimate.ci_high,
                pt.prediction,
            ]
            for pt in pts
        ]
        blocks.append(
            format_table(
                ["K", "empirical", "ci_low", "ci_high", "theorem1"],
                rows,
                title=f"Figure 1 curve: q={q}, p={p} "
                f"(n={result.config['num_nodes']}, "
                f"P={result.config['pool_size']}, "
                f"trials={result.config['trials']})",
            )
        )

    crossing_rows = [
        [q, p, xing]
        for (q, p), xing in sorted(empirical_crossings(result).items())
    ]
    blocks.append(
        format_table(
            ["q", "p", "empirical e^-1 crossing (K)"],
            crossing_rows,
            title="Empirical threshold locations",
            floatfmt=".1f",
        )
    )
    return "\n\n".join(blocks)
