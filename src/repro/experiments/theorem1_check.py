"""Validation of Theorem 1's asymptotically exact probability.

The sharpest test of Eq. (7) is to *fix the deviation* ``α`` and compare
the empirical k-connectivity probability against the closed form
``exp(-e^{-α}/(k-1)!)`` across a grid of α values spanning the
transition window.  For each α we keep ``(n, K, P, q)`` fixed and tune
the channel probability ``p`` so the exact edge probability lands on
Eq. (6) — the same knob the paper's proofs turn (Lemma 1).

Rendered output reports, per (k, α): empirical estimate, CI, the limit
law, and the finite-``n`` Poisson refinement of Lemma 8 (which should
fit even better, since at these ``n`` the limit's ``ln ln n`` terms
have not converged).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mindegree import min_degree_probability_poisson
from repro.core.scaling import channel_prob_for_alpha
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_k_connectivity
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_theorem1_study", "run_theorem1_check", "render_theorem1_check"]

DEFAULT_ALPHAS = (-2.0, -1.0, 0.0, 1.0, 2.0, 4.0)


def build_theorem1_study(
    trials: Optional[int] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    ks: Sequence[int] = (1, 2),
    num_nodes: int = 500,
    key_ring_size: int = 70,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170606,
    num_nodes_grid: Optional[Sequence[int]] = None,
) -> Study:
    """One scenario per ``k``; every α is one ``(q, p)`` curve.

    All scenarios pin the same deployment family ``(n, K, P, trials,
    seed)``, so the compiler samples each ``(K, trial)`` world once and
    every ``(k, α)`` point is a post-filter on it: common random
    numbers across the whole grid, and the ring sampling + overlap
    counting cost is paid once instead of ``len(ks) * len(alphas)``
    times.

    Passing ``num_nodes_grid`` turns the α sweep into a *growth* sweep:
    each per-``k`` scenario becomes a single size-grid declaration
    (``num_nodes`` is ignored) whose per-size curves re-solve the
    channel probability at every ``n``, so the convergence of the
    empirical probability toward the n-independent limit law is
    measured on one shared-deployment plan per ``k``.
    """
    trials = trials if trials is not None else trials_from_env(80, full=400)
    scenarios = []
    for k in ks:
        if num_nodes_grid is not None:
            curve_grid = tuple(
                tuple(
                    (q, channel_prob_for_alpha(n, key_ring_size, pool_size, q, alpha, k))
                    for alpha in alphas
                )
                for n in num_nodes_grid
            )
            scenarios.append(
                Scenario(
                    name=f"theorem1_k{k}",
                    num_nodes_grid=tuple(num_nodes_grid),
                    pool_size=pool_size,
                    ring_sizes=(key_ring_size,),
                    curves=curve_grid,
                    metrics=(MetricSpec("k_connectivity", k=k),),
                    trials=trials,
                    seed=seed,
                )
            )
            continue
        curves = tuple(
            (q, channel_prob_for_alpha(num_nodes, key_ring_size, pool_size, q, alpha, k))
            for alpha in alphas
        )
        scenarios.append(
            Scenario(
                name=f"theorem1_k{k}",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(key_ring_size,),
                curves=curves,
                metrics=(MetricSpec("k_connectivity", k=k),),
                trials=trials,
                seed=seed,
            )
        )
    return Study(tuple(scenarios))


def run_theorem1_check(
    trials: Optional[int] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    ks: Sequence[int] = (1, 2),
    num_nodes: int = 500,
    key_ring_size: int = 70,
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170606,
    workers: Optional[int] = None,
    backend: str = "study",
    num_nodes_grid: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Sweep α at fixed (n, K, P, q), tuning p; estimate P[k-connected].

    The default ``"study"`` backend rides the shared-deployment sweep
    (see :func:`build_theorem1_study`); ``backend="legacy"`` keeps the
    original independent-per-point sampling as a cross-check.  The
    default ``n = 500`` keeps the exact k-connectivity decision
    affordable for ``k = 2``; the bench scales ``n`` and trials via the
    usual environment knobs.  ``num_nodes_grid`` swaps the single ``n``
    for a growth sweep over the size axis (one sized declaration per
    ``k``); each point then also carries its ``n``.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(80, full=400)
    if backend == "study":
        study = build_theorem1_study(
            trials, alphas, ks, num_nodes, key_ring_size, pool_size, q, seed,
            num_nodes_grid=num_nodes_grid,
        )
        study_result = study.run(workers=workers)
    sizes = (num_nodes,) if num_nodes_grid is None else tuple(num_nodes_grid)
    points: List[CurvePoint] = []
    for k in ks:
        for n in sizes:
            for alpha in alphas:
                p = channel_prob_for_alpha(
                    n, key_ring_size, pool_size, q, alpha, k
                )
                params = QCompositeParams(
                    num_nodes=n,
                    key_ring_size=key_ring_size,
                    pool_size=pool_size,
                    overlap=q,
                    channel_prob=p,
                )
                if backend == "study":
                    estimate = study_result[f"theorem1_k{k}"].bernoulli(
                        f"k_connectivity[k={k}]",
                        (q, p),
                        key_ring_size,
                        size=n if num_nodes_grid is not None else None,
                    )
                else:
                    estimate = estimate_k_connectivity(
                        params,
                        k,
                        trials,
                        seed=seed + int(alpha * 10) + 1000 * k
                        + (100 * n if num_nodes_grid is not None else 0),
                        workers=workers,
                    )
                point = {
                    "k": k,
                    "alpha": alpha,
                    "channel_prob": p,
                    "poisson_refined": min_degree_probability_poisson(params, k),
                }
                if num_nodes_grid is not None:
                    point["n"] = n
                points.append(
                    CurvePoint(
                        point=point,
                        estimate=estimate,
                        prediction=limit_probability(alpha, k),
                    )
                )
    return ExperimentResult(
        name="theorem1_check",
        config={
            "num_nodes": num_nodes,
            "num_nodes_grid": None if num_nodes_grid is None else list(num_nodes_grid),
            "key_ring_size": key_ring_size,
            "pool_size": pool_size,
            "q": q,
            "trials": trials,
            "alphas": list(alphas),
            "ks": list(ks),
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_theorem1_check(result: ExperimentResult) -> str:
    sized = result.points and "n" in result.points[0].point
    rows = []
    for pt in result.points:
        row = [
            int(pt.point["k"]),
            pt.point["alpha"],
            pt.point["channel_prob"],
            pt.estimate.estimate,
            pt.estimate.ci_low,
            pt.estimate.ci_high,
            pt.prediction,
            pt.point["poisson_refined"],
        ]
        if sized:
            row.insert(1, int(pt.point["n"]))
        rows.append(row)
    headers = [
        "k",
        "alpha",
        "p",
        "empirical",
        "ci_low",
        "ci_high",
        "limit law",
        "Poisson refined",
    ]
    if sized:
        headers.insert(1, "n")
        sizing = f"n grid={result.config['num_nodes_grid']}"
    else:
        sizing = f"n={result.config['num_nodes']}"
    return format_table(
        headers,
        rows,
        title=(
            "Theorem 1 exact-probability validation "
            f"({sizing}, K={result.config['key_ring_size']}, "
            f"P={result.config['pool_size']}, q={result.config['q']}, "
            f"trials={result.config['trials']})"
        ),
    )
