"""Experiment registry: names → Scenario/Study declarations + renderers.

Single source of truth used by the CLI (``python -m repro``) and by the
benchmark harness, so "every table and figure" is enumerable in one
place.  Since the Scenario/Study redesign, a registered Monte Carlo
experiment is a *declaration*: its ``build_study`` callable maps the
experiment's keyword arguments to a :class:`repro.study.Study` (a set
of frozen, JSON-round-trippable scenarios), its ``run`` callable
executes that study through the shared-deployment compiler and
interprets the :class:`~repro.study.StudyResult` into the experiment's
:class:`~repro.simulation.results.ExperimentResult`, and ``render``
formats the tables.  The bespoke per-point sampling loops the modules
used to carry survive only as ``backend="legacy"`` cross-checks.

Experiment kinds:

* ``"study"`` — Monte Carlo, declared as scenarios over the study
  compiler (all experiments except ``kstar``).
* ``"numeric"`` — purely analytic, no sampling (``kstar``).

To run a workload that is not registered here, write the scenarios as
JSON and use ``repro study FILE.json`` — no Python required.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.simulation.results import ExperimentResult

__all__ = ["ExperimentSpec", "REGISTRY", "get_experiment", "list_experiments"]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment with its paper anchor.

    ``build_study`` exposes the declaration itself (``None`` for
    numeric experiments): callers can compile, inspect, merge, or
    serialize the scenarios without running anything.
    """

    name: str
    paper_anchor: str
    description: str
    run: Callable[..., ExperimentResult]
    render: Callable[[ExperimentResult], str]
    kind: str = "study"
    build_study: Optional[Callable] = None


def _build_registry() -> Dict[str, ExperimentSpec]:
    from repro.experiments import (
        attack_tradeoff,
        coupling_check,
        degree_poisson,
        disk_comparison,
        figure1,
        giant_component,
        het_mindegree,
        het_zero_one,
        kstar,
        mindegree_equiv,
        resilience,
        theorem1_check,
        zero_one,
    )

    specs = [
        ExperimentSpec(
            name="figure1",
            paper_anchor="Figure 1 (Section IV)",
            description="Empirical P[connected] vs K for six (q, p) curves.",
            run=figure1.run_figure1,
            render=figure1.render_figure1,
            build_study=figure1.build_figure1_study,
        ),
        ExperimentSpec(
            name="kstar",
            paper_anchor="Eq. (9) thresholds (Section IV, in-text)",
            description="Minimal K* clearing ln n / n, exact vs asymptotic.",
            run=kstar.run_kstar,
            render=kstar.render_kstar,
            kind="numeric",
        ),
        ExperimentSpec(
            name="theorem1",
            paper_anchor="Theorem 1, Eqs. (7)-(8)",
            description="Empirical P[k-connected] vs exp(-e^-a/(k-1)!) on an α grid.",
            run=theorem1_check.run_theorem1_check,
            render=theorem1_check.render_theorem1_check,
            build_study=theorem1_check.build_theorem1_study,
        ),
        ExperimentSpec(
            name="zero_one",
            paper_anchor="Theorem 1 zero-one law, Eqs. (8b)-(8c)",
            description="Transition sharpening toward 0/1 as n grows at fixed ±α.",
            run=zero_one.run_zero_one,
            render=zero_one.render_zero_one,
            build_study=zero_one.build_zero_one_study,
        ),
        ExperimentSpec(
            name="mindegree",
            paper_anchor="Lemma 8 (Section VIII)",
            description="Min-degree law and per-sample equivalence with k-connectivity.",
            run=mindegree_equiv.run_mindegree_equiv,
            render=mindegree_equiv.render_mindegree_equiv,
            build_study=mindegree_equiv.build_mindegree_study,
        ),
        ExperimentSpec(
            name="het_zero_one",
            paper_anchor="Section IX extension (Eletreby-Yagan class mix)",
            description="Heterogeneous zero-one law: class-mix sharpening at fixed ±α.",
            run=het_zero_one.run_het_zero_one,
            render=het_zero_one.render_het_zero_one,
            build_study=het_zero_one.build_het_zero_one_study,
        ),
        ExperimentSpec(
            name="het_mindegree",
            paper_anchor="Section IX extension (Eletreby-Yagan class mix, Lemma 8)",
            description="Heterogeneous min-degree law and k-connectivity equivalence.",
            run=het_mindegree.run_het_mindegree,
            render=het_mindegree.render_het_mindegree,
            build_study=het_mindegree.build_het_mindegree_study,
        ),
        ExperimentSpec(
            name="degree_poisson",
            paper_anchor="Lemma 9 (Section VIII)",
            description="Poisson law for the number of degree-h nodes.",
            run=degree_poisson.run_degree_poisson,
            render=degree_poisson.render_degree_poisson,
            build_study=degree_poisson.build_degree_poisson_study,
        ),
        ExperimentSpec(
            name="coupling",
            paper_anchor="Lemmas 5-6 (Section VII)",
            description="Binomial-ring coupling success and subset validity.",
            run=coupling_check.run_coupling_check,
            render=coupling_check.render_coupling_check,
            build_study=coupling_check.build_coupling_study,
        ),
        ExperimentSpec(
            name="attack",
            paper_anchor="Section I motivation (Chan et al. tradeoff)",
            description="Capture-attack compromise fraction vs q, simulated + analytic.",
            run=attack_tradeoff.run_attack_tradeoff,
            render=attack_tradeoff.render_attack_tradeoff,
            build_study=attack_tradeoff.build_attack_study,
        ),
        ExperimentSpec(
            name="disk",
            paper_anchor="Section IX open question",
            description="Disk vs on/off channels at matched edge probability.",
            run=disk_comparison.run_disk_comparison,
            render=disk_comparison.render_disk_comparison,
            build_study=disk_comparison.build_disk_study,
        ),
        ExperimentSpec(
            name="giant",
            paper_anchor="Section IX related work (component evolution)",
            description="Giant-component emergence vs the ER branching limit.",
            run=giant_component.run_giant_component,
            render=giant_component.render_giant_component,
            build_study=giant_component.build_giant_study,
        ),
        ExperimentSpec(
            name="resilience",
            paper_anchor="Section IX related work (capture resilience, ref. [36])",
            description="Connectivity over uncompromised links after capture.",
            run=resilience.run_resilience,
            render=resilience.render_resilience,
            build_study=resilience.build_resilience_study,
        ),
    ]
    return {spec.name: spec for spec in specs}


REGISTRY: Dict[str, ExperimentSpec] = _build_registry()


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name; raise with suggestions if unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ExperimentError(f"unknown experiment {name!r}; known: {known}")


def list_experiments() -> List[ExperimentSpec]:
    """All experiments in registration order."""
    return list(REGISTRY.values())
