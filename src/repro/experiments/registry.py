"""Experiment registry: names → (runner, renderer).

Single source of truth used by the CLI (``python -m repro``) and by the
benchmark harness, so "every table and figure" is enumerable in one
place.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.exceptions import ExperimentError
from repro.simulation.results import ExperimentResult

__all__ = ["ExperimentSpec", "REGISTRY", "get_experiment", "list_experiments"]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment with its paper anchor."""

    name: str
    paper_anchor: str
    description: str
    run: Callable[..., ExperimentResult]
    render: Callable[[ExperimentResult], str]


def _build_registry() -> Dict[str, ExperimentSpec]:
    from repro.experiments import (
        attack_tradeoff,
        coupling_check,
        degree_poisson,
        disk_comparison,
        figure1,
        giant_component,
        kstar,
        mindegree_equiv,
        resilience,
        theorem1_check,
        zero_one,
    )

    specs = [
        ExperimentSpec(
            name="figure1",
            paper_anchor="Figure 1 (Section IV)",
            description="Empirical P[connected] vs K for six (q, p) curves.",
            run=figure1.run_figure1,
            render=figure1.render_figure1,
        ),
        ExperimentSpec(
            name="kstar",
            paper_anchor="Eq. (9) thresholds (Section IV, in-text)",
            description="Minimal K* clearing ln n / n, exact vs asymptotic.",
            run=kstar.run_kstar,
            render=kstar.render_kstar,
        ),
        ExperimentSpec(
            name="theorem1",
            paper_anchor="Theorem 1, Eqs. (7)-(8)",
            description="Empirical P[k-connected] vs exp(-e^-a/(k-1)!) on an α grid.",
            run=theorem1_check.run_theorem1_check,
            render=theorem1_check.render_theorem1_check,
        ),
        ExperimentSpec(
            name="zero_one",
            paper_anchor="Theorem 1 zero-one law, Eqs. (8b)-(8c)",
            description="Transition sharpening toward 0/1 as n grows at fixed ±α.",
            run=zero_one.run_zero_one,
            render=zero_one.render_zero_one,
        ),
        ExperimentSpec(
            name="mindegree",
            paper_anchor="Lemma 8 (Section VIII)",
            description="Min-degree law and per-sample equivalence with k-connectivity.",
            run=mindegree_equiv.run_mindegree_equiv,
            render=mindegree_equiv.render_mindegree_equiv,
        ),
        ExperimentSpec(
            name="degree_poisson",
            paper_anchor="Lemma 9 (Section VIII)",
            description="Poisson law for the number of degree-h nodes.",
            run=degree_poisson.run_degree_poisson,
            render=degree_poisson.render_degree_poisson,
        ),
        ExperimentSpec(
            name="coupling",
            paper_anchor="Lemmas 5-6 (Section VII)",
            description="Binomial-ring coupling success and subset validity.",
            run=coupling_check.run_coupling_check,
            render=coupling_check.render_coupling_check,
        ),
        ExperimentSpec(
            name="attack",
            paper_anchor="Section I motivation (Chan et al. tradeoff)",
            description="Capture-attack compromise fraction vs q, simulated + analytic.",
            run=attack_tradeoff.run_attack_tradeoff,
            render=attack_tradeoff.render_attack_tradeoff,
        ),
        ExperimentSpec(
            name="disk",
            paper_anchor="Section IX open question",
            description="Disk vs on/off channels at matched edge probability.",
            run=disk_comparison.run_disk_comparison,
            render=disk_comparison.render_disk_comparison,
        ),
        ExperimentSpec(
            name="giant",
            paper_anchor="Section IX related work (component evolution)",
            description="Giant-component emergence vs the ER branching limit.",
            run=giant_component.run_giant_component,
            render=giant_component.render_giant_component,
        ),
        ExperimentSpec(
            name="resilience",
            paper_anchor="Section IX related work (capture resilience, ref. [36])",
            description="Connectivity over uncompromised links after capture.",
            run=resilience.run_resilience,
            render=resilience.render_resilience,
        ),
    ]
    return {spec.name: spec for spec in specs}


REGISTRY: Dict[str, ExperimentSpec] = _build_registry()


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name; raise with suggestions if unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ExperimentError(f"unknown experiment {name!r}; known: {known}")


def list_experiments() -> List[ExperimentSpec]:
    """All experiments in registration order."""
    return list(REGISTRY.values())
