"""Heterogeneous zero–one law: the class-mix transition sharpening.

The Eletreby–Yağan generalization (arXiv:1604.00460, 1908.09826) keeps
Theorem 1's shape under node classes: with per-class weights ``μ_i``,
ring sizes ``K_i``, and channel matrix ``α_ij``, the *minimum* of the
per-class mean edge probabilities ``λ_i = Σ_j μ_j α_ij s(K_i,K_j,P,q)``
takes the critical scaling, and at deviation ``α`` the connectivity
probability converges to ``exp(-μ_min e^{-α})`` — the homogeneous
limit diluted by the weight of the bottleneck class.

This experiment pins ``α`` at symmetric offsets across growing ``n``
exactly like the homogeneous ``zero_one`` check: the whole growth
sweep is *one* class-mix :class:`~repro.study.scenario.Scenario` whose
curves carry the per-``n`` channel *scale* ``c`` (a curve's ``p``
multiplies the whole ``α_ij`` matrix, so all offsets at one ``n`` ride
the same sampled worlds via nested thinning).  ``backend="legacy"``
re-estimates every ``(n, α)`` point with independent per-point
sampling of the heterogeneous model as a cross-check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.heterogeneous import (
    class_edge_probabilities,
    het_channel_scale_for_alpha,
    het_limit_probability,
)
from repro.exceptions import ParameterError
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_het_connectivity
from repro.study import ClassMix, MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = [
    "build_het_zero_one_study",
    "run_het_zero_one",
    "render_het_zero_one",
]

# Default two-class mix: an even split of lightly-keyed nodes with
# strong channels and heavily-keyed nodes with weak ones, so the
# bottleneck class is decided by the full λ computation rather than by
# any single parameter.
_MU = (0.5, 0.5)
_RING_SIZES = (30, 60)
_CHANNEL_PROBS = ((0.8, 0.5), (0.5, 0.3))


def build_het_zero_one_study(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    ring_sizes: Sequence[int] = _RING_SIZES,
    mu: Sequence[float] = _MU,
    channel_probs: Sequence[Sequence[float]] = _CHANNEL_PROBS,
    q: int = 1,
    seed: int = 20190826,
) -> Study:
    """One class-mix scenario spanning the whole ``(n, α)`` grid.

    The per-class ring sizes are shared by every ``n``; the curves are
    per-size, each carrying the scalar channel scale that places the
    bottleneck class ``λ_min`` at deviation ``α`` for that ``n``.
    """
    trials = trials if trials is not None else trials_from_env(60, full=400)
    curve_grid = []
    for n in num_nodes_grid:
        curve_grid.append(
            tuple(
                (
                    q,
                    het_channel_scale_for_alpha(
                        n, ring_sizes, pool_size, q, mu, channel_probs, alpha, k=1
                    ),
                )
                for alpha in alpha_offsets
            )
        )
    return Study(
        (
            Scenario(
                name="het_zero_one",
                num_nodes_grid=tuple(num_nodes_grid),
                pool_size=pool_size,
                ring_sizes=(tuple(ring_sizes),),
                curves=tuple(curve_grid),
                metrics=(MetricSpec("connectivity"),),
                trials=trials,
                seed=seed,
                classes=ClassMix(
                    mu=tuple(mu),
                    channel_probs=tuple(tuple(row) for row in channel_probs),
                ),
            ),
        )
    )


def run_het_zero_one(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    ring_sizes: Sequence[int] = _RING_SIZES,
    mu: Sequence[float] = _MU,
    channel_probs: Sequence[Sequence[float]] = _CHANNEL_PROBS,
    q: int = 1,
    seed: int = 20190826,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Estimate P[connected] of the class mix at fixed ±α across ``n``.

    The default ``"study"`` backend runs the single class-mix scenario
    of :func:`build_het_zero_one_study` — every ``n`` is a size-axis
    entry, all α offsets at one ``n`` are curves of the same sampled
    worlds (one uniform per candidate edge thresholded at
    ``c · α_ij``), so the ±α comparison uses common random numbers.
    ``backend="legacy"`` re-estimates every point with independent
    per-point sampling (:func:`~repro.simulation.runners.
    estimate_het_connectivity`) as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(
            f"unknown backend {backend!r}; use 'study' or 'legacy'"
        )
    trials = trials if trials is not None else trials_from_env(60, full=400)
    study = build_het_zero_one_study(
        trials,
        num_nodes_grid,
        alpha_offsets,
        pool_size,
        ring_sizes,
        mu,
        channel_probs,
        q,
        seed,
    )
    scenario = study.scenarios[0]
    if backend == "study":
        scenario_result = study.run(workers=workers)["het_zero_one"]
    lambdas = class_edge_probabilities(ring_sizes, pool_size, q, mu, channel_probs)
    mu_min = float(mu[min(range(len(lambdas)), key=lambdas.__getitem__)])
    ring_entry = scenario.ring_sizes_at(0)[0]
    points: List[CurvePoint] = []
    for si, n in enumerate(num_nodes_grid):
        for alpha, (_, scale) in zip(alpha_offsets, scenario.curves_at(si)):
            if backend == "study":
                estimate = scenario_result.bernoulli(
                    "connectivity", (q, scale), ring_entry, size=n
                )
            else:
                scaled: Tuple[Tuple[float, ...], ...] = tuple(
                    tuple(scale * a for a in row) for row in channel_probs
                )
                estimate = estimate_het_connectivity(
                    n,
                    pool_size,
                    tuple(int(k) for k in ring_sizes),
                    tuple(float(m) for m in mu),
                    scaled,
                    q,
                    trials,
                    seed=seed + 100 * n + int(alpha * 10) + 50,
                    workers=workers,
                )
            points.append(
                CurvePoint(
                    point={"n": n, "alpha": alpha, "scale": scale},
                    estimate=estimate,
                    prediction=het_limit_probability(alpha, mu_min, 1),
                )
            )
    return ExperimentResult(
        name="het_zero_one",
        config={
            "trials": trials,
            "num_nodes_grid": list(num_nodes_grid),
            "alpha_offsets": list(alpha_offsets),
            "pool_size": pool_size,
            "ring_sizes": list(ring_sizes),
            "mu": list(mu),
            "channel_probs": [list(row) for row in channel_probs],
            "lambdas": list(lambdas),
            "mu_min": mu_min,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_het_zero_one(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["n"]),
                pt.point["alpha"],
                pt.point["scale"],
                pt.estimate.trials,
                pt.estimate.estimate,
                pt.prediction,
            ]
        )
    return format_table(
        ["n", "alpha", "scale", "trials", "empirical", "het limit"],
        rows,
        title=(
            "Heterogeneous zero-one law "
            f"(K={result.config['ring_sizes']}, mu={result.config['mu']}, "
            f"q={result.config['q']}, trials={result.config['trials']})"
        ),
    )
