"""The q-composite capture-attack tradeoff (paper Section I motivation).

Chan et al.'s original rationale, restated in this paper's
introduction: raising ``q`` strengthens the network against small
capture attacks but weakens it against large ones.  The tradeoff only
appears at *equalized connectivity*: at fixed ``K`` a larger overlap
requirement strictly hardens every link, but clearing the same
connectivity threshold with larger ``q`` forces a larger ring ``K*(q)``
(Eq. 9), and the larger rings leak more of the pool per captured node.
This experiment therefore assigns each ``q`` its own Eq. (9) ring size
and sweeps the number of captured nodes, comparing the simulated
fraction of compromised external links against the analytic
Chan–Perrig–Song estimate.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.keygraphs.schemes import QCompositeScheme
from repro.simulation.engine import run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table
from repro.wsn.attacks import analytic_compromise_fraction, capture_attack
from repro.wsn.network import SecureWSN

__all__ = [
    "build_attack_study",
    "run_attack_tradeoff",
    "render_attack_tradeoff",
    "attack_trial",
]


def attack_trial(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    num_captured: int,
    rng: np.random.Generator,
) -> Tuple[int, int]:
    """One deployment + attack → (links compromised, links evaluated)."""
    scheme = QCompositeScheme(key_ring_size, pool_size, q)
    network = SecureWSN(num_nodes, scheme, OnOffChannel(1.0), seed=rng)
    outcome = capture_attack(network, num_captured, seed=rng)
    return (outcome.links_compromised, outcome.links_evaluated)


def build_attack_study(
    trials: Optional[int] = None,
    qs: Sequence[int] = (1, 2, 3),
    captured_grid: Sequence[int] = (10, 50, 100, 200),
    num_nodes: int = 400,
    design_nodes: int = 1000,
    pool_size: int = 10000,
    seed: int = 20170611,
) -> Study:
    """One scenario per ``q``; the capture grid is a nested metric set.

    Within a deployment the captured sets at increasing levels are
    prefixes of one random permutation, so the tradeoff curve over
    ``#captured`` is monotone per sampled world — common random numbers
    along the attack axis, exactly as nested thinning provides them
    along the channel axis.
    """
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(20, full=100)
    scenarios = []
    for q in qs:
        ring = minimal_key_ring_size(design_nodes, pool_size, q, 1.0)
        metrics = []
        for captured in captured_grid:
            metrics.append(MetricSpec("attack_compromised", captured=captured))
            metrics.append(MetricSpec("attack_evaluated", captured=captured))
        scenarios.append(
            Scenario(
                name=f"attack_q{q}",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(ring,),
                curves=((q, 1.0),),
                metrics=tuple(metrics),
                trials=trials,
                seed=seed,
            )
        )
    return Study(tuple(scenarios))


def run_attack_tradeoff(
    trials: Optional[int] = None,
    qs: Sequence[int] = (1, 2, 3),
    captured_grid: Sequence[int] = (10, 50, 100, 200),
    num_nodes: int = 400,
    design_nodes: int = 1000,
    pool_size: int = 10000,
    seed: int = 20170611,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Sweep (q, #captured) at connectivity-equalized ring sizes.

    Each ``q`` uses its own ``K*(q)`` — the Eq. (9) minimal ring for the
    *design* network size (``design_nodes``; the attack simulation runs
    on ``num_nodes`` sensors since the per-link compromise statistics do
    not depend on ``n``).  ``backend="legacy"`` keeps the original
    SecureWSN-based per-point attack simulation as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(20, full=100)
    ring_sizes = {
        q: minimal_key_ring_size(design_nodes, pool_size, q, 1.0) for q in qs
    }
    if backend == "study":
        study = build_attack_study(
            trials, qs, captured_grid, num_nodes, design_nodes, pool_size, seed
        )
        study_result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for q in qs:
        ring = ring_sizes[q]
        for captured in captured_grid:
            if backend == "study":
                scenario_result = study_result[f"attack_q{q}"]
                compromised = scenario_result.successes(
                    f"attack_compromised[captured={captured}]", (q, 1.0), ring
                )
                evaluated = scenario_result.successes(
                    f"attack_evaluated[captured={captured}]", (q, 1.0), ring
                )
            else:
                outcomes = run_trials(
                    functools.partial(
                        attack_trial, num_nodes, ring, pool_size, q, captured
                    ),
                    trials,
                    seed=seed + q * 1000 + captured,
                    workers=workers,
                )
                compromised = sum(c for c, _ in outcomes)
                evaluated = sum(e for _, e in outcomes)
            analytic = analytic_compromise_fraction(ring, pool_size, q, captured)
            points.append(
                CurvePoint(
                    point={
                        "q": q,
                        "K": ring,
                        "captured": captured,
                        "links_evaluated": evaluated,
                    },
                    estimate=BernoulliEstimate.from_counts(
                        compromised, max(evaluated, 1)
                    ),
                    prediction=analytic,
                )
            )
    return ExperimentResult(
        name="attack_tradeoff",
        config={
            "trials": trials,
            "qs": list(qs),
            "ring_sizes": {str(q): ring_sizes[q] for q in qs},
            "captured_grid": list(captured_grid),
            "num_nodes": num_nodes,
            "design_nodes": design_nodes,
            "pool_size": pool_size,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_attack_tradeoff(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["q"]),
                int(pt.point["K"]),
                int(pt.point["captured"]),
                pt.estimate.estimate,
                pt.prediction,
                int(pt.point["links_evaluated"]),
            ]
        )
    return format_table(
        ["q", "K*(q)", "captured", "compromised frac (emp)", "analytic", "links"],
        rows,
        title=(
            "q-composite capture-attack tradeoff at equalized connectivity "
            f"(n={result.config['num_nodes']}, P={result.config['pool_size']}, "
            f"trials={result.config['trials']})"
        ),
    )
