"""Heterogeneous min-degree law and its k-connectivity equivalence.

Lemma 8's two claims, transferred to the Eletreby–Yağan class mix and
checked on the *same* Monte Carlo deployments:

1. ``P[min degree >= k]`` follows the heterogeneous limit law
   ``exp(-μ_min e^{-α}/(k-1)!)`` when the bottleneck class ``λ_min``
   sits at deviation ``α`` of the k-threshold scaling;
2. the events ``{min degree >= k}`` and ``{k-connected}`` still
   coincide with probability → 1 — measured as a per-deployment
   agreement rate, exactly like the homogeneous ``mindegree``
   experiment.

One class-mix scenario per ``k`` shares the deployment family (same
labels, rings, overlap counts, and channel uniforms), so the whole
``(k, α)`` grid pays for sampling once.  ``backend="legacy"`` keeps
independent per-point sampling of the heterogeneous model as a
cross-check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.heterogeneous import (
    class_edge_probabilities,
    het_channel_scale_for_alpha,
    het_limit_probability,
)
from repro.exceptions import ParameterError
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_het_agreement
from repro.study import ClassMix, MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = [
    "build_het_mindegree_study",
    "run_het_mindegree",
    "render_het_mindegree",
]

_MU = (0.5, 0.5)
_RING_SIZES = (30, 60)
_CHANNEL_PROBS = ((0.8, 0.5), (0.5, 0.3))


def build_het_mindegree_study(
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2),
    alphas: Sequence[float] = (-1.0, 0.0, 1.5),
    num_nodes: int = 300,
    pool_size: int = 10000,
    ring_sizes: Sequence[int] = _RING_SIZES,
    mu: Sequence[float] = _MU,
    channel_probs: Sequence[Sequence[float]] = _CHANNEL_PROBS,
    q: int = 1,
    seed: int = 20190827,
) -> Study:
    """One class-mix scenario per ``k`` with both Lemma 8 metrics.

    All scenarios share ``(n, P, rings, trials, seed, classes)``, so
    they group onto one deployment family: min-degree and
    k-connectivity are measured on the same sampled worlds across the
    whole ``(k, α)`` grid.
    """
    trials = trials if trials is not None else trials_from_env(60, full=300)
    mix = ClassMix(
        mu=tuple(mu),
        channel_probs=tuple(tuple(row) for row in channel_probs),
    )
    scenarios = []
    for k in ks:
        curves = tuple(
            (
                q,
                het_channel_scale_for_alpha(
                    num_nodes, ring_sizes, pool_size, q, mu, channel_probs, alpha, k
                ),
            )
            for alpha in alphas
        )
        scenarios.append(
            Scenario(
                name=f"het_mindegree_k{k}",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(tuple(ring_sizes),),
                curves=curves,
                metrics=(
                    MetricSpec("min_degree", k=k),
                    MetricSpec("k_connectivity", k=k),
                ),
                trials=trials,
                seed=seed,
                classes=mix,
            )
        )
    return Study(tuple(scenarios))


def run_het_mindegree(
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2),
    alphas: Sequence[float] = (-1.0, 0.0, 1.5),
    num_nodes: int = 300,
    pool_size: int = 10000,
    ring_sizes: Sequence[int] = _RING_SIZES,
    mu: Sequence[float] = _MU,
    channel_probs: Sequence[Sequence[float]] = _CHANNEL_PROBS,
    q: int = 1,
    seed: int = 20190827,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Joint heterogeneous min-degree / k-connectivity sweep over (k, α)."""
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(60, full=300)
    study = build_het_mindegree_study(
        trials,
        ks,
        alphas,
        num_nodes,
        pool_size,
        ring_sizes,
        mu,
        channel_probs,
        q,
        seed,
    )
    if backend == "study":
        study_result = study.run(workers=workers)
    lambdas = class_edge_probabilities(ring_sizes, pool_size, q, mu, channel_probs)
    mu_min = float(mu[min(range(len(lambdas)), key=lambdas.__getitem__)])
    ring_entry = study.scenarios[0].ring_sizes_at(0)[0]
    points: List[CurvePoint] = []
    for ki, k in enumerate(ks):
        for ai, alpha in enumerate(alphas):
            scale = het_channel_scale_for_alpha(
                num_nodes, ring_sizes, pool_size, q, mu, channel_probs, alpha, k
            )
            if backend == "study":
                scenario_result = study_result[f"het_mindegree_k{k}"]
                deg_est = scenario_result.bernoulli(
                    f"min_degree[k={k}]", (q, scale), ring_entry
                )
                conn_est = scenario_result.bernoulli(
                    f"k_connectivity[k={k}]", (q, scale), ring_entry
                )
                agreement = scenario_result.agreement(
                    f"min_degree[k={k}]",
                    f"k_connectivity[k={k}]",
                    (q, scale),
                    ring_entry,
                )
            else:
                scaled: Tuple[Tuple[float, ...], ...] = tuple(
                    tuple(scale * a for a in row) for row in channel_probs
                )
                deg_est, conn_est, agreement = estimate_het_agreement(
                    num_nodes,
                    pool_size,
                    tuple(int(r) for r in ring_sizes),
                    tuple(float(m) for m in mu),
                    scaled,
                    q,
                    k,
                    trials,
                    seed=seed + ki * len(alphas) + ai,
                    workers=workers,
                )
            points.append(
                CurvePoint(
                    point={
                        "k": k,
                        "alpha": alpha,
                        "scale": scale,
                        "kconn_estimate": conn_est.estimate,
                        "kconn_ci_low": conn_est.ci_low,
                        "kconn_ci_high": conn_est.ci_high,
                        "agreement": agreement,
                    },
                    estimate=deg_est,
                    prediction=het_limit_probability(alpha, mu_min, k),
                )
            )
    return ExperimentResult(
        name="het_mindegree",
        config={
            "trials": trials,
            "ks": list(ks),
            "alphas": list(alphas),
            "num_nodes": num_nodes,
            "pool_size": pool_size,
            "ring_sizes": list(ring_sizes),
            "mu": list(mu),
            "channel_probs": [list(row) for row in channel_probs],
            "lambdas": list(lambdas),
            "mu_min": mu_min,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_het_mindegree(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["k"]),
                pt.point["alpha"],
                pt.estimate.estimate,
                pt.point["kconn_estimate"],
                pt.point["agreement"],
                pt.prediction,
            ]
        )
    return format_table(
        ["k", "alpha", "P[min deg>=k]", "P[k-conn]", "agreement", "het limit"],
        rows,
        title=(
            "Heterogeneous min-degree law and k-connectivity equivalence "
            f"(n={result.config['num_nodes']}, K={result.config['ring_sizes']}, "
            f"mu={result.config['mu']}, q={result.config['q']}, "
            f"trials={result.config['trials']})"
        ),
    )
