"""Resilient connectivity under capture attacks (paper ref [36] extension).

Sweeps the number of captured sensors and estimates, for each q (at
its connectivity-equalized ring size), the probability that the
*surviving* network stays connected using only uncompromised links —
versus the probability ignoring link compromise.  The gap between the
two columns is the price of key reuse: topology that survives
physically but cannot be trusted cryptographically.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.onoff import OnOffChannel
from repro.exceptions import ParameterError
from repro.keygraphs.schemes import QCompositeScheme
from repro.simulation.engine import run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table
from repro.wsn.network import SecureWSN
from repro.wsn.resilience import evaluate_resilience

__all__ = [
    "build_resilience_study",
    "run_resilience",
    "render_resilience",
    "resilience_trial",
]


def resilience_trial(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    channel_prob: float,
    num_captured: int,
    rng: np.random.Generator,
) -> Tuple[bool, bool, float]:
    """One deployment + attack → (resilient, plain-connected, comp. frac)."""
    scheme = QCompositeScheme(key_ring_size, pool_size, q)
    network = SecureWSN(num_nodes, scheme, OnOffChannel(channel_prob), seed=rng)
    outcome = evaluate_resilience(network, num_captured, seed=rng)
    return (
        outcome.resiliently_connected,
        outcome.connected_ignoring_compromise,
        outcome.compromise_fraction,
    )


def build_resilience_study(
    trials: Optional[int] = None,
    qs: Sequence[int] = (1, 2),
    captured_grid: Sequence[int] = (0, 20, 60, 120),
    num_nodes: int = 300,
    design_nodes: int = 300,
    pool_size: int = 5000,
    channel_prob: float = 0.9,
    seed: int = 20170614,
) -> Study:
    """One scenario per ``q``; capture levels are nested metric sets.

    Both connectivity notions and the link-compromise counts are
    derived from the same candidate-pair arrays of each deployment, so
    the "price of key reuse" gap is measured deployment-by-deployment.
    """
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(30, full=150)
    scenarios = []
    for q in qs:
        ring = minimal_key_ring_size(
            design_nodes, pool_size, q, channel_prob, target_probability=0.95
        )
        metrics = []
        for captured in captured_grid:
            metrics.append(MetricSpec("resilient_connectivity", captured=captured))
            metrics.append(MetricSpec("survivor_connectivity", captured=captured))
            metrics.append(MetricSpec("attack_compromised", captured=captured))
            metrics.append(MetricSpec("attack_evaluated", captured=captured))
        scenarios.append(
            Scenario(
                name=f"resilience_q{q}",
                num_nodes=num_nodes,
                pool_size=pool_size,
                ring_sizes=(ring,),
                curves=((q, channel_prob),),
                metrics=tuple(metrics),
                trials=trials,
                seed=seed,
            )
        )
    return Study(tuple(scenarios))


def run_resilience(
    trials: Optional[int] = None,
    qs: Sequence[int] = (1, 2),
    captured_grid: Sequence[int] = (0, 20, 60, 120),
    num_nodes: int = 300,
    design_nodes: int = 300,
    pool_size: int = 5000,
    channel_prob: float = 0.9,
    seed: int = 20170614,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Sweep (q, captured) and estimate both connectivity notions.

    Ring sizes are dimensioned per q for 0.95 connectivity of the
    *unattacked* network, so the captured=0 rows calibrate the columns.
    ``backend="legacy"`` keeps the original SecureWSN-based per-point
    evaluation as a cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(30, full=150)
    ring_sizes = {
        q: minimal_key_ring_size(
            design_nodes, pool_size, q, channel_prob, target_probability=0.95
        )
        for q in qs
    }
    if backend == "study":
        study = build_resilience_study(
            trials, qs, captured_grid, num_nodes, design_nodes, pool_size,
            channel_prob, seed,
        )
        study_result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for q in qs:
        ring = ring_sizes[q]
        for captured in captured_grid:
            if backend == "study":
                scenario_result = study_result[f"resilience_q{q}"]
                curve = (q, channel_prob)
                resilient_hits = scenario_result.successes(
                    f"resilient_connectivity[captured={captured}]", curve, ring
                )
                plain_hits = scenario_result.successes(
                    f"survivor_connectivity[captured={captured}]", curve, ring
                )
                comp = scenario_result.series(
                    f"attack_compromised[captured={captured}]", curve, ring
                )
                # attack_evaluated counts *all* surviving links between
                # alive nodes, compromised included, matching the
                # denominator of ResilienceOutcome.compromise_fraction.
                total = scenario_result.series(
                    f"attack_evaluated[captured={captured}]", curve, ring
                )
                fractions = np.where(total > 0, comp / np.maximum(total, 1), 0.0)
                mean_comp = float(fractions.mean())
            else:
                outcomes = run_trials(
                    functools.partial(
                        resilience_trial,
                        num_nodes,
                        ring,
                        pool_size,
                        q,
                        channel_prob,
                        captured,
                    ),
                    trials,
                    seed=seed + 31 * q + captured,
                    workers=workers,
                )
                resilient_hits = sum(1 for r, _, _ in outcomes if r)
                plain_hits = sum(1 for _, c, _ in outcomes if c)
                mean_comp = float(np.mean([f for _, _, f in outcomes]))
            points.append(
                CurvePoint(
                    point={
                        "q": q,
                        "K": ring,
                        "captured": captured,
                        "plain_connected": plain_hits / trials,
                        "mean_compromise_fraction": mean_comp,
                    },
                    estimate=BernoulliEstimate.from_counts(resilient_hits, trials),
                    prediction=None,
                )
            )
    return ExperimentResult(
        name="resilience",
        config={
            "trials": trials,
            "qs": list(qs),
            "ring_sizes": {str(q): ring_sizes[q] for q in qs},
            "captured_grid": list(captured_grid),
            "num_nodes": num_nodes,
            "pool_size": pool_size,
            "channel_prob": channel_prob,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_resilience(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["q"]),
                int(pt.point["K"]),
                int(pt.point["captured"]),
                pt.estimate.estimate,
                pt.point["plain_connected"],
                pt.point["mean_compromise_fraction"],
            ]
        )
    return format_table(
        [
            "q",
            "K",
            "captured",
            "P[resiliently conn.]",
            "P[conn., untrusted links ok]",
            "mean comp. frac",
        ],
        rows,
        title=(
            "Resilient connectivity under node capture "
            f"(n={result.config['num_nodes']}, P={result.config['pool_size']}, "
            f"p={result.config['channel_prob']}, trials={result.config['trials']})"
        ),
    )
