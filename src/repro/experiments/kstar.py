"""The Eq. (9) threshold table (paper Section IV, in-text).

Regenerates the six ``K*`` values — minimal ring size whose edge
probability exceeds ``ln n / n`` — under both evaluations of
``s(K, P, q)`` and sets them against the values the paper reports.
See :func:`repro.core.design.minimal_key_ring_size` for why the two
methods differ and which the paper evidently used.

With ``num_nodes_grid`` the experiment additionally runs its numeric
*scaling check* as one declaration over the size axis: ``K*`` is
recomputed per ``n`` for every ``(q, p)`` curve and compared against
the asymptotic prediction ``K* ≈ sqrt(P) · (q! · ln n / (p n))^{1/2q}``
(from ``p · (K²/P)^q / q! = ln n / n``).  Since ``ln n / n`` falls as
``n`` grows, ``K*`` must be non-increasing along the grid — the same
monotonicity Theorem 1's zero-one law rides.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.design import PAPER_REPORTED_KSTAR, paper_kstar_table
from repro.simulation.results import ExperimentResult
from repro.utils.tables import format_table

__all__ = ["run_kstar", "render_kstar"]


def _kstar_prediction(num_nodes: int, pool_size: int, q: int, p: float) -> float:
    """Asymptotic ``K*``: solve ``p (K²/P)^q / q! = ln n / n`` for ``K``."""
    target = math.log(num_nodes) / num_nodes
    return math.sqrt(pool_size) * (math.factorial(q) * target / p) ** (1.0 / (2 * q))


def run_kstar(
    num_nodes: int = 1000,
    pool_size: int = 10000,
    num_nodes_grid: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Compute the threshold table; purely numeric (no Monte Carlo).

    ``num_nodes_grid`` adds the growth sweep: one ``(n, q, p)`` point
    per grid size and curve, each carrying the exact and asymptotic
    ``K*`` plus the closed-form scaling prediction.
    """
    from repro.simulation.estimators import BernoulliEstimate
    from repro.simulation.results import CurvePoint

    exact = paper_kstar_table(num_nodes, pool_size, method="exact")
    asym = paper_kstar_table(num_nodes, pool_size, method="asymptotic")
    points = []

    for (q, p, k_exact), (_, _, k_asym), (_, _, k_paper) in zip(
        exact, asym, PAPER_REPORTED_KSTAR
    ):
        # Encode the three integers in the point dict; the estimate slot
        # is unused for this numeric table (1 trial, trivially "success").
        points.append(
            CurvePoint(
                point={
                    "q": q,
                    "p": p,
                    "kstar_exact": k_exact,
                    "kstar_asymptotic": k_asym,
                    "kstar_paper": k_paper,
                },
                estimate=BernoulliEstimate.from_counts(1, 1),
                prediction=None,
            )
        )
    if num_nodes_grid is not None:
        for n in num_nodes_grid:
            exact_n = paper_kstar_table(n, pool_size, method="exact")
            asym_n = paper_kstar_table(n, pool_size, method="asymptotic")
            for (q, p, k_exact), (_, _, k_asym) in zip(exact_n, asym_n):
                points.append(
                    CurvePoint(
                        point={
                            "n": n,
                            "q": q,
                            "p": p,
                            "kstar_exact": k_exact,
                            "kstar_asymptotic": k_asym,
                        },
                        estimate=BernoulliEstimate.from_counts(1, 1),
                        prediction=_kstar_prediction(n, pool_size, q, p),
                    )
                )
    return ExperimentResult(
        name="kstar",
        config={
            "num_nodes": num_nodes,
            "pool_size": pool_size,
            "num_nodes_grid": None if num_nodes_grid is None else list(num_nodes_grid),
        },
        points=points,
    )


def render_kstar(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    matches = 0
    table_points = [pt for pt in result.points if "n" not in pt.point]
    growth_points = [pt for pt in result.points if "n" in pt.point]
    for pt in table_points:
        q = int(pt.point["q"])
        p = float(pt.point["p"])
        k_exact = int(pt.point["kstar_exact"])
        k_asym = int(pt.point["kstar_asymptotic"])
        k_paper = int(pt.point["kstar_paper"])
        if k_asym == k_paper:
            matches += 1
        rows.append(
            [q, p, k_paper, k_asym, k_exact, abs(k_asym - k_paper)]
        )
    table = format_table(
        ["q", "p", "paper K*", "ours (asymptotic s)", "ours (exact s)", "|Δ| vs paper"],
        rows,
        title=(
            f"Eq. (9) thresholds, n={result.config['num_nodes']}, "
            f"P={result.config['pool_size']}"
        ),
        floatfmt=".1f",
    )
    note = (
        f"\nasymptotic-s column matches the paper on {matches}/6 rows "
        "(remaining rows differ by one integer step); the exact-s column "
        "is the literal Eq. (9) with the hypergeometric tail."
    )
    if growth_points:
        growth_rows = [
            [
                int(pt.point["n"]),
                int(pt.point["q"]),
                float(pt.point["p"]),
                int(pt.point["kstar_exact"]),
                int(pt.point["kstar_asymptotic"]),
                pt.prediction,
            ]
            for pt in growth_points
        ]
        by_curve: dict = {}
        for pt in growth_points:
            by_curve.setdefault((pt.point["q"], pt.point["p"]), []).append(
                (int(pt.point["n"]), int(pt.point["kstar_exact"]))
            )
        monotone = all(
            all(
                k_small >= k_big
                for (_, k_small), (_, k_big) in zip(pairs, pairs[1:])
            )
            for pairs in (sorted(v) for v in by_curve.values())
        )
        grid = result.config["num_nodes_grid"]
        growth = format_table(
            ["n", "q", "p", "K* (exact)", "K* (asymptotic)", "scaling prediction"],
            growth_rows,
            title=f"K* growth check over n grid={grid}, P={result.config['pool_size']}",
        )
        verdict = (
            "\nK* is non-increasing in n on every curve (ln n / n falls), "
            "as the scaling demands."
            if monotone
            else "\nWARNING: K* fails to decrease monotonically along the n grid."
        )
        note = note + "\n\n" + growth + verdict
    return table + note
