"""The Eq. (9) threshold table (paper Section IV, in-text).

Regenerates the six ``K*`` values — minimal ring size whose edge
probability exceeds ``ln n / n`` — under both evaluations of
``s(K, P, q)`` and sets them against the values the paper reports.
See :func:`repro.core.design.minimal_key_ring_size` for why the two
methods differ and which the paper evidently used.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.design import PAPER_REPORTED_KSTAR, paper_kstar_table
from repro.simulation.results import ExperimentResult
from repro.utils.tables import format_table

__all__ = ["run_kstar", "render_kstar"]


def run_kstar(num_nodes: int = 1000, pool_size: int = 10000) -> ExperimentResult:
    """Compute the threshold table; purely numeric (no Monte Carlo)."""
    exact = paper_kstar_table(num_nodes, pool_size, method="exact")
    asym = paper_kstar_table(num_nodes, pool_size, method="asymptotic")
    points = []
    from repro.simulation.estimators import BernoulliEstimate
    from repro.simulation.results import CurvePoint

    for (q, p, k_exact), (_, _, k_asym), (_, _, k_paper) in zip(
        exact, asym, PAPER_REPORTED_KSTAR
    ):
        # Encode the three integers in the point dict; the estimate slot
        # is unused for this numeric table (1 trial, trivially "success").
        points.append(
            CurvePoint(
                point={
                    "q": q,
                    "p": p,
                    "kstar_exact": k_exact,
                    "kstar_asymptotic": k_asym,
                    "kstar_paper": k_paper,
                },
                estimate=BernoulliEstimate.from_counts(1, 1),
                prediction=None,
            )
        )
    return ExperimentResult(
        name="kstar",
        config={"num_nodes": num_nodes, "pool_size": pool_size},
        points=points,
    )


def render_kstar(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    matches = 0
    for pt in result.points:
        q = int(pt.point["q"])
        p = float(pt.point["p"])
        k_exact = int(pt.point["kstar_exact"])
        k_asym = int(pt.point["kstar_asymptotic"])
        k_paper = int(pt.point["kstar_paper"])
        if k_asym == k_paper:
            matches += 1
        rows.append(
            [q, p, k_paper, k_asym, k_exact, abs(k_asym - k_paper)]
        )
    table = format_table(
        ["q", "p", "paper K*", "ours (asymptotic s)", "ours (exact s)", "|Δ| vs paper"],
        rows,
        title=(
            f"Eq. (9) thresholds, n={result.config['num_nodes']}, "
            f"P={result.config['pool_size']}"
        ),
        floatfmt=".1f",
    )
    note = (
        f"\nasymptotic-s column matches the paper on {matches}/6 rows "
        "(remaining rows differ by one integer step); the exact-s column "
        "is the literal Eq. (9) with the hypergeometric tail."
    )
    return table + note
