"""The zero–one law (Eqs. 8b–8c): sharpening with ``n``.

Theorem 1's zero–one clauses say the k-connectivity probability tends
to 0 for ``α_n → -∞`` and 1 for ``α_n → +∞``.  At finite ``n`` the law
manifests as a transition window around α = 0 that *narrows as n
grows*: this experiment pins α at symmetric offsets ±α₀ and shows the
empirical probabilities marching toward 0 and 1 as ``n`` increases,
alongside the n-independent limit values ``exp(-e^{∓α₀})``.

Since the study layer grew a size axis, the whole growth sweep is
*one* declaration: a single :class:`~repro.study.scenario.Scenario`
with ``num_nodes_grid``, per-size ring sizes (the minimal ``K``
clearing the largest α at each ``n``), and per-size curves (the
α-offset channel probabilities solved per ``n``).  Deployment
``(size, ring, trial)`` cells are seeded by ``SeedSequence(seed,
spawn_key=(size_index, ring_index, trial))``, so estimates are
bit-identical for any worker count; ``backend="legacy"`` keeps the
independent per-point sampling as a cross-check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scaling import channel_prob_for_alpha
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_k_connectivity
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_zero_one_study", "run_zero_one", "render_zero_one"]


def build_zero_one_study(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
) -> Study:
    """One sized scenario: the whole growth sweep as a single declaration.

    The ring size is chosen per ``n`` as the minimal ``K`` whose key
    graph clears the *largest* α in the grid at ``p = 1`` (plus
    margin), so the channel-probability solve stays within (0, 1] at
    every point; the ``±α`` offsets become per-size curves.
    """
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(80, full=500)
    top_target = limit_probability(max(alpha_offsets) + 0.25, 1)
    ring_grid = []
    curve_grid = []
    for n in num_nodes_grid:
        ring = minimal_key_ring_size(
            n, pool_size, q, 1.0, k=1, target_probability=min(top_target, 0.999)
        )
        ring_grid.append((ring,))
        curve_grid.append(
            tuple(
                (q, channel_prob_for_alpha(n, ring, pool_size, q, alpha, k=1))
                for alpha in alpha_offsets
            )
        )
    return Study(
        (
            Scenario(
                name="zero_one",
                num_nodes_grid=tuple(num_nodes_grid),
                pool_size=pool_size,
                ring_sizes=tuple(ring_grid),
                curves=tuple(curve_grid),
                metrics=(MetricSpec("connectivity"),),
                trials=trials,
                seed=seed,
            ),
        )
    )


def run_zero_one(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
    workers: Optional[int] = None,
    backend: str = "study",
) -> ExperimentResult:
    """Estimate P[connected] at fixed ±α across growing ``n``.

    The default ``"study"`` backend runs the single size-grid scenario
    of :func:`build_zero_one_study`: every ``n`` is a size-axis entry
    of one shared-deployment plan, all α offsets at one ``n`` are
    curves of the same sampled worlds (nested channel thinning), and
    the ±α comparison therefore uses common random numbers — the
    transition sharpening is visible at far fewer trials than with
    independent sampling.  ``backend="legacy"`` re-estimates every
    ``(n, α)`` point with independent per-point sampling as a
    cross-check.
    """
    if backend not in ("study", "legacy"):
        raise ParameterError(f"unknown backend {backend!r}; use 'study' or 'legacy'")
    trials = trials if trials is not None else trials_from_env(80, full=500)
    study = build_zero_one_study(
        trials, num_nodes_grid, alpha_offsets, pool_size, q, seed
    )
    scenario = study.scenarios[0]
    if backend == "study":
        scenario_result = study.run(workers=workers)["zero_one"]
    points: List[CurvePoint] = []
    for si, n in enumerate(num_nodes_grid):
        ring = scenario.ring_sizes_at(si)[0]
        for alpha, (_, p) in zip(alpha_offsets, scenario.curves_at(si)):
            if backend == "study":
                estimate = scenario_result.bernoulli(
                    "connectivity", (q, p), ring, size=n
                )
            else:
                params = QCompositeParams(
                    num_nodes=n,
                    key_ring_size=ring,
                    pool_size=pool_size,
                    overlap=q,
                    channel_prob=p,
                )
                estimate = estimate_k_connectivity(
                    params,
                    1,
                    trials,
                    seed=seed + 100 * n + int(alpha * 10),
                    workers=workers,
                )
            points.append(
                CurvePoint(
                    point={"n": n, "alpha": alpha, "K": ring, "p": p},
                    estimate=estimate,
                    prediction=limit_probability(alpha, 1),
                )
            )
    return ExperimentResult(
        name="zero_one",
        config={
            "trials": trials,
            "num_nodes_grid": list(num_nodes_grid),
            "alpha_offsets": list(alpha_offsets),
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
            "backend": backend,
        },
        points=points,
    )


def render_zero_one(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["n"]),
                pt.point["alpha"],
                int(pt.point["K"]),
                pt.point["p"],
                pt.estimate.estimate,
                pt.prediction,
            ]
        )
    return format_table(
        ["n", "alpha", "K", "p", "empirical", "limit"],
        rows,
        title=(
            f"Zero-one law sharpening (q={result.config['q']}, "
            f"P={result.config['pool_size']}, trials={result.config['trials']})"
        ),
    )
