"""The zero–one law (Eqs. 8b–8c): sharpening with ``n``.

Theorem 1's zero–one clauses say the k-connectivity probability tends
to 0 for ``α_n → -∞`` and 1 for ``α_n → +∞``.  At finite ``n`` the law
manifests as a transition window around α = 0 that *narrows as n
grows*: this experiment pins α at symmetric offsets ±α₀ and shows the
empirical probabilities marching toward 0 and 1 as ``n`` increases,
alongside the n-independent limit values ``exp(-e^{∓α₀})``.

Since the study layer grew a size axis, the whole growth sweep is
*one* declaration: a single :class:`~repro.study.scenario.Scenario`
with ``num_nodes_grid``, per-size ring sizes (the minimal ``K``
clearing the largest α at each ``n``), and per-size curves (the
α-offset channel probabilities solved per ``n``).  Deployment
``(size, ring, trial)`` cells are seeded by ``SeedSequence(seed,
spawn_key=(size_index, ring_index, trial))``, so estimates are
bit-identical for any worker count; ``backend="legacy"`` keeps the
independent per-point sampling as a cross-check.

``backend="adaptive"`` rides :mod:`repro.study.adaptive`: the tails of
the law (cells already resolved at/near 0 or 1) stop after a loose
Wilson target, while transition-band cells keep extending in trial
blocks until they reach ``ci_target`` — the trial budget concentrates
exactly where the threshold is still being resolved, at the same
deterministic per-trial seeds as a one-shot run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scaling import channel_prob_for_alpha
from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.simulation.runners import estimate_k_connectivity
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_zero_one_study", "run_zero_one", "render_zero_one"]


def build_zero_one_study(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
) -> Study:
    """One sized scenario: the whole growth sweep as a single declaration.

    The ring size is chosen per ``n`` as the minimal ``K`` whose key
    graph clears the *largest* α in the grid at ``p = 1`` (plus
    margin), so the channel-probability solve stays within (0, 1] at
    every point; the ``±α`` offsets become per-size curves.
    """
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(80, full=500)
    top_target = limit_probability(max(alpha_offsets) + 0.25, 1)
    ring_grid = []
    curve_grid = []
    for n in num_nodes_grid:
        ring = minimal_key_ring_size(
            n, pool_size, q, 1.0, k=1, target_probability=min(top_target, 0.999)
        )
        ring_grid.append((ring,))
        curve_grid.append(
            tuple(
                (q, channel_prob_for_alpha(n, ring, pool_size, q, alpha, k=1))
                for alpha in alpha_offsets
            )
        )
    return Study(
        (
            Scenario(
                name="zero_one",
                num_nodes_grid=tuple(num_nodes_grid),
                pool_size=pool_size,
                ring_sizes=tuple(ring_grid),
                curves=tuple(curve_grid),
                metrics=(MetricSpec("connectivity"),),
                trials=trials,
                seed=seed,
            ),
        )
    )


def run_zero_one(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
    workers: Optional[int] = None,
    backend: str = "study",
    ci_target: float = 0.02,
    max_trials: int = 4000,
    block_trials: Optional[int] = None,
    transition_band: Sequence[float] = (0.1, 0.9),
    tail_ci_target: float = 0.05,
) -> ExperimentResult:
    """Estimate P[connected] at fixed ±α across growing ``n``.

    The default ``"study"`` backend runs the single size-grid scenario
    of :func:`build_zero_one_study`: every ``n`` is a size-axis entry
    of one shared-deployment plan, all α offsets at one ``n`` are
    curves of the same sampled worlds (nested channel thinning), and
    the ±α comparison therefore uses common random numbers — the
    transition sharpening is visible at far fewer trials than with
    independent sampling.  ``backend="legacy"`` re-estimates every
    ``(n, α)`` point with independent per-point sampling as a
    cross-check.

    ``backend="adaptive"`` sharpens only the transition band: starting
    from *trials* as the first round, cells are extended in blocks
    until their Wilson half-width reaches ``ci_target`` — but cells
    whose running estimate sits outside ``transition_band`` (the
    saturated 0/1 tails, exactly where Theorem 1's claim is already
    decided) are held only to the looser ``tail_ci_target``.  Trials
    concentrate on the ``(n, α)`` points that still resolve the
    threshold, and the spend is reported in the result config
    (``config["adaptive"]``, see
    :func:`repro.study.adaptive.trial_allocation`).
    """
    if backend not in ("study", "legacy", "adaptive"):
        raise ParameterError(
            f"unknown backend {backend!r}; use 'study', 'legacy', or 'adaptive'"
        )
    trials = trials if trials is not None else trials_from_env(80, full=500)
    study = build_zero_one_study(
        trials, num_nodes_grid, alpha_offsets, pool_size, q, seed
    )
    scenario = study.scenarios[0]
    adaptive_summary: Optional[dict] = None
    if backend == "study":
        scenario_result = study.run(workers=workers)["zero_one"]
    elif backend == "adaptive":
        from repro.study.adaptive import AdaptivePolicy, run_adaptive_study

        band = tuple(float(b) for b in transition_band)
        if len(band) != 2:
            raise ParameterError(
                f"transition_band must be (low, high), got {transition_band!r}"
            )
        policy = AdaptivePolicy(
            ci_target=ci_target,
            max_trials=max_trials,
            block_trials=block_trials,
            indicator_band=band,
            tail_ci_target=tail_ci_target,
        )
        study_result = run_adaptive_study(study, policy, workers=workers)
        scenario_result = study_result["zero_one"]
        adaptive_summary = dict(study_result.provenance["adaptive"])  # type: ignore[index,arg-type]
    points: List[CurvePoint] = []
    for si, n in enumerate(num_nodes_grid):
        ring = scenario.ring_sizes_at(si)[0]
        for alpha, (_, p) in zip(alpha_offsets, scenario.curves_at(si)):
            if backend in ("study", "adaptive"):
                estimate = scenario_result.bernoulli(
                    "connectivity", (q, p), ring, size=n
                )
            else:
                params = QCompositeParams(
                    num_nodes=n,
                    key_ring_size=ring,
                    pool_size=pool_size,
                    overlap=q,
                    channel_prob=p,
                )
                estimate = estimate_k_connectivity(
                    params,
                    1,
                    trials,
                    seed=seed + 100 * n + int(alpha * 10),
                    workers=workers,
                )
            points.append(
                CurvePoint(
                    point={"n": n, "alpha": alpha, "K": ring, "p": p},
                    estimate=estimate,
                    prediction=limit_probability(alpha, 1),
                )
            )
    config = {
        "trials": trials,
        "num_nodes_grid": list(num_nodes_grid),
        "alpha_offsets": list(alpha_offsets),
        "pool_size": pool_size,
        "q": q,
        "seed": seed,
        "backend": backend,
    }
    if adaptive_summary is not None:
        config["adaptive"] = adaptive_summary
    return ExperimentResult(
        name="zero_one",
        config=config,
        points=points,
    )


def render_zero_one(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["n"]),
                pt.point["alpha"],
                int(pt.point["K"]),
                pt.point["p"],
                pt.estimate.trials,
                pt.estimate.estimate,
                pt.prediction,
            ]
        )
    backend = result.config.get("backend", "study")
    if backend == "adaptive":
        alloc = result.config.get("adaptive", {})
        trials_note = (
            f"adaptive: ci_target={alloc.get('policy', {}).get('ci_target')}, "
            f"spent={alloc.get('trials_spent')} cell-trials "
            f"({alloc.get('savings_vs_fixed')}x vs fixed)"
        )
    else:
        trials_note = f"trials={result.config['trials']}"
    return format_table(
        ["n", "alpha", "K", "p", "trials", "empirical", "limit"],
        rows,
        title=(
            f"Zero-one law sharpening (q={result.config['q']}, "
            f"P={result.config['pool_size']}, {trials_note})"
        ),
    )
