"""The zero–one law (Eqs. 8b–8c): sharpening with ``n``.

Theorem 1's zero–one clauses say the k-connectivity probability tends
to 0 for ``α_n → -∞`` and 1 for ``α_n → +∞``.  At finite ``n`` the law
manifests as a transition window around α = 0 that *narrows as n
grows*: this experiment pins α at symmetric offsets ±α₀ and shows the
empirical probabilities marching toward 0 and 1 as ``n`` increases,
alongside the n-independent limit values ``exp(-e^{∓α₀})``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scaling import channel_prob_for_alpha
from repro.probability.limits import limit_probability
from repro.simulation.engine import trials_from_env
from repro.simulation.results import CurvePoint, ExperimentResult
from repro.study import MetricSpec, Scenario, Study
from repro.utils.tables import format_table

__all__ = ["build_zero_one_study", "run_zero_one", "render_zero_one"]


def build_zero_one_study(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
) -> Study:
    """One scenario per ``n``: all ±α offsets as curves of one deployment.

    The ring size is chosen per ``n`` as the minimal ``K`` whose key
    graph clears the *largest* α in the grid at ``p = 1`` (plus
    margin), so the channel-probability solve stays within (0, 1] at
    every point.
    """
    from repro.core.design import minimal_key_ring_size

    trials = trials if trials is not None else trials_from_env(80, full=500)
    top_target = limit_probability(max(alpha_offsets) + 0.25, 1)
    scenarios = []
    for n in num_nodes_grid:
        ring = minimal_key_ring_size(
            n, pool_size, q, 1.0, k=1, target_probability=min(top_target, 0.999)
        )
        curves = tuple(
            (q, channel_prob_for_alpha(n, ring, pool_size, q, alpha, k=1))
            for alpha in alpha_offsets
        )
        scenarios.append(
            Scenario(
                name=f"zero_one_n{n}",
                num_nodes=n,
                pool_size=pool_size,
                ring_sizes=(ring,),
                curves=curves,
                metrics=(MetricSpec("connectivity"),),
                trials=trials,
                seed=seed + n,
            )
        )
    return Study(tuple(scenarios))


def run_zero_one(
    trials: Optional[int] = None,
    num_nodes_grid: Sequence[int] = (200, 500, 1000, 2000),
    alpha_offsets: Sequence[float] = (-3.0, -1.5, 1.5, 3.0),
    pool_size: int = 10000,
    q: int = 2,
    seed: int = 20170607,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Estimate P[connected] at fixed ±α across growing ``n``.

    The ring size is chosen per ``n`` as the minimal ``K`` whose key
    graph clears the *largest* α in the grid at ``p = 1`` (plus margin),
    so the channel-probability solve stays within (0, 1] at every point.

    All α offsets at one ``n`` differ only in the channel probability,
    so they compile to one scenario per ``n`` on the shared-deployment
    study path: the same sampled key rings serve every offset, with
    channels realized by nested thinning.  The ±α comparison therefore
    uses common random numbers — the transition sharpening is visible
    at far fewer trials than with independent sampling.
    """
    trials = trials if trials is not None else trials_from_env(80, full=500)
    study = build_zero_one_study(
        trials, num_nodes_grid, alpha_offsets, pool_size, q, seed
    )
    result = study.run(workers=workers)
    points: List[CurvePoint] = []
    for n, scenario_result in zip(num_nodes_grid, result.results):
        ring = scenario_result.scenario.ring_sizes[0]
        for alpha, (_, p) in zip(alpha_offsets, scenario_result.scenario.curves):
            points.append(
                CurvePoint(
                    point={"n": n, "alpha": alpha, "K": ring, "p": p},
                    estimate=scenario_result.bernoulli("connectivity", (q, p), ring),
                    prediction=limit_probability(alpha, 1),
                )
            )
    return ExperimentResult(
        name="zero_one",
        config={
            "trials": trials,
            "num_nodes_grid": list(num_nodes_grid),
            "alpha_offsets": list(alpha_offsets),
            "pool_size": pool_size,
            "q": q,
            "seed": seed,
        },
        points=points,
    )


def render_zero_one(result: ExperimentResult) -> str:
    rows = []
    for pt in result.points:
        rows.append(
            [
                int(pt.point["n"]),
                pt.point["alpha"],
                int(pt.point["K"]),
                pt.point["p"],
                pt.estimate.estimate,
                pt.prediction,
            ]
        )
    return format_table(
        ["n", "alpha", "K", "p", "empirical", "limit"],
        rows,
        title=(
            f"Zero-one law sharpening (q={result.config['q']}, "
            f"P={result.config['pool_size']}, trials={result.config['trials']})"
        ),
    )
