"""Experiment harness: every figure/table of the paper plus validations."""

from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    get_experiment,
    list_experiments,
)

__all__ = ["REGISTRY", "ExperimentSpec", "get_experiment", "list_experiments"]
