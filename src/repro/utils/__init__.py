"""Shared numeric, RNG, and formatting utilities."""

from repro.utils.logmath import (
    log1mexp,
    log_binomial,
    log_binomial_array,
    log_factorial,
    log_falling_factorial,
    logsumexp,
    stable_sum,
)
from repro.utils.rng import (
    RandomState,
    as_generator,
    spawn_generators,
    spawn_seed_sequences,
    trial_seed_sequence,
)
from repro.utils.tables import format_curve, format_kv_block, format_table
from repro.utils.validation import (
    check_finite_float,
    check_in_range,
    check_key_parameters,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)

__all__ = [
    "log1mexp",
    "log_binomial",
    "log_binomial_array",
    "log_factorial",
    "log_falling_factorial",
    "logsumexp",
    "stable_sum",
    "RandomState",
    "as_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "trial_seed_sequence",
    "format_curve",
    "format_kv_block",
    "format_table",
    "check_finite_float",
    "check_in_range",
    "check_key_parameters",
    "check_nonnegative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
]
