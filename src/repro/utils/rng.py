"""Random-number-generator management.

Monte Carlo experiments in this library follow one discipline: a single
root seed fully determines every trial, regardless of how trials are
distributed over processes.  This module wraps numpy's ``SeedSequence``
spawning so that

* each trial gets an independent, high-quality stream;
* re-running trial *i* alone reproduces exactly the graph sampled for
  trial *i* in a full run;
* user code can pass ``seed=None`` (non-reproducible), an ``int``, a
  ``SeedSequence``, or an existing ``Generator`` anywhere a source of
  randomness is accepted.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "grid_seed_sequence",
    "sample_distinct_integers",
]

RandomState = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce *seed* into a ``numpy.random.Generator``.

    ``None`` produces OS-entropy seeding; an ``int`` or ``SeedSequence``
    produces a deterministic generator; a ``Generator`` is returned
    unchanged (shared, not copied — callers that need isolation should
    spawn).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: RandomState, count: int) -> List[np.random.SeedSequence]:
    """Derive *count* independent ``SeedSequence`` children from *seed*.

    When *seed* is already a ``Generator`` we spawn from its internal
    bit-generator seed sequence, so parallel fan-out from a shared
    generator remains deterministic.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if not isinstance(ss, np.random.SeedSequence):  # pragma: no cover
            ss = np.random.SeedSequence()
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return list(ss.spawn(count))


def spawn_generators(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Derive *count* independent generators from *seed*."""
    return [np.random.default_rng(s) for s in spawn_seed_sequences(seed, count)]


def trial_seed_sequence(
    root: Optional[int], trial_index: int
) -> np.random.SeedSequence:
    """Deterministic per-trial seed: ``SeedSequence(root, spawn_key=(trial,))``.

    This addressing scheme means trial *i* of experiment seeded with
    *root* can be reproduced in isolation without generating the first
    ``i - 1`` streams.
    """
    if trial_index < 0:
        raise ValueError(f"trial_index must be >= 0, got {trial_index}")
    entropy = 0 if root is None else root
    return np.random.SeedSequence(entropy, spawn_key=(trial_index,))


def grid_seed_sequence(root: Optional[int], *key: int) -> np.random.SeedSequence:
    """Deterministic seed for a multi-index grid cell.

    Generalizes :func:`trial_seed_sequence` to higher-dimensional
    addressing: cell ``(i, j, ...)`` of a sweep rooted at *root* gets
    ``SeedSequence(root, spawn_key=(i, j, ...))``.  The sweep engine
    keys deployments by ``(ring_index, trial_index)``, so any cell can
    be reproduced in isolation and results are independent of how cells
    are distributed over workers.
    """
    if not key:
        raise ValueError("grid_seed_sequence requires at least one index")
    if any(k < 0 for k in key):
        raise ValueError(f"grid indices must be >= 0, got {key}")
    entropy = 0 if root is None else root
    return np.random.SeedSequence(entropy, spawn_key=tuple(int(k) for k in key))


def sample_distinct_integers(
    high: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random ``size``-subset of ``{0, ..., high-1}``, sorted.

    Vectorized replacement for per-element Floyd sampling: draw i.i.d.
    uniforms in batches and keep the first *size* distinct values in
    draw order.  By exchangeability of i.i.d. draws, the first ``m``
    distinct values of the stream are exactly a uniform ``m``-subset,
    so the sampler is unbiased for any ``size <= high``.  Expected cost
    is ``O(size)`` draws while ``size / high`` stays modest (the sparse
    regime it is used in); the batch size self-adjusts otherwise.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if high < size:
        raise ValueError(f"cannot draw {size} distinct values from range({high})")
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if size == high:
        return np.arange(high, dtype=np.int64)
    drawn = np.empty(0, dtype=np.int64)
    have = 0
    while True:
        deficit = size - have
        # Small multiplicative + additive slack keeps the expected number
        # of passes at ~1 without overdrawing in the common sparse case.
        batch = rng.integers(0, high, size=deficit + deficit // 8 + 16, dtype=np.int64)
        drawn = np.concatenate([drawn, batch])
        uniq, first_pos = np.unique(drawn, return_index=True)
        if uniq.size >= size:
            keep = np.sort(first_pos)[:size]
            out = drawn[keep]
            out.sort()
            return out
        have = uniq.size
