"""Plain-text rendering of result tables and curves.

The benchmark harness prints the same rows/series the paper reports;
these helpers render them as aligned ASCII tables and simple unicode
line plots so experiment output is readable in a terminal and diffable
in CI logs.  No plotting dependency is used anywhere in the library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table", "format_curve", "format_kv_block"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    floatfmt: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Floats are formatted with *floatfmt*; all other values via ``str``.
    Raises ``ValueError`` if any row length differs from the header
    length, which catches experiment-harness bugs early.
    """
    headers = [str(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered.append([_cell(v, floatfmt) for v in row])

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    y_min: float = 0.0,
    y_max: float = 1.0,
    label: str = "",
) -> str:
    """Render a single curve as a coarse ASCII scatter plot.

    Designed for probability-vs-parameter curves: the y-range defaults to
    ``[0, 1]``.  Each point is bucketed into a character cell; collisions
    keep the first marker.  The plot is intentionally minimal — its job
    is to make the threshold shape of Figure 1 visible in terminal logs.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return "(empty curve)"
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = int(round((x - x_lo) / span * (width - 1)))
        frac = (min(max(y, y_min), y_max) - y_min) / (y_max - y_min)
        cy = (height - 1) - int(round(frac * (height - 1)))
        grid[cy][cx] = "*"

    lines = []
    if label:
        lines.append(label)
    for r, row in enumerate(grid):
        y_val = y_max - (y_max - y_min) * r / (height - 1)
        lines.append(f"{y_val:6.2f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(f"{'':7}{x_lo:<10.4g}{'':{max(0, width - 20)}}{x_hi:>10.4g}")
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render ``key: value`` pairs under a title, for run headers."""
    key_width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{str(key).ljust(key_width)} : {value}")
    return "\n".join(lines)
