"""Parameter validation helpers shared across the library.

Every public entry point of :mod:`repro` validates its arguments through
these helpers so that error messages are uniform and the validation rules
live in exactly one place.  All helpers raise
:class:`repro.exceptions.ParameterError` on failure and return the
(possibly normalized) value on success.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.exceptions import ParameterError

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
    "check_positive_float",
    "check_finite_float",
    "check_in_range",
    "check_key_parameters",
]


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``.

    Booleans are rejected even though ``bool`` subclasses ``int``: passing
    ``True`` for a count is always a bug.
    """
    if isinstance(value, bool):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if not isinstance(value, int):
        # Accept numpy integer scalars by duck-typing on __index__.
        try:
            value = int(value.__index__())  # type: ignore[union-attr]
        except (AttributeError, TypeError):
            raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ParameterError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if not isinstance(value, int):
        try:
            value = int(value.__index__())  # type: ignore[union-attr]
        except (AttributeError, TypeError):
            raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Validate that *value* is a probability in ``[0, 1]`` (or ``(0, 1]``).

    Parameters
    ----------
    value:
        The candidate probability.
    name:
        Argument name used in error messages.
    allow_zero:
        When ``False`` the valid range is ``(0, 1]`` — the paper's channel
        probability ``p_n`` satisfies ``0 < p_n <= 1``.
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    if math.isnan(value):
        raise ParameterError(f"{name} must not be NaN")
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        interval = "[0, 1]" if allow_zero else "(0, 1]"
        raise ParameterError(f"{name} must lie in {interval}, got {value}")
    return value


def check_positive_float(value: float, name: str) -> float:
    """Validate that *value* is a finite real number > 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value) or value <= 0.0:
        raise ParameterError(f"{name} must be a finite positive number, got {value}")
    return value


def check_finite_float(value: float, name: str) -> float:
    """Validate that *value* is a finite real number (any sign)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that *value* lies in the described interval."""
    value = check_finite_float(value, name)
    if low is not None:
        if low_inclusive and value < low:
            raise ParameterError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ParameterError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ParameterError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ParameterError(f"{name} must be < {high}, got {value}")
    return value


def check_key_parameters(
    key_ring_size: int, pool_size: int, overlap: int
) -> Tuple[int, int, int]:
    """Validate the q-composite triple ``(K, P, q)``.

    Enforces the paper's natural condition ``1 <= q <= K <= P`` (Section I
    requires ``q < K < P``; we accept the closed boundary cases ``q = K``
    and ``K = P`` because the hypergeometric formulas remain well defined
    there and they are useful in tests).  Returns the normalized
    ``(key_ring_size, pool_size, overlap)`` triple so callers can use the
    coerced ``int`` values directly.
    """
    key_ring_size = check_positive_int(key_ring_size, "key_ring_size")
    pool_size = check_positive_int(pool_size, "pool_size")
    overlap = check_positive_int(overlap, "overlap (q)")
    if key_ring_size > pool_size:
        raise ParameterError(
            f"key_ring_size K={key_ring_size} must not exceed pool_size P={pool_size}"
        )
    if overlap > key_ring_size:
        raise ParameterError(
            f"overlap q={overlap} must not exceed key_ring_size K={key_ring_size}"
        )
    return key_ring_size, pool_size, overlap
