"""Log-space combinatorics and numerically stable helpers.

The hypergeometric tail probability ``s(K, P, q)`` of the paper involves
binomial coefficients like ``C(10000, 88)`` whose magnitudes overflow any
floating-point type, so all combinatorial mass functions in
:mod:`repro.probability` are computed in log space using the helpers
defined here.  Everything is implemented on top of ``math.lgamma`` (and
its vectorized numpy counterpart) — no external special-function library
is required for correctness; :mod:`scipy` is only used in the test suite
as an independent cross-check.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "log_factorial",
    "log_binomial",
    "log_binomial_array",
    "logsumexp",
    "log1mexp",
    "log_falling_factorial",
    "stable_sum",
]

_NEG_INF = float("-inf")


def log_factorial(n: int) -> float:
    """Return ``ln(n!)`` for integer ``n >= 0``.

    Uses ``math.lgamma`` which is exact to double precision for all
    practically relevant ``n``.
    """
    if n < 0:
        raise ValueError(f"log_factorial requires n >= 0, got {n}")
    return math.lgamma(n + 1.0)


def log_binomial(n: int, k: int) -> float:
    """Return ``ln C(n, k)``, with ``-inf`` when the coefficient is zero.

    Out-of-range ``k`` (negative or larger than ``n``) yields ``-inf``
    rather than raising: this matches the convention ``C(n, k) = 0`` and
    lets tail sums be written without boundary special cases.
    """
    if n < 0:
        raise ValueError(f"log_binomial requires n >= 0, got n={n}")
    if k < 0 or k > n:
        return _NEG_INF
    return (
        math.lgamma(n + 1.0) - math.lgamma(k + 1.0) - math.lgamma(n - k + 1.0)
    )


def log_binomial_array(n: int, k: np.ndarray) -> np.ndarray:
    """Vectorized ``ln C(n, k)`` over an integer array *k*.

    Entries with ``k < 0`` or ``k > n`` map to ``-inf``.
    """
    if n < 0:
        raise ValueError(f"log_binomial_array requires n >= 0, got n={n}")
    k = np.asarray(k, dtype=np.float64)
    out = np.full(k.shape, _NEG_INF, dtype=np.float64)
    valid = (k >= 0) & (k <= n)
    kv = k[valid]
    out[valid] = (
        math.lgamma(n + 1.0)
        - _lgamma_vec(kv + 1.0)
        - _lgamma_vec(n - kv + 1.0)
    )
    return out


def _lgamma_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized lgamma; numpy has no ufunc for it in the stdlib namespace."""
    # ``math.lgamma`` via frompyfunc is accurate; for the small arrays used
    # here (length <= K ~ few hundred) speed is irrelevant.
    return np.frompyfunc(math.lgamma, 1, 1)(x).astype(np.float64)


def logsumexp(values: Iterable[float]) -> float:
    """Return ``ln(sum(exp(v) for v in values))`` stably.

    Accepts any iterable of floats, possibly containing ``-inf`` entries
    (they contribute zero mass).  Returns ``-inf`` for an empty iterable
    or when every entry is ``-inf``.
    """
    vals = [float(v) for v in values]
    if not vals:
        return _NEG_INF
    m = max(vals)
    if m == _NEG_INF:
        return _NEG_INF
    acc = 0.0
    for v in vals:
        acc += math.exp(v - m)
    return m + math.log(acc)


def log1mexp(log_p: float) -> float:
    """Return ``ln(1 - exp(log_p))`` for ``log_p <= 0`` stably.

    This is the standard two-branch formula (Mächler 2012): for
    ``log_p > -ln 2`` use ``log(-expm1(log_p))``, otherwise
    ``log1p(-exp(log_p))``.  ``log_p = 0`` maps to ``-inf`` (probability
    exactly 1 has zero complement); ``log_p = -inf`` maps to ``0.0``.
    """
    if log_p > 0.0:
        raise ValueError(f"log1mexp requires log_p <= 0, got {log_p}")
    if log_p == 0.0:
        return _NEG_INF
    if log_p == _NEG_INF:
        return 0.0
    if log_p > -math.log(2.0):
        return math.log(-math.expm1(log_p))
    return math.log1p(-math.exp(log_p))


def log_falling_factorial(n: float, k: int) -> float:
    """Return ``ln(n * (n-1) * ... * (n-k+1))`` for real ``n >= k-1 >= 0``.

    Used by the asymptotic expansions in :mod:`repro.probability.asymptotics`.
    """
    if k < 0:
        raise ValueError(f"log_falling_factorial requires k >= 0, got {k}")
    if k == 0:
        return 0.0
    if n < k - 1:
        raise ValueError(
            f"log_falling_factorial requires n >= k-1, got n={n}, k={k}"
        )
    return math.lgamma(n + 1.0) - math.lgamma(n - k + 1.0)


def stable_sum(values: Sequence[float]) -> float:
    """Kahan-compensated sum of a sequence of floats.

    Monte Carlo estimators aggregate many near-equal terms; compensated
    summation keeps the estimator exact to double precision regardless of
    the trial count.
    """
    total = 0.0
    compensation = 0.0
    for v in values:
        y = v - compensation
        t = total + y
        compensation = (t - total) - y
        total = t
    return total
