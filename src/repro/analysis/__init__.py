"""``repro lint`` — a determinism & contract linter for this repository.

Every reproducibility guarantee this codebase makes — bit-identical
results for any worker count, adaptive == one-shot, chaos convergence,
checksum-verified shard folding — rests on *seed discipline* and
*ordering discipline* that runtime regression tests can only check on
the inputs they happen to exercise.  This package proves those
invariants at the source level, for all code paths, with a small
AST-based analyzer:

* a **rule-plugin registry** (:mod:`repro.analysis.registry`) —
  repo-specific rules R001–R008 live in :mod:`repro.analysis.rules`
  and external code can register more;
* **per-rule severity and configuration** (each rule carries a
  ``default_config`` dict; the engine accepts overrides);
* an **inline-suppression syntax** — ``# repro: noqa[R001] -- why`` —
  where the justification is *required* (a bare ``noqa`` is itself a
  finding, R000);
* a committed **baseline file** for grandfathered findings
  (:mod:`repro.analysis.baseline`), keyed on content hashes so
  unrelated edits never invalidate entries;
* **text/JSON reporters** and CI-friendly exit codes via
  ``repro lint [PATHS] [--select/--ignore/--format/--baseline]``.

The engine lives in :mod:`repro.analysis.engine`; importing this
package registers the built-in rules.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import LintResult, collect_modules, lint_paths
from repro.analysis.registry import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    get_rule,
    list_rules,
    register_rule,
)
from repro.analysis.reporters import render_json, render_text

# Importing the rules package registers R000–R008 with the registry.
import repro.analysis.rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "collect_modules",
    "get_rule",
    "lint_paths",
    "list_rules",
    "register_rule",
    "render_json",
    "render_text",
]
