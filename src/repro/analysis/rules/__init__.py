"""Built-in lint rules.

Importing this package registers every rule with the registry in
:mod:`repro.analysis.registry`.  One module per concern:

* :mod:`~repro.analysis.rules.meta` — R000 suppression hygiene;
* :mod:`~repro.analysis.rules.determinism` — R001 unseeded randomness,
  R002 wall-clock/entropy sources, R003 set/dict-order hazards,
  R008 float-reduction order in kernels;
* :mod:`~repro.analysis.rules.structure` — R004 array-first kernel
  seam + backend contracts, R005 worker-import hygiene;
* :mod:`~repro.analysis.rules.errors` — R006 typed exceptions on
  supervised paths;
* :mod:`~repro.analysis.rules.provenance` — R007 provenance
  completeness for result-altering CLI flags.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import-for-registration)
    determinism,
    errors,
    meta,
    provenance,
    structure,
)
