"""Determinism rules: R001 randomness, R002 time/entropy, R003 ordering,
R008 float-reduction order.

These encode the seed and ordering discipline behind the repository's
bit-identity guarantees (any worker count, adaptive == one-shot, chaos
convergence, shard folding).  The runtime regression suite proves the
guarantees on the inputs it exercises; these rules prove the underlying
discipline on every code path.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.astutil import ImportMap, call_name, parent_map
from repro.analysis.registry import Finding, ModuleInfo, Rule, register_rule

__all__ = [
    "UnseededRandomness",
    "WallClockEntropy",
    "UnorderedIteration",
    "FloatReductionOrder",
]


def _matches(name: Optional[str], patterns: Sequence[str]) -> bool:
    """Whether canonical *name* matches any pattern (trailing ``.`` =
    prefix match, otherwise exact)."""
    if name is None:
        return False
    for pattern in patterns:
        if pattern.endswith("."):
            if name.startswith(pattern):
                return True
        elif name == pattern:
            return True
    return False


@register_rule
class UnseededRandomness(Rule):
    """R001: every random draw must trace back to a ``SeedSequence``.

    Flags the global numpy RNG (``np.random.<fn>()``), the stdlib
    ``random`` module, legacy ``RandomState``, and ``default_rng()``
    called with no argument (or an explicit ``None``) — anywhere except
    the sanctioned seam ``utils/rng.py``, whose job is exactly to fence
    ``None``-seeded generators behind an explicit opt-in.
    """

    id = "R001"
    name = "unseeded-randomness"
    severity = "error"
    description = (
        "no global/unseeded RNGs outside utils/rng.py — randomness must "
        "derive from a SeedSequence"
    )
    default_config = {
        # Modules allowed to construct unseeded generators.
        "allowed_modules": ["utils/rng.py"],
        # The global-state numpy RNG namespace; constructing from it is
        # fine only through these seedable entry points.
        "seedable": [
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "numpy.random.SeedSequence",
            "numpy.random.PCG64",
            "numpy.random.Philox",
            "numpy.random.SFC64",
            "numpy.random.MT19937",
            "numpy.random.BitGenerator",
        ],
        "banned_modules": ["random"],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.matches(self.config["allowed_modules"]):
            return []
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        seedable = set(self.config["seedable"])
        banned_modules = set(self.config["banned_modules"])
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(self._check_import(module, node, banned_modules))
            if not isinstance(node, ast.Call):
                continue
            name = call_name(imports, node)
            if name is None:
                continue
            head = name.split(".")[0]
            if head in banned_modules:
                findings.append(
                    module.finding(
                        self, node,
                        f"stdlib `{name}` uses hidden global RNG state; "
                        "derive a Generator from a SeedSequence "
                        "(repro.utils.rng) instead",
                    )
                )
            elif name.startswith("numpy.random.") and name not in seedable:
                findings.append(
                    module.finding(
                        self, node,
                        f"`{name}` draws from the global numpy RNG; use a "
                        "Generator derived from a SeedSequence instead",
                    )
                )
            elif name in ("numpy.random.default_rng", "numpy.random.Generator"):
                if self._unseeded_call(node):
                    findings.append(
                        module.finding(
                            self, node,
                            f"`{name}` without a SeedSequence-derived "
                            "argument is OS-entropy seeded; thread a seed "
                            "through repro.utils.rng",
                        )
                    )
        return findings

    def _check_import(
        self, module: ModuleInfo, node: ast.AST, banned: Set[str]
    ) -> Iterable[Finding]:
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            names = [node.module]
        for name in names:
            if name.split(".")[0] in banned:
                yield module.finding(
                    self, node,
                    f"import of `{name}`: the stdlib random module is "
                    "global-state RNG; use repro.utils.rng",
                )

    @staticmethod
    def _unseeded_call(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        first = node.args[0] if node.args else None
        if first is None:
            for kw in node.keywords:
                if kw.arg in ("seed", "bit_generator"):
                    first = kw.value
                    break
        return isinstance(first, ast.Constant) and first.value is None


@register_rule
class WallClockEntropy(Rule):
    """R002: no wall-clock or entropy sources on result-bearing paths.

    ``time.time``/``uuid4``/``os.urandom``-style sources inside the
    result-producing packages make reruns unreproducible and break
    checksum-verified shard dedup.  Interval timers (``monotonic``,
    ``perf_counter``) stay legal: they schedule and measure, but must
    never feed results — R001/R003 cover the values themselves.
    """

    id = "R002"
    name = "wall-clock-entropy"
    severity = "error"
    description = (
        "no wall-clock/entropy sources (time.time, uuid4, os.urandom, "
        "datetime.now) in kernels/, simulation/, study/, service/"
    )
    default_config = {
        "packages": ["kernels", "simulation", "study", "service"],
        "banned": [
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
            "uuid.uuid1",
            "uuid.uuid4",
            "os.urandom",
            "secrets.",
        ],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_packages(self.config["packages"]):
            return []
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        banned = list(self.config["banned"])
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(imports, node)
            if _matches(name, banned):
                findings.append(
                    module.finding(
                        self, node,
                        f"`{name}` is a wall-clock/entropy source on a "
                        "result-bearing path; results must be a pure "
                        "function of the seed",
                    )
                )
        return findings


#: Expressions whose iteration order is hash/insertion dependent.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _is_set_typed(node: ast.AST, imports: ImportMap) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_typed(node.left, imports) or _is_set_typed(
            node.right, imports
        )
    if isinstance(node, ast.Call):
        name = call_name(imports, node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "keys",
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            # `.keys()` is the dict-order hazard named by the rule; the
            # set methods propagate set-ness through method chains.
            if node.func.attr == "keys":
                return not node.args and not node.keywords
            return True
    return False


#: Wrapping one of these restores a deterministic order (or collapses
#: the order away entirely).
_SANITIZERS = {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}


@register_rule
class UnorderedIteration(Rule):
    """R003: iteration order over sets/dict-keys must be sanitized.

    Iterating a ``set`` (or ``dict.keys()``) into an accumulator, an
    array constructor, or a scheduling loop makes the result depend on
    hash/insertion order — exactly the nondeterminism that breaks
    bit-identity across interpreters and hosts.  Wrapping the iterable
    in ``sorted(...)`` (or consuming it with an order-insensitive
    reducer like ``len``/``min``/``max``/``any``/``all``) is the fix
    and is recognized as clean.
    """

    id = "R003"
    name = "unordered-iteration"
    severity = "error"
    description = (
        "iteration over set()/dict.keys() feeding accumulation, array "
        "construction, or scheduling order — wrap in sorted(...)"
    )
    default_config = {
        # Order-sensitive consumers that materialize iteration order.
        "consumers": ["list", "tuple", "enumerate", "sum"],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        parents = parent_map(module.tree)
        consumers = set(self.config["consumers"])
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_typed(node.iter, imports):
                    findings.append(
                        module.finding(
                            self, node.iter,
                            "for-loop over a set/dict.keys(): body effects "
                            "follow hash order; iterate sorted(...) instead",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if not any(
                    _is_set_typed(gen.iter, imports) for gen in node.generators
                ):
                    continue
                if self._sanitized(node, parents, imports):
                    continue
                findings.append(
                    module.finding(
                        self, node,
                        "comprehension over a set/dict.keys() materializes "
                        "hash order; iterate sorted(...) or wrap the "
                        "result in sorted(...)",
                    )
                )
            elif isinstance(node, ast.Call):
                name = call_name(imports, node)
                if name in consumers and node.args and _is_set_typed(
                    node.args[0], imports
                ):
                    findings.append(
                        module.finding(
                            self, node,
                            f"`{name}(...)` over a set/dict.keys() "
                            "materializes hash order; use sorted(...)",
                        )
                    )
        return findings

    @staticmethod
    def _sanitized(node: ast.AST, parents, imports: ImportMap) -> bool:
        parent = parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            name = call_name(imports, parent)
            if name in _SANITIZERS:
                return True
        return False


@register_rule
class FloatReductionOrder(Rule):
    """R008: float reductions in kernel code must use a fixed-order sum.

    Python's builtin ``sum`` folds left-to-right over whatever order
    the iterable yields; combined with float non-associativity, any
    order jitter changes bits.  Kernel code must reduce with
    ``np.sum``/``ndarray.sum`` (single fixed pairwise algorithm) or
    ``math.fsum`` — the backends' value-identity contract depends on
    it.
    """

    id = "R008"
    name = "float-reduction-order"
    severity = "error"
    description = (
        "builtin sum() in kernel code — use np.sum/ndarray.sum "
        "(pairwise) or math.fsum for order-stable float reduction"
    )
    default_config = {"packages": ["kernels"]}

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_packages(self.config["packages"]):
            return []
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(imports, node) == "sum":
                findings.append(
                    module.finding(
                        self, node,
                        "builtin sum() reduces in iteration order; kernel "
                        "reductions must be np.sum/ndarray.sum or "
                        "math.fsum to keep backends value-identical",
                    )
                )
        return findings
