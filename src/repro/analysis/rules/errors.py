"""R006: typed exceptions only on supervised execution paths.

The fault-tolerant scheduler, the shard transports, and the study/CLI
boundaries all classify failures by exception type (retryable unit
failures, shard mismatches, parameter errors rendered without a
traceback).  A bare ``raise ValueError`` in ``keygraphs/``,
``simulation/``, ``study/`` or ``service/`` bypasses that
classification: it crosses process
boundaries as an anonymous failure the supervisor can only treat as a
crash.  Raise the typed hierarchy from :mod:`repro.exceptions` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.astutil import ImportMap, attr_chain
from repro.analysis.registry import Finding, ModuleInfo, Rule, register_rule

__all__ = ["TypedExceptions"]


@register_rule
class TypedExceptions(Rule):
    id = "R006"
    name = "typed-exceptions"
    severity = "error"
    description = (
        "supervised paths (keygraphs/, simulation/, study/, service/) "
        "raise only "
        "typed exceptions from repro.exceptions, never bare "
        "Exception/ValueError"
    )
    default_config = {
        "packages": ["keygraphs", "simulation", "study", "service"],
        "banned": [
            "Exception",
            "BaseException",
            "ValueError",
            "RuntimeError",
            "KeyError",
            "IndexError",
            "ArithmeticError",
            "OSError",
        ],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_packages(self.config["packages"]):
            return []
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        banned = set(self.config["banned"])
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = attr_chain(exc)
            if name is None:
                continue
            resolved = imports.resolve(exc) or name
            # `raise exc` re-raises a caught variable: out of scope.
            if name in banned and resolved in banned:
                findings.append(
                    module.finding(
                        self, node,
                        f"bare `raise {name}` on a supervised path; raise "
                        "a typed exception from repro.exceptions so the "
                        "scheduler/CLI can classify the failure",
                    )
                )
        return findings
