"""R000: suppression hygiene.

The inline escape hatch (``# repro: noqa[R001] -- why``) requires both
an explicit rule list and a justification.  A bare or malformed
``repro: noqa`` suppresses nothing *and* is itself a finding, so the
ledger of intentional exceptions stays auditable.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.registry import Finding, ModuleInfo, Rule, register_rule

__all__ = ["SuppressionHygiene"]


@register_rule
class SuppressionHygiene(Rule):
    id = "R000"
    name = "suppression-hygiene"
    severity = "error"
    description = (
        "every `# repro: noqa[RULE]` must name rules and carry a "
        "`-- justification`"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for note in module.suppressions.values():
            if note.valid:
                continue
            if not note.rules and not note.justification:
                detail = "names no rules and has no justification"
            elif not note.rules:
                detail = "names no rules (use `# repro: noqa[R001] -- why`)"
            else:
                detail = "has no `-- justification`"
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=note.line,
                    col=0,
                    message=f"suppression {detail}; it suppresses nothing",
                    severity=self.severity,
                    snippet=module.line_text(note.line),
                )
            )
        return findings
