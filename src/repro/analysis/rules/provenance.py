"""R007: result-altering CLI flags must flow into provenance.

A result nobody can re-derive is not reproducible: every CLI flag that
changes *what* gets computed must leave a trace in the study
provenance (or be part of the scenario payload that the result embeds
wholesale).  This rule is cross-file: it collects every
``add_argument`` in the analyzed tree and every ``provenance[...]``
write, then demands that each flag be classified — mapped to a
provenance key that some module actually writes, declared
scenario-recorded (seed/trials/--set land inside the serialized
scenario itself), or declared operational (cannot alter results).

An *unclassified* flag is a finding: adding a new result-altering
option forces a conscious decision about its provenance story before
the gate goes green.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.registry import Finding, ModuleInfo, Project, Rule, register_rule

__all__ = ["ProvenanceCompleteness"]


@register_rule
class ProvenanceCompleteness(Rule):
    id = "R007"
    name = "provenance-completeness"
    severity = "error"
    description = (
        "every CLI flag that can alter results must map to a provenance "
        "key some module writes (or be declared scenario-recorded/"
        "operational in the rule config)"
    )
    default_config = {
        # dest -> provenance key that must be written somewhere.
        "provenance_flags": {
            "kernel_backend": "kernel_backends",
            "workers": "workers",
            "target_ci": "adaptive",
            "max_trials": "adaptive",
            "block_trials": "adaptive",
            "chaos": "faults",
            "max_retries": "scheduler",
            "unit_timeout": "scheduler",
            "speculate_after": "scheduler",
            "cache": "cache",
            "transport": "transport",
            "shards": "shards",
            "shard_axis": "shard_axis",
        },
        # Recorded inside the result payload by construction: these
        # rewrite scenario fields, and ScenarioResult.to_dict embeds
        # the full scenario (seed, trials, overrides included).
        "scenario_flags": ["seed", "trials", "overrides"],
        # Cannot alter result values: I/O locations, rendering, service
        # plumbing, and the linter's own flags.
        "operational_flags": [
            "save", "backend", "file", "name", "shard", "job", "output",
            "spool", "wait", "timeout", "events", "max_concurrent",
            "max_jobs", "idle_timeout",
            "paths", "select", "ignore", "format", "baseline",
            "no_baseline", "write_baseline", "list_rules", "verbose",
            "severity", "justification",
        ],
    }

    def finalize(self, project: Project) -> Iterable[Finding]:
        flags: List[Tuple[ModuleInfo, ast.Call, str]] = []
        written: Set[str] = set()
        for module in project:
            flags.extend(
                (module, call, dest)
                for call, dest in self._iter_flags(module)
            )
            written |= self._provenance_keys(module)

        provenance_flags: Dict[str, str] = dict(self.config["provenance_flags"])
        scenario_flags = set(self.config["scenario_flags"])
        operational = set(self.config["operational_flags"])

        findings: List[Finding] = []
        for module, call, dest in flags:
            if dest in scenario_flags or dest in operational:
                continue
            key = provenance_flags.get(dest)
            if key is None:
                findings.append(
                    module.finding(
                        self, call,
                        f"CLI flag (dest `{dest}`) is unclassified: map it "
                        "to a provenance key in the R007 config, or "
                        "declare it scenario-recorded/operational",
                    )
                )
            elif key not in written:
                findings.append(
                    module.finding(
                        self, call,
                        f"CLI flag (dest `{dest}`) promises provenance key "
                        f"`{key}`, but no analyzed module writes "
                        f"provenance[{key!r}]",
                    )
                )
        return findings

    @staticmethod
    def _iter_flags(module: ModuleInfo):
        """(call node, dest) for each argparse ``add_argument`` call."""
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr != "add_argument"
            ):
                continue
            dest = None
            for keyword in node.keywords:
                if keyword.arg == "dest" and isinstance(
                    keyword.value, ast.Constant
                ):
                    dest = str(keyword.value.value)
            if dest is None:
                options = [
                    arg.value
                    for arg in node.args
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                ]
                longs = [opt for opt in options if opt.startswith("--")]
                if longs:
                    dest = longs[0].lstrip("-").replace("-", "_")
                elif options and not options[0].startswith("-"):
                    dest = options[0].replace("-", "_")
            if dest is not None:
                yield node, dest

    @staticmethod
    def _provenance_keys(module: ModuleInfo) -> Set[str]:
        """Constant keys written to a ``provenance`` mapping."""
        keys: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                for target in targets:
                    # provenance["key"] = ...
                    if (
                        isinstance(target, ast.Subscript)
                        and _is_provenance(target.value)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
                    # provenance = {"key": ..., ...}
                    elif (
                        isinstance(target, ast.Name)
                        and target.id == "provenance"
                        and isinstance(value, ast.Dict)
                    ):
                        keys.update(
                            key.value
                            for key in value.keys
                            if isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                        )
            elif isinstance(node, ast.Call):
                # provenance.setdefault("key", ...)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setdefault"
                    and _is_provenance(node.func.value)
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    keys.add(node.args[0].value)
        return keys


def _is_provenance(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "provenance"
    if isinstance(node, ast.Attribute):
        return node.attr == "provenance"
    return False
