"""Structural rules: R004 array-first kernel seam, R005 import hygiene.

R004 guards the dispatch seam that the cupy/GPU exploration depends
on: nothing under ``kernels/`` may touch ``repro.graphs.graph`` (the
Python object-graph layer), and every class deriving from
:class:`~repro.kernels.base.KernelBackend` must implement the three
kernel contracts with signatures matching the ABC — checked against
the *live* contract table from
:func:`repro.kernels.base.kernel_contracts`, so the rule can never
drift from the interface it protects.

R005 keeps worker-reachable modules import-clean: subprocess workers
(warm pool, ``repro worker``) import these modules under spawn, so
import-time environment reads or global-state mutation would snapshot
coordinator state at the wrong moment and diverge between hosts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.astutil import (
    ImportMap,
    attr_chain,
    call_name,
    func_params,
    iter_import_time_nodes,
)
from repro.analysis.registry import Finding, ModuleInfo, Rule, register_rule

__all__ = ["KernelSeam", "WorkerImportHygiene"]


def _contract_table() -> Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Live contract signatures from the KernelBackend ABC."""
    from repro.kernels.base import kernel_contracts

    return {
        name: (tuple(positional), tuple(kwonly))
        for name, (positional, kwonly) in kernel_contracts().items()
    }


@register_rule
class KernelSeam(Rule):
    id = "R004"
    name = "kernel-seam"
    severity = "error"
    description = (
        "kernels/ is array-first: no repro.graphs.graph imports, no "
        "Graph-typed signatures, and KernelBackend subclasses must "
        "match the three kernel contracts"
    )
    default_config = {
        "packages": ["kernels"],
        "banned_imports": ["repro.graphs.graph"],
        "banned_types": ["Graph"],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        in_scope = module.in_packages(self.config["packages"])
        if in_scope:
            findings.extend(self._check_imports(module))
            findings.extend(self._check_annotations(module))
        # Contract conformance applies wherever a backend is defined —
        # external backends register from outside kernels/.
        findings.extend(self._check_backends(module))
        return findings

    def _check_imports(self, module: ModuleInfo) -> Iterable[Finding]:
        banned = tuple(self.config["banned_imports"])
        for node in ast.walk(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                targets = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
            for target in targets:
                if any(
                    target == name or target.startswith(name + ".")
                    for name in banned
                ):
                    yield module.finding(
                        self, node,
                        f"kernels/ must stay array-first: import of "
                        f"`{target}` pulls the Graph object layer across "
                        "the seam",
                    )
                    break

    def _check_annotations(self, module: ModuleInfo) -> Iterable[Finding]:
        banned = set(self.config["banned_types"])
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            annotations = [a.annotation for a in node.args.args + node.args.kwonlyargs]
            annotations.append(node.returns)
            for annotation in annotations:
                if annotation is None:
                    continue
                if self._mentions(annotation, banned):
                    yield module.finding(
                        self, node,
                        f"`{node.name}` accepts/returns a Graph object; "
                        "kernel contracts take arrays only",
                    )
                    break

    @staticmethod
    def _mentions(annotation: ast.AST, banned: set) -> bool:
        # Annotations may be strings (postponed evaluation) or nodes.
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return any(name in annotation.value for name in banned)
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in banned:
                return True
            if isinstance(node, ast.Attribute) and node.attr in banned:
                return True
        return False

    def _check_backends(self, module: ModuleInfo) -> Iterable[Finding]:
        contracts = _contract_table()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {attr_chain(base) for base in node.bases}
            if not any(
                base and base.split(".")[-1] == "KernelBackend"
                for base in bases
            ):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name, (positional, kwonly) in sorted(contracts.items()):
                if name not in methods:
                    yield module.finding(
                        self, node,
                        f"backend `{node.name}` does not implement the "
                        f"`{name}` kernel contract",
                    )
                    continue
                got_pos, got_kw = func_params(methods[name])
                if got_pos != positional or got_kw != kwonly:
                    yield module.finding(
                        self, methods[name],
                        f"backend `{node.name}.{name}` signature "
                        f"{got_pos + got_kw} does not match the contract "
                        f"{positional + kwonly}; mismatched signatures "
                        "break keyword call sites across the seam",
                    )


@register_rule
class WorkerImportHygiene(Rule):
    id = "R005"
    name = "worker-import-hygiene"
    severity = "error"
    description = (
        "worker-reachable modules must not read env vars or mutate "
        "global state at import time (outside the sanctioned seam)"
    )
    default_config = {
        # Everything a spawn-started worker imports transitively.
        "packages": [
            "kernels", "simulation", "study", "service", "graphs",
            "keygraphs", "channels", "core", "probability", "utils", "wsn",
        ],
        # The sanctioned configuration seam: ambient env resolution is
        # these modules' explicit, function-scoped job.  (They are still
        # checked — only *their* import-time reads would be flagged.)
        "allowed_modules": [],
        "env_reads": ["os.getenv", "os.environ.get", "os.environ.setdefault"],
        "mutating_calls": [
            "os.putenv",
            "numpy.seterr",
            "numpy.random.seed",
            "warnings.filterwarnings",
            "warnings.simplefilter",
            "logging.basicConfig",
            "multiprocessing.set_start_method",
            "sys.setrecursionlimit",
        ],
    }

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_packages(self.config["packages"]):
            return []
        if module.matches(self.config["allowed_modules"]):
            return []
        findings: List[Finding] = []
        imports = ImportMap(module.tree)
        env_reads = list(self.config["env_reads"])
        mutating = list(self.config["mutating_calls"])
        for node in iter_import_time_nodes(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(imports, node)
                if name in env_reads:
                    findings.append(
                        module.finding(
                            self, node,
                            f"import-time `{name}` snapshots the "
                            "environment when the worker imports, not "
                            "when work is scheduled; read it inside a "
                            "function",
                        )
                    )
                elif name in mutating:
                    findings.append(
                        module.finding(
                            self, node,
                            f"import-time `{name}` mutates process-global "
                            "state in every worker; apply it in an "
                            "explicit setup path",
                        )
                    )
            elif isinstance(node, ast.Subscript):
                chain = imports.resolve(node.value)
                if chain == "os.environ":
                    findings.append(
                        module.finding(
                            self, node,
                            "import-time os.environ access; environment "
                            "handling belongs in function scope on the "
                            "sanctioned config seam",
                        )
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    owner = imports.resolve(target.value)
                    if owner is not None and owner in imports.aliases.values():
                        findings.append(
                            module.finding(
                                self, node,
                                f"import-time assignment to "
                                f"`{owner}.{target.attr}` mutates another "
                                "module's global state",
                            )
                        )
        return findings
