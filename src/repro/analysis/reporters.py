"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import LintResult
from repro.analysis.registry import list_rules

__all__ = ["render_text", "render_json", "render_rule_listing"]

REPORT_FORMAT = "repro-lint-report/v1"


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one ``path:line:col RULE message`` per
    finding, then the summary line."""
    lines: List[str] = [finding.render() for finding in result.findings]
    if verbose:
        lines.extend(
            f"{finding.render()}  [baselined]" for finding in result.baselined
        )
        lines.extend(
            f"{finding.render()}  [suppressed]" for finding in result.suppressed
        )
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report for the CI gate."""
    document: Dict[str, object] = {
        "format": REPORT_FORMAT,
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "summary": {
            "files": result.files,
            "rules": result.rules,
            "active": len(result.findings),
            "errors": sum(
                1 for f in result.findings if f.severity == "error"
            ),
            "warnings": sum(
                1 for f in result.findings if f.severity == "warning"
            ),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """``repro lint --list-rules`` output."""
    lines = []
    for cls in list_rules():
        lines.append(f"{cls.id}  {cls.name:28} [{cls.severity}] {cls.description}")
    return "\n".join(lines)
