"""The lint engine: file collection, rule dispatch, suppression, baseline.

:func:`lint_paths` is the one entry point; ``repro lint`` and the test
suite both call it.  The pipeline:

1. collect ``*.py`` files under the given paths (stable sorted order);
2. parse each into a :class:`~repro.analysis.registry.ModuleInfo`
   (syntax errors become ``R999`` findings rather than crashes);
3. run every selected rule's ``check_module`` per module, then its
   ``finalize`` over the whole :class:`~repro.analysis.registry.Project`;
4. drop findings suppressed by a *justified* inline
   ``# repro: noqa[RULE] -- why`` on the finding's line (R000 polices
   unjustified ones);
5. partition the remainder against the baseline.

Exit-code contract (``LintResult.exit_code``): 0 = clean or fully
baselined/suppressed, 1 = at least one active error-severity finding.
Configuration mistakes raise :class:`~repro.exceptions.AnalysisError`,
which the CLI maps to exit code 2.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.baseline import Baseline
from repro.analysis.registry import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    get_rule,
    list_rules,
)
from repro.exceptions import AnalysisError

__all__ = ["LintResult", "collect_modules", "lint_paths"]

#: Rule id reserved for files the analyzer cannot parse.
PARSE_ERROR_RULE = "R999"


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]  #: active (reported, gate-relevant)
    baselined: List[Finding]  #: matched by the baseline
    suppressed: List[Finding]  #: silenced by justified inline noqa
    files: int
    rules: List[str]  #: ids that ran

    @property
    def exit_code(self) -> int:
        errors = [f for f in self.findings if f.severity == "error"]
        return 1 if errors else 0

    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s) "
            f"({len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed) "
            f"across {self.files} file(s), rules: {', '.join(self.rules)}"
        )


def _iter_python_files(paths: Sequence[Union[str, pathlib.Path]]):
    for raw in paths:
        root = pathlib.Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root, root.parent
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                yield path, root
        else:
            raise AnalysisError(f"no such file or directory: {root}")


def _relative_key(path: pathlib.Path, root: pathlib.Path) -> str:
    """Stable reporting/baseline key for *path*.

    Files inside a ``repro`` package report as ``repro/...`` regardless
    of how the linter was invoked (``src``, ``src/repro``, an absolute
    path); anything else reports relative to its scan root, so fixture
    trees keep their package-shaped layout (``kernels/bad.py``).
    """
    parts = path.parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    try:
        rel = path.relative_to(root)
    except ValueError:  # pragma: no cover - _iter_python_files pairs them
        rel = path
    return rel.as_posix()


def collect_modules(
    paths: Sequence[Union[str, pathlib.Path]],
) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Parse every python file under *paths*; unparseable files become
    ``R999`` findings instead of aborting the run."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    seen = set()
    for path, root in _iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        rel = _relative_key(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(
                Finding(
                    rule=PARSE_ERROR_RULE, path=rel, line=1, col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            modules.append(ModuleInfo(path=path, rel=rel, source=source))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return modules, errors


def _select_rules(
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]],
    severities: Optional[Dict[str, str]],
    config: Optional[Dict[str, Dict[str, object]]],
) -> List[Rule]:
    if select:
        classes = [get_rule(rule_id.upper()) for rule_id in select]
    else:
        classes = list_rules()
    ignored = {rule_id.upper() for rule_id in ignore} if ignore else set()
    for rule_id in ignored:
        get_rule(rule_id)  # validate: typos in --ignore should not pass silently
    severities = {k.upper(): v for k, v in (severities or {}).items()}
    for rule_id, level in severities.items():
        get_rule(rule_id)
        if level not in ("error", "warning"):
            raise AnalysisError(
                f"severity for {rule_id} must be 'error' or 'warning', got {level!r}"
            )
    rules: List[Rule] = []
    for cls in classes:
        if cls.id in ignored:
            continue
        instance = cls((config or {}).get(cls.id))
        if cls.id in severities:
            instance.severity = severities[cls.id]
        rules.append(instance)
    return rules


def _apply_suppressions(
    modules: Dict[str, ModuleInfo], findings: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        module = modules.get(finding.path)
        note = module.suppressions.get(finding.line) if module else None
        if (
            note is not None
            and note.valid
            and (finding.rule in note.rules or "ALL" in note.rules)
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Union[str, pathlib.Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Union[str, pathlib.Path, Baseline]] = None,
    severities: Optional[Dict[str, str]] = None,
    config: Optional[Dict[str, Dict[str, object]]] = None,
) -> LintResult:
    """Run the linter; see the module docstring for the pipeline."""
    rules = _select_rules(select, ignore, severities, config)
    modules, parse_errors = collect_modules(paths)
    project = Project(modules)

    findings: List[Finding] = list(parse_errors)
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.finalize(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_rel = {module.rel: module for module in modules}
    findings, suppressed = _apply_suppressions(by_rel, findings)

    baselined: List[Finding] = []
    if baseline is not None:
        if not isinstance(baseline, Baseline):
            baseline = Baseline.load(baseline)
        findings, baselined = baseline.split(findings)

    return LintResult(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        files=len(modules),
        rules=[rule.id for rule in rules],
    )
