"""Rule plugin registry and the data model shared by all lint rules.

A *rule* is a class with an ``id`` (``"R001"``), a ``name``, a default
``severity``, a ``default_config`` dict, and two hooks:

* :meth:`Rule.check_module` — called once per analyzed module with a
  parsed :class:`ModuleInfo`; yields :class:`Finding`s.
* :meth:`Rule.finalize` — called once after every module has been
  visited, with the whole :class:`Project`; cross-file rules (R004's
  backend contracts, R007's provenance completeness) report here.

Rules self-register via the :func:`register_rule` decorator, so adding
a rule is one class in :mod:`repro.analysis.rules` (or any imported
module — external packages can register their own).
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.exceptions import AnalysisError

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "Suppression",
    "get_rule",
    "list_rules",
    "register_rule",
]

SEVERITIES = ("error", "warning")

#: ``# repro: noqa[R001,R002] -- justification`` (justification required).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source line."""

    rule: str
    path: str  #: stable package-relative posix path (baseline key)
    line: int  #: 1-indexed
    col: int  #: 0-indexed
    message: str
    severity: str = "error"
    snippet: str = ""  #: stripped source line (baseline content hash input)

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1} {self.rule} {self.message}"


@dataclasses.dataclass(frozen=True)
class Suppression:
    """An inline ``# repro: noqa[...]`` annotation on one line."""

    line: int
    rules: Tuple[str, ...]  #: empty tuple = malformed (nothing suppressed)
    justification: str

    @property
    def valid(self) -> bool:
        return bool(self.rules) and bool(self.justification)


class ModuleInfo:
    """One parsed source module plus the metadata rules need."""

    def __init__(self, path: pathlib.Path, rel: str, source: str) -> None:
        self.path = path
        #: Package-relative posix path: ``repro/study/metrics.py`` for
        #: tree files, scan-root-relative for fixture trees.  This is
        #: the reporting + baseline key, so findings are stable across
        #: invocation directories.
        self.rel = rel
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source)
        self.suppressions: Dict[int, Suppression] = _scan_suppressions(source)
        #: Path components after the (last) ``repro`` package dir, or
        #: all of ``rel`` when there is none — the scope vocabulary
        #: (``kernels``, ``study``, ...) rules match against.
        parts = rel.split("/")
        if "repro" in parts:
            parts = parts[len(parts) - 1 - parts[::-1].index("repro") + 1 :]
        self.subparts: Tuple[str, ...] = tuple(parts)

    def in_packages(self, packages: Iterable[str]) -> bool:
        """Whether this module lives under any of *packages* (dir names)."""
        dirs = set(self.subparts[:-1])
        return any(pkg in dirs for pkg in packages)

    def matches(self, module_paths: Iterable[str]) -> bool:
        """Whether ``rel`` ends with any of the given module paths."""
        return any(self.rel.endswith(suffix) for suffix in module_paths)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.rel,
            line=line,
            col=col,
            message=message,
            severity=severity or rule.severity,
            snippet=self.line_text(line),
        )


class Project:
    """The full analyzed module set, for cross-file ``finalize`` hooks."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules)


class Rule:
    """Base class for lint rules; subclass and :func:`register_rule`."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""
    #: Per-rule configuration; the engine deep-copies and overlays
    #: user-supplied overrides before a run.
    default_config: Dict[str, object] = {}

    def __init__(self, config: Optional[Dict[str, object]] = None) -> None:
        merged = dict(self.default_config)
        if config:
            merged.update(config)
        self.config = merged

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the rule registry.

    Re-registering an id replaces the previous rule (tests and external
    plugins use this to inject instrumented variants).
    """
    if not cls.id or not re.fullmatch(r"[A-Z][A-Z0-9_]*\d", cls.id):
        raise AnalysisError(
            f"rule id must look like 'R001', got {cls.id!r} on {cls.__name__}"
        )
    if cls.severity not in SEVERITIES:
        raise AnalysisError(
            f"rule {cls.id} severity must be one of {SEVERITIES}, got {cls.severity!r}"
        )
    _RULES[cls.id] = cls
    return cls


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {rule_id!r}; registered: {', '.join(sorted(_RULES))}"
        )


def list_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def _scan_suppressions(source: str) -> Dict[int, Suppression]:
    """Suppressions from actual COMMENT tokens (never docstrings/strings
    that merely *mention* the syntax)."""
    import io
    import tokenize

    out: Dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # the parser reports the syntax error as R999
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        raw = match.group("rules") or ""
        rules = tuple(
            part.strip().upper() for part in raw.split(",") if part.strip()
        )
        why = (match.group("why") or "").strip()
        line = token.start[0]
        out[line] = Suppression(line=line, rules=rules, justification=why)
    return out
