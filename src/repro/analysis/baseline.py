"""Committed baseline of grandfathered lint findings.

A baseline entry matches findings by ``(rule, path, content hash of the
stripped source line)`` plus an occurrence budget (``count``), so
unrelated edits — adding lines above, reformatting elsewhere — never
invalidate entries, while editing or duplicating the offending line
does resurface the finding.  Every entry carries a *required*
``justification``: the baseline is a ledger of intentional exceptions,
not a mute button.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.analysis.registry import Finding
from repro.exceptions import AnalysisError

__all__ = ["Baseline", "BaselineEntry", "finding_hash", "BASELINE_FORMAT"]

BASELINE_FORMAT = "repro-lint-baseline/v1"


def finding_hash(finding: Finding) -> str:
    """Content hash identifying a finding independent of line numbers."""
    payload = f"{finding.rule}\x1f{finding.path}\x1f{finding.snippet}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    hash: str
    justification: str
    count: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "hash": self.hash,
            "justification": self.justification,
            "count": self.count,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Baseline":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
            raise AnalysisError(
                f"baseline {path} is not a {BASELINE_FORMAT!r} document"
            )
        entries: List[BaselineEntry] = []
        for raw in data.get("entries", ()):
            if not isinstance(raw, dict):
                raise AnalysisError(f"baseline {path}: entry {raw!r} is not an object")
            missing = {"rule", "path", "hash", "justification"} - set(raw)
            if missing:
                raise AnalysisError(
                    f"baseline {path}: entry {raw.get('rule')}/{raw.get('path')} "
                    f"is missing {sorted(missing)}"
                )
            justification = str(raw["justification"]).strip()
            if not justification:
                raise AnalysisError(
                    f"baseline {path}: entry {raw['rule']} at {raw['path']} has "
                    "an empty justification — baselines require one"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    hash=str(raw["hash"]),
                    justification=justification,
                    count=max(1, int(raw.get("count", 1))),
                )
            )
        return cls(entries=entries)

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        document = {
            "format": BASELINE_FORMAT,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.hash)
                )
            ],
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    @classmethod
    def from_findings(
        cls, findings: List[Finding], justification: str
    ) -> "Baseline":
        """Grandfather *findings* wholesale (``--write-baseline``)."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.rule, finding.path, finding_hash(finding))
            budget[key] = budget.get(key, 0) + 1
        return cls(
            entries=[
                BaselineEntry(
                    rule=rule, path=path, hash=digest,
                    justification=justification, count=count,
                )
                for (rule, path, digest), count in budget.items()
            ]
        )

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition *findings* into (active, baselined).

        Each entry absorbs at most ``count`` matching findings; any
        surplus stays active, so duplicating a grandfathered line is a
        fresh finding.
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry.rule, entry.path, entry.hash)
            budget[key] = budget.get(key, 0) + entry.count
        active: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding_hash(finding))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                active.append(finding)
        return active, matched
