"""Small AST helpers shared by the lint rules.

The rules reason about *canonical dotted names*: ``np.random.default_rng``
resolves to ``numpy.random.default_rng`` through the module's imports,
so aliasing (``import numpy as np``, ``from time import time as now``)
cannot dodge a rule.  Resolution is purely lexical — no runtime imports
of analyzed code ever happen.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ImportMap",
    "attr_chain",
    "call_name",
    "iter_import_time_nodes",
    "parent_map",
]


def attr_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute/name chain as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Alias → canonical dotted-prefix map for one module.

    Collects every ``import``/``from ... import`` in the module (any
    nesting level: function-local imports alias names too) and resolves
    expression chains against it.  ``from . import x`` and other
    relative imports resolve with a ``.``-prefixed module part, which
    still ends with the interesting suffix (``.graphs.graph``), so
    suffix matching keeps working.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an attribute/name chain, or None."""
        chain = attr_chain(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        full = self.aliases.get(head)
        if full is None:
            return chain
        return f"{full}.{rest}" if rest else full


def call_name(imports: ImportMap, node: ast.Call) -> Optional[str]:
    """Canonical dotted name of a call target, or None for dynamic calls."""
    return imports.resolve(node.func)


def parent_map(tree: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) -> parent`` for every node in *tree*."""
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def iter_import_time_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Every node executed at import time (module + class bodies).

    Descends into module-level ``if``/``try``/``with`` blocks and class
    bodies, but never into function bodies — those run at call time.
    """
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def func_params(node: ast.FunctionDef) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(positional-or-self names, keyword-only names) of a function def."""
    args = node.args
    positional = tuple(a.arg for a in args.posonlyargs + args.args)
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    return positional, kwonly
