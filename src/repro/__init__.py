"""repro — secure k-connectivity of WSNs under q-composite key predistribution
with on/off channels.

A faithful, laptop-scale reproduction of:

    Jun Zhao. "Secure connectivity of wireless sensor networks under key
    predistribution with on/off channels." ICDCS 2017.

The package layers:

* :mod:`repro.probability` — overlap distributions, limit laws, couplings;
* :mod:`repro.kernels` — pluggable compute backends (pure numpy
  reference, optional numba) behind the three hot-path kernels:
  min-label union, overlap counting, and the exact k-connectivity
  decision with its Nagamochi–Ibaraki sparse certificate;
* :mod:`repro.graphs` — from-scratch graph algorithms (union-find, Tarjan,
  Dinic/Even k-connectivity) and the Erdős–Rényi generator;
* :mod:`repro.keygraphs` — key pools, rings, uniform/binomial
  q-intersection graphs, scheme objects;
* :mod:`repro.channels` — on/off and disk channel models;
* :mod:`repro.wsn` — deployed networks, routing, failures, capture attacks;
* :mod:`repro.core` — Theorem 1, Lemmas 1/7/8/9, design guidelines (Eq. 9);
* :mod:`repro.simulation` — the Monte Carlo engine and trial protocols;
* :mod:`repro.study` — the declarative Scenario/Study layer: every
  experiment as a frozen JSON config compiled onto shared-deployment
  sweeps;
* :mod:`repro.experiments` — every figure/table of the paper, declared
  as scenarios and runnable.

Quickstart::

    from repro import QCompositeParams, predict_k_connectivity
    from repro.simulation import estimate_connectivity

    params = QCompositeParams(
        num_nodes=1000, key_ring_size=45, pool_size=10000,
        overlap=2, channel_prob=0.5,
    )
    print(predict_k_connectivity(params, k=1).probability)   # Theorem 1
    print(estimate_connectivity(params, trials=100).estimate)  # Monte Carlo
"""

from repro.exceptions import (
    DesignError,
    ExperimentError,
    GraphError,
    KernelError,
    ParameterError,
    ReproError,
    SimulationError,
)
from repro.params import QCompositeParams
from repro.core.design import design_network, minimal_key_ring_size
from repro.core.theorem1 import (
    ConnectivityRegime,
    Theorem1Prediction,
    predict_k_connectivity,
)
from repro.keygraphs.schemes import EschenauerGligorScheme, QCompositeScheme
from repro.channels.onoff import OnOffChannel
from repro.channels.disk import DiskChannel
from repro.study import MetricSpec, Scenario, Study
from repro.wsn.network import SecureWSN

__version__ = "1.0.0"

__all__ = [
    "DesignError",
    "ExperimentError",
    "GraphError",
    "ParameterError",
    "ReproError",
    "SimulationError",
    "QCompositeParams",
    "design_network",
    "minimal_key_ring_size",
    "ConnectivityRegime",
    "Theorem1Prediction",
    "predict_k_connectivity",
    "EschenauerGligorScheme",
    "QCompositeScheme",
    "OnOffChannel",
    "DiskChannel",
    "MetricSpec",
    "Scenario",
    "Study",
    "SecureWSN",
    "__version__",
]
