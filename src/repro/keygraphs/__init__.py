"""Key predistribution substrate: pools, rings, intersection graphs, schemes."""

from repro.keygraphs.binomial_graph import (
    binomial_intersection_edges,
    binomial_intersection_graph,
    coupled_ring_pair,
)
from repro.keygraphs.pool import KeyPool
from repro.keygraphs.rings import (
    rings_to_incidence,
    sample_binomial_rings,
    sample_class_labels,
    sample_class_rings,
    sample_uniform_rings,
)
from repro.keygraphs.schemes import (
    EschenauerGligorScheme,
    QCompositeScheme,
    shared_keys,
)
from repro.keygraphs.uniform_graph import (
    edges_from_rings,
    overlap_counts_from_rings,
    uniform_intersection_edges,
    uniform_intersection_graph,
)

__all__ = [
    "binomial_intersection_edges",
    "binomial_intersection_graph",
    "coupled_ring_pair",
    "KeyPool",
    "rings_to_incidence",
    "sample_binomial_rings",
    "sample_class_labels",
    "sample_class_rings",
    "sample_uniform_rings",
    "EschenauerGligorScheme",
    "QCompositeScheme",
    "shared_keys",
    "edges_from_rings",
    "overlap_counts_from_rings",
    "uniform_intersection_edges",
    "uniform_intersection_graph",
]
