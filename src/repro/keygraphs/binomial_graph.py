"""Binomial q-intersection graph ``H_q(n, x, P)`` (the Lemma 5 auxiliary).

``H_q(n, x, P)`` differs from the uniform graph only in the ring model:
each key joins each node's ring independently with probability ``x``,
so ring sizes are ``Binomial(P, x)`` instead of exactly ``K``.  The
coupling experiments sample it both independently and *jointly* with a
uniform graph, the joint sampler realizing the monotone coupling that
Lemma 5 asserts succeeds with probability ``1 - o(1)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.graph import Graph
from repro.keygraphs.rings import sample_binomial_rings, sample_uniform_rings
from repro.keygraphs.uniform_graph import edges_from_rings
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = [
    "binomial_intersection_edges",
    "binomial_intersection_graph",
    "coupled_ring_pair",
]


def binomial_intersection_edges(
    num_nodes: int,
    key_probability: float,
    pool_size: int,
    q: int,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample ``H_q(n, x, P)`` and return its canonical edge array."""
    rings = sample_binomial_rings(num_nodes, key_probability, pool_size, seed)
    return edges_from_rings(rings, q)


def binomial_intersection_graph(
    num_nodes: int,
    key_probability: float,
    pool_size: int,
    q: int,
    seed: RandomState = None,
) -> Graph:
    """Sample ``H_q(n, x, P)`` as a :class:`~repro.graphs.graph.Graph`."""
    edges = binomial_intersection_edges(
        num_nodes, key_probability, pool_size, q, seed
    )
    return Graph.from_edge_array(num_nodes, edges)


def coupled_ring_pair(
    num_nodes: int,
    key_ring_size: int,
    key_probability: float,
    pool_size: int,
    seed: RandomState = None,
) -> Tuple[np.ndarray, List[np.ndarray], bool]:
    """Jointly sample uniform rings and binomial sub-rings (Lemma 5 coupling).

    For each node, draw the binomial ring size ``B ~ Bin(P, x)``; when
    ``B <= K`` the binomial ring is taken to be a uniform ``B``-subset
    of the node's uniform ``K``-ring, which realizes the subset coupling
    exactly: every edge of ``H_q`` built from the sub-rings is an edge
    of ``G_q`` built from the full rings.  When some node draws
    ``B > K`` the subset embedding is impossible; that node's binomial
    ring is drawn from the whole pool instead and the coupling is marked
    failed.

    Returns
    -------
    (uniform_rings, binomial_rings, success):
        ``success`` is ``True`` iff every node satisfied ``B <= K``.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    check_key_parameters(key_ring_size, pool_size, 1)
    key_probability = check_probability(key_probability, "key_probability")
    rng = as_generator(seed)

    uniform = sample_uniform_rings(num_nodes, key_ring_size, pool_size, rng)
    sizes = rng.binomial(pool_size, key_probability, size=num_nodes)
    success = bool((sizes <= key_ring_size).all())

    binomial: List[np.ndarray] = []
    for i, b in enumerate(sizes):
        b = int(b)
        if b <= key_ring_size:
            # Uniform B-subset of the node's own K-ring: subset coupling.
            if b == key_ring_size:
                sub = uniform[i].copy()
            else:
                picked = rng.choice(key_ring_size, size=b, replace=False)
                sub = np.sort(uniform[i][picked])
            binomial.append(sub)
        else:
            if b > pool_size:  # pragma: no cover - binomial cannot exceed P
                raise ParameterError("binomial ring larger than pool")
            picked = rng.choice(pool_size, size=b, replace=False)
            binomial.append(np.sort(picked.astype(np.int64)))
    return uniform, binomial, success
