"""Key pool abstraction.

A :class:`KeyPool` is the set ``P_n`` of ``P`` distinct cryptographic
keys from which rings are drawn.  Graph-level code only needs key
*identifiers* (integers ``0 .. P-1``); the pool can additionally derive
deterministic per-key material so the WSN layer can demonstrate actual
link-key establishment and capture attacks over byte strings rather
than bare ids.
"""

from __future__ import annotations

import hashlib

from repro.exceptions import ParameterError
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["KeyPool"]


class KeyPool:
    """Pool of ``size`` keys, identified by integers ``0 .. size-1``.

    Parameters
    ----------
    size:
        Pool size ``P``.
    master_secret:
        Seed bytes for deriving per-key material.  Two pools with the
        same ``(size, master_secret)`` produce identical key bytes, so
        experiments remain reproducible end to end.
    """

    __slots__ = ("_size", "_master")

    def __init__(self, size: int, master_secret: bytes = b"repro-key-pool") -> None:
        self._size = check_positive_int(size, "size")
        if not isinstance(master_secret, (bytes, bytearray)):
            raise TypeError("master_secret must be bytes")
        self._master = bytes(master_secret)

    @property
    def size(self) -> int:
        """Pool size ``P``."""
        return self._size

    def contains(self, key_id: int) -> bool:
        """Return whether *key_id* names a key of this pool."""
        return 0 <= key_id < self._size

    def key_material(self, key_id: int) -> bytes:
        """Derive the 16-byte key material for *key_id* (KDF: SHA-256).

        Deterministic in ``(master_secret, key_id)``; raises if the id is
        outside the pool.
        """
        key_id = check_nonnegative_int(key_id, "key_id")
        if key_id >= self._size:
            raise ParameterError(
                f"key id {key_id} outside pool of size {self._size}"
            )
        digest = hashlib.sha256(
            self._master + key_id.to_bytes(8, "big")
        ).digest()
        return digest[:16]

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyPool(size={self._size})"
