"""Key predistribution scheme objects.

These classes wrap the ring samplers and edge rules behind the
operational API a WSN deployment uses: *assign* rings before
deployment, then decide link-by-link whether two sensors *can establish*
a secure link and what the resulting link key is.  The q-composite link
key is the hash of **all** shared keys (Chan–Perrig–Song §4.1), which is
what makes the scheme's capture resilience differ from plain
Eschenauer–Gligor — the attack layer exercises exactly this.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.graph import Graph
from repro.keygraphs.pool import KeyPool
from repro.keygraphs.rings import sample_uniform_rings
from repro.keygraphs.uniform_graph import edges_from_rings
from repro.probability.hypergeometric import overlap_survival
from repro.utils.rng import RandomState
from repro.utils.validation import check_key_parameters, check_positive_int

__all__ = ["QCompositeScheme", "EschenauerGligorScheme", "shared_keys"]


def shared_keys(ring_a: np.ndarray, ring_b: np.ndarray) -> np.ndarray:
    """Sorted array of key ids present in both rings."""
    return np.intersect1d(
        np.asarray(ring_a, dtype=np.int64), np.asarray(ring_b, dtype=np.int64)
    )


class QCompositeScheme:
    """The q-composite key predistribution scheme (Chan et al. 2003).

    Parameters
    ----------
    key_ring_size, pool_size, q:
        ``K``, ``P``, and the required key overlap ``q >= 1``.
    pool:
        Optional explicit :class:`KeyPool`; by default one of size ``P``
        is created (deterministic key material).
    """

    def __init__(
        self,
        key_ring_size: int,
        pool_size: int,
        q: int,
        pool: Optional[KeyPool] = None,
    ) -> None:
        key_ring_size, pool_size, q = check_key_parameters(key_ring_size, pool_size, q)
        self.key_ring_size = key_ring_size
        self.pool_size = pool_size
        self.q = q
        if pool is not None and pool.size != self.pool_size:
            raise ParameterError(
                f"pool size {pool.size} does not match pool_size {pool_size}"
            )
        self.pool = pool if pool is not None else KeyPool(self.pool_size)

    # -- predeployment ---------------------------------------------------

    def assign_rings(self, num_nodes: int, seed: RandomState = None) -> np.ndarray:
        """Assign a uniform ``K``-ring to each of *num_nodes* sensors."""
        num_nodes = check_positive_int(num_nodes, "num_nodes")
        return sample_uniform_rings(
            num_nodes, self.key_ring_size, self.pool_size, seed
        )

    # -- link establishment ----------------------------------------------

    def can_establish(self, ring_a: np.ndarray, ring_b: np.ndarray) -> bool:
        """Return whether the two rings share at least ``q`` keys."""
        return shared_keys(ring_a, ring_b).size >= self.q

    def link_key(self, ring_a: np.ndarray, ring_b: np.ndarray) -> Optional[bytes]:
        """Derive the link key: hash of *all* shared key material.

        Returns ``None`` when fewer than ``q`` keys are shared (no secure
        link).  Hashing every shared key — not just ``q`` of them — is
        the q-composite rule that forces an adversary to capture the
        *entire* shared set to compromise a link.
        """
        common = shared_keys(ring_a, ring_b)
        if common.size < self.q:
            return None
        h = hashlib.sha256()
        for key_id in common.tolist():
            h.update(self.pool.key_material(int(key_id)))
        return h.digest()[:16]

    def link_compromised(
        self, ring_a: np.ndarray, ring_b: np.ndarray, captured_keys: Sequence[int]
    ) -> bool:
        """Return whether an adversary holding *captured_keys* learns the link key.

        True iff the link exists and every shared key is captured.
        """
        common = shared_keys(ring_a, ring_b)
        if common.size < self.q:
            return False
        captured = np.asarray(sorted(set(int(k) for k in captured_keys)), dtype=np.int64)
        return bool(np.isin(common, captured).all())

    # -- graph / probability views -----------------------------------------

    def key_graph_edges(self, rings: np.ndarray) -> np.ndarray:
        """Edge array of ``G_q`` induced by previously assigned rings."""
        return edges_from_rings(rings, self.q)

    def sample_key_graph(self, num_nodes: int, seed: RandomState = None) -> Graph:
        """Sample ``G_q(n, K, P)`` in one step."""
        rings = self.assign_rings(num_nodes, seed)
        return Graph.from_edge_array(num_nodes, self.key_graph_edges(rings))

    def edge_probability(self) -> float:
        """``s(K, P, q)`` — probability two sensors can establish a link."""
        return overlap_survival(self.key_ring_size, self.pool_size, self.q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(K={self.key_ring_size}, "
            f"P={self.pool_size}, q={self.q})"
        )


class EschenauerGligorScheme(QCompositeScheme):
    """The basic Eschenauer–Gligor scheme: q-composite with ``q = 1``."""

    def __init__(
        self, key_ring_size: int, pool_size: int, pool: Optional[KeyPool] = None
    ) -> None:
        super().__init__(key_ring_size, pool_size, q=1, pool=pool)
