"""Uniform q-intersection graph ``G_q(n, K, P)`` generation.

Two exact backends compute, for every node pair, whether the rings
share at least ``q`` keys:

* ``inverted`` (default) — build the key → holders index, emit one
  pair event per co-holding pair per key, and count pair multiplicities
  with ``np.unique``.  Cost is proportional to the number of incidence
  pair events, expected ``P * C(nK/P, 2)`` — around ``4·10^5`` at the
  paper's Figure 1 scale, versus ``5·10^5`` node pairs times ``K`` for
  the naive scan.
* ``dense`` — Gram matrix of the ``(n, P)`` membership matrix.  Cost
  ``O(n^2 P)`` flops but BLAS-bound; used as an independent
  cross-check in tests and competitive for small ``n``.

Both return canonical ``(m, 2)`` int64 edge arrays (``u < v``, sorted).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.graph import Graph
from repro.kernels import get_backend
from repro.keygraphs.rings import rings_to_incidence, sample_uniform_rings
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = [
    "edges_from_rings",
    "overlap_counts_from_rings",
    "uniform_intersection_edges",
    "uniform_intersection_graph",
]

Rings = Union[np.ndarray, Sequence[np.ndarray]]


def _flatten_rings(rings: Rings) -> Tuple[np.ndarray, np.ndarray, int]:
    """Return (node_ids, key_ids, num_nodes) incidence representation."""
    if isinstance(rings, np.ndarray):
        if rings.ndim != 2:
            raise ParameterError(
                f"uniform rings array must be 2-D, got shape {rings.shape}"
            )
        n, k = rings.shape
        node_ids = np.repeat(np.arange(n, dtype=np.int64), k)
        key_ids = rings.astype(np.int64, copy=False).ravel()
        return node_ids, key_ids, n
    rows: List[np.ndarray] = [np.asarray(r, dtype=np.int64) for r in rings]
    n = len(rows)
    if n == 0:
        raise ParameterError("rings must contain at least one node")
    node_ids = np.concatenate(
        [np.full(r.size, i, dtype=np.int64) for i, r in enumerate(rows)]
    ) if any(r.size for r in rows) else np.empty(0, dtype=np.int64)
    key_ids = (
        np.concatenate(rows) if any(r.size for r in rows) else np.empty(0, np.int64)
    )
    return node_ids, key_ids, n


def overlap_counts_from_rings(rings: Rings) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(pair_keys, counts)``: shared-key count per co-holding pair.

    ``pair_keys`` encodes each unordered node pair ``(u, v), u < v`` as
    ``u * n + v``; ``counts`` is the number of keys the pair shares.
    Pairs sharing zero keys are absent.  This is the primitive under
    both the q-composite edge rule (``counts >= q``) and the attack
    layer (which needs the actual shared-key multiplicities).

    The counting itself is a kernel dispatched to the active backend
    (:mod:`repro.kernels`); the group-size-batched ``np.unique``
    implementation lives in :func:`repro.kernels.reference.overlap_counts`.
    """
    node_ids, key_ids, n = _flatten_rings(rings)
    if key_ids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return get_backend().overlap_counts(node_ids, key_ids, n)


def edges_from_rings(rings: Rings, q: int, *, backend: str = "inverted") -> np.ndarray:
    """Edge array of the q-intersection graph induced by *rings*.

    Parameters
    ----------
    rings:
        ``(n, K)`` array (uniform model) or ragged list (binomial model).
    q:
        Minimum number of shared keys for an edge.
    backend:
        ``"inverted"`` (default) or ``"dense"`` — see module docstring.
    """
    q = check_positive_int(q, "q")
    if backend == "inverted":
        node_pairs, counts = overlap_counts_from_rings(rings)
        _, _, n = _flatten_rings(rings)
        chosen = node_pairs[counts >= q]
        out = np.empty((chosen.size, 2), dtype=np.int64)
        out[:, 0] = chosen // n
        out[:, 1] = chosen % n
        return out
    if backend == "dense":
        return _edges_dense(rings, q)
    raise ParameterError(f"unknown backend {backend!r}; use 'inverted' or 'dense'")


def _edges_dense(rings: Rings, q: int) -> np.ndarray:
    if isinstance(rings, np.ndarray):
        pool_size = int(rings.max()) + 1 if rings.size else 1
    else:
        pool_size = (
            int(max((int(r.max()) for r in rings if r.size), default=0)) + 1
        )
    incidence = rings_to_incidence(rings, pool_size).astype(np.float32)
    gram = incidence @ incidence.T  # exact: counts <= K < 2**24
    iu, ju = np.triu_indices(gram.shape[0], k=1)
    mask = gram[iu, ju] >= q
    out = np.empty((int(mask.sum()), 2), dtype=np.int64)
    out[:, 0] = iu[mask]
    out[:, 1] = ju[mask]
    return out


def uniform_intersection_edges(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    seed: RandomState = None,
    *,
    backend: str = "inverted",
) -> np.ndarray:
    """Sample ``G_q(n, K, P)`` and return its canonical edge array."""
    rings = sample_uniform_rings(num_nodes, key_ring_size, pool_size, seed)
    return edges_from_rings(rings, q, backend=backend)


def uniform_intersection_graph(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    seed: RandomState = None,
    *,
    backend: str = "inverted",
) -> Graph:
    """Sample ``G_q(n, K, P)`` as a :class:`~repro.graphs.graph.Graph`."""
    edges = uniform_intersection_edges(
        num_nodes, key_ring_size, pool_size, q, seed, backend=backend
    )
    return Graph.from_edge_array(num_nodes, edges)
