"""Key-ring sampling.

Two ring models appear in the paper:

* **uniform rings** — every node independently receives a uniformly
  random ``K``-subset of the pool (the q-composite scheme proper, and
  the node model of ``G_q(n, K, P)``);
* **binomial rings** — every key joins a node's ring independently with
  probability ``x`` (the auxiliary graph ``H_q(n, x, P)`` of Lemma 5).

The uniform sampler is the Monte Carlo hot path, so it is vectorized: it
draws ``(n, K)`` i.i.d. key ids and rejects rows containing duplicates
(unbiased — i.i.d. draws conditioned on distinctness are exactly a
uniform ordered selection).  When ``K(K-1)/(2P)`` is large enough that
rejection would stall, it falls back to an ``O(nP)`` argpartition
shuffle, which is exact for any ``K <= P``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import RandomState, as_generator, sample_distinct_integers
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = [
    "sample_uniform_rings",
    "sample_binomial_rings",
    "sample_class_labels",
    "sample_class_rings",
    "rings_to_incidence",
]

# Rejection sampling accepts a row with probability ~exp(-K(K-1)/(2P)).
# Below this threshold on K(K-1)/(2P), the expected number of passes is
# at most ~1/(1 - e^{-1}) ≈ 1.6 and rejection wins; above it, fall back.
_REJECTION_LIMIT = 1.0


def sample_uniform_rings(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample ``n`` uniform ``K``-subsets of ``{0, ..., P-1}``.

    Returns an ``(n, K)`` int64 array with sorted rows (sorting does not
    change the subset distribution and makes downstream set operations
    cheap).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    key_ring_size, pool_size, _ = check_key_parameters(key_ring_size, pool_size, 1)
    rng = as_generator(seed)
    n, k, p = num_nodes, key_ring_size, pool_size

    if k == p:
        return np.tile(np.arange(p, dtype=np.int64), (n, 1))

    density = k * (k - 1) / (2.0 * p)
    if density <= _REJECTION_LIMIT:
        rings = np.sort(rng.integers(0, p, size=(n, k), dtype=np.int64), axis=1)
        # Only redrawn rows can still contain duplicates, so the re-check
        # after each pass is restricted to them; accepted rows are final.
        bad_idx = np.flatnonzero((np.diff(rings, axis=1) == 0).any(axis=1))
        while bad_idx.size:
            redraw = np.sort(
                rng.integers(0, p, size=(bad_idx.size, k), dtype=np.int64), axis=1
            )
            rings[bad_idx] = redraw
            still = (np.diff(redraw, axis=1) == 0).any(axis=1)
            bad_idx = bad_idx[still]
        return rings

    # Dense fallback: per-row partial shuffle via argpartition of noise.
    noise = rng.random((n, p))
    picked = np.argpartition(noise, k - 1, axis=1)[:, :k].astype(np.int64)
    return np.sort(picked, axis=1)


def sample_binomial_rings(
    num_nodes: int,
    key_probability: float,
    pool_size: int,
    seed: RandomState = None,
) -> List[np.ndarray]:
    """Sample ``n`` binomial rings: each key kept i.i.d. with prob ``x``.

    Returns a ragged list of sorted int64 arrays (ring sizes differ by
    node — that is the point of the binomial model).  Sampling draws all
    ring sizes ``Bin(P, x)`` up front and then fills every ring with
    batched numpy draws: sparse rings go through one padded rejection
    matrix (i.i.d. draws conditioned on per-row distinctness — exactly a
    uniform subset per node, same argument as the uniform sampler),
    collision-heavy rings through the ``O(size)`` distinct-integer
    sampler or an ``O(P)`` partial shuffle when over half the pool.  No
    per-key Python loop remains.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    pool_size = check_positive_int(pool_size, "pool_size")
    key_probability = check_probability(key_probability, "key_probability")
    rng = as_generator(seed)

    sizes = rng.binomial(pool_size, key_probability, size=num_nodes).astype(np.int64)
    rings: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_nodes

    # Rejection is viable while the per-row collision exponent
    # size*(size-1)/(2P) stays small; collision-heavy rings fall back to
    # the O(size)-per-row distinct-integer sampler.
    rejection_ok = sizes * (sizes - 1) <= 2.0 * _REJECTION_LIMIT * pool_size
    sparse_rows = np.flatnonzero((sizes > 0) & rejection_ok)
    dense_rows = np.flatnonzero((sizes > 0) & ~rejection_ok)

    if sparse_rows.size:
        row_sizes = sizes[sparse_rows]
        width = int(row_sizes.max())
        cols = np.arange(width, dtype=np.int64)
        # Pad columns beyond each row's size with distinct sentinels
        # >= P so they can never collide with real draws or each other.
        pad = cols[None, :] >= row_sizes[:, None]
        sentinel = pool_size + cols

        block = rng.integers(
            0, pool_size, size=(sparse_rows.size, width), dtype=np.int64
        )
        filled = np.sort(np.where(pad, sentinel, block), axis=1)
        bad = (np.diff(filled, axis=1) == 0).any(axis=1)
        while bad.any():
            count = int(bad.sum())
            redraw = rng.integers(0, pool_size, size=(count, width), dtype=np.int64)
            filled[bad] = np.sort(np.where(pad[bad], sentinel, redraw), axis=1)
            bad = (np.diff(filled, axis=1) == 0).any(axis=1)
        for pos, row in enumerate(sparse_rows):
            rings[row] = filled[pos, : sizes[row]].copy()

    for row in dense_rows:
        size = int(sizes[row])
        if size > pool_size // 2:
            # Near-full ring: partial shuffle, O(P) per row.
            noise = rng.random(pool_size)
            picked = np.argpartition(noise, size - 1)[:size].astype(np.int64)
            picked.sort()
            rings[row] = picked
        else:
            # Mid-size ring: batched distinct draws, O(size) per row.
            rings[row] = sample_distinct_integers(pool_size, size, rng)

    return rings


def sample_class_labels(
    num_nodes: int,
    mu: Sequence[float],
    seed: RandomState = None,
) -> np.ndarray:
    """Draw i.i.d. class labels with class ``i`` chosen with probability ``mu[i]``.

    The heterogeneous (Eletreby–Yağan) model assigns every node a class
    before any ring is drawn.  Inverse-CDF sampling through one uniform
    per node keeps the draw count independent of the number of classes,
    which pins the stream layout for reproducibility.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    weights = np.asarray(mu, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ParameterError("mu must be a non-empty 1-d probability vector")
    if (weights <= 0.0).any():
        raise ParameterError("every class probability mu[i] must be > 0")
    total = float(weights.sum())
    if abs(total - 1.0) > 1e-9:
        raise ParameterError(f"class probabilities mu must sum to 1, got {total}")
    rng = as_generator(seed)
    edges = np.cumsum(weights) / total
    # Guard the top edge against rounding so a uniform of ~1.0 cannot
    # index past the last class.
    edges[-1] = 1.0
    uniforms = rng.random(num_nodes)
    return np.searchsorted(edges, uniforms, side="right").astype(np.int64)


def sample_class_rings(
    labels: np.ndarray,
    ring_sizes: Sequence[int],
    pool_size: int,
    seed: RandomState = None,
) -> List[np.ndarray]:
    """Sample per-node rings with per-class sizes ``ring_sizes[labels[v]]``.

    Returns a ragged list of sorted int64 arrays, one per node, matching
    the binomial sampler's ring representation so ragged rings flow
    through the same overlap kernels.  Classes are filled in label order
    ``0..C-1`` through :func:`sample_uniform_rings`, which fixes the RNG
    stream layout: the draw sequence depends only on ``(labels,
    ring_sizes, pool_size)``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.size == 0:
        raise ParameterError("labels must be a non-empty 1-d integer array")
    sizes = [check_positive_int(k, "ring_sizes[i]") for k in ring_sizes]
    if labels.min() < 0 or labels.max() >= len(sizes):
        raise ParameterError(
            f"labels must index into {len(sizes)} ring sizes, "
            f"got range [{labels.min()}, {labels.max()}]"
        )
    for k in sizes:
        check_key_parameters(k, pool_size, 1)
    rng = as_generator(seed)
    rings: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * labels.size
    for cls, size in enumerate(sizes):
        members = np.flatnonzero(labels == cls)
        if not members.size:
            continue
        block = sample_uniform_rings(members.size, size, pool_size, seed=rng)
        for pos, node in enumerate(members):
            rings[node] = block[pos]
    return rings


def rings_to_incidence(rings, pool_size: int) -> np.ndarray:
    """Convert rings to a dense ``(n, P)`` uint8 membership matrix.

    Accepts either the ``(n, K)`` array of uniform rings or the ragged
    list of binomial rings.  Used by the dense (Gram-matrix) overlap
    backend and by tests.
    """
    pool_size = check_positive_int(pool_size, "pool_size")
    if isinstance(rings, np.ndarray):
        rows = [rings[i] for i in range(rings.shape[0])]
    else:
        rows = list(rings)
    out = np.zeros((len(rows), pool_size), dtype=np.uint8)
    for i, ring in enumerate(rows):
        ring = np.asarray(ring, dtype=np.int64)
        if ring.size and (ring.min() < 0 or ring.max() >= pool_size):
            raise ParameterError("ring contains key ids outside the pool")
        out[i, ring] = 1
    return out
