"""Key-ring sampling.

Two ring models appear in the paper:

* **uniform rings** — every node independently receives a uniformly
  random ``K``-subset of the pool (the q-composite scheme proper, and
  the node model of ``G_q(n, K, P)``);
* **binomial rings** — every key joins a node's ring independently with
  probability ``x`` (the auxiliary graph ``H_q(n, x, P)`` of Lemma 5).

The uniform sampler is the Monte Carlo hot path, so it is vectorized: it
draws ``(n, K)`` i.i.d. key ids and rejects rows containing duplicates
(unbiased — i.i.d. draws conditioned on distinctness are exactly a
uniform ordered selection).  When ``K(K-1)/(2P)`` is large enough that
rejection would stall, it falls back to an ``O(nP)`` argpartition
shuffle, which is exact for any ``K <= P``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import RandomState, as_generator, sample_distinct_integers
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = [
    "sample_uniform_rings",
    "sample_binomial_rings",
    "rings_to_incidence",
]

# Rejection sampling accepts a row with probability ~exp(-K(K-1)/(2P)).
# Below this threshold on K(K-1)/(2P), the expected number of passes is
# at most ~1/(1 - e^{-1}) ≈ 1.6 and rejection wins; above it, fall back.
_REJECTION_LIMIT = 1.0


def sample_uniform_rings(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample ``n`` uniform ``K``-subsets of ``{0, ..., P-1}``.

    Returns an ``(n, K)`` int64 array with sorted rows (sorting does not
    change the subset distribution and makes downstream set operations
    cheap).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    check_key_parameters(key_ring_size, pool_size, 1)
    rng = as_generator(seed)
    n, k, p = num_nodes, key_ring_size, pool_size

    if k == p:
        return np.tile(np.arange(p, dtype=np.int64), (n, 1))

    density = k * (k - 1) / (2.0 * p)
    if density <= _REJECTION_LIMIT:
        rings = np.sort(rng.integers(0, p, size=(n, k), dtype=np.int64), axis=1)
        bad = (np.diff(rings, axis=1) == 0).any(axis=1)
        while bad.any():
            redraw = np.sort(
                rng.integers(0, p, size=(int(bad.sum()), k), dtype=np.int64), axis=1
            )
            rings[bad] = redraw
            bad_rows = (np.diff(rings, axis=1) == 0).any(axis=1)
            bad = bad_rows
        return rings

    # Dense fallback: per-row partial shuffle via argpartition of noise.
    noise = rng.random((n, p))
    picked = np.argpartition(noise, k - 1, axis=1)[:, :k].astype(np.int64)
    return np.sort(picked, axis=1)


def sample_binomial_rings(
    num_nodes: int,
    key_probability: float,
    pool_size: int,
    seed: RandomState = None,
) -> List[np.ndarray]:
    """Sample ``n`` binomial rings: each key kept i.i.d. with prob ``x``.

    Returns a ragged list of sorted int64 arrays (ring sizes differ by
    node — that is the point of the binomial model).  Sampling draws all
    ring sizes ``Bin(P, x)`` up front and then fills every ring with
    batched numpy draws: sparse rings go through one padded rejection
    matrix (i.i.d. draws conditioned on per-row distinctness — exactly a
    uniform subset per node, same argument as the uniform sampler),
    collision-heavy rings through the ``O(size)`` distinct-integer
    sampler or an ``O(P)`` partial shuffle when over half the pool.  No
    per-key Python loop remains.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    pool_size = check_positive_int(pool_size, "pool_size")
    key_probability = check_probability(key_probability, "key_probability")
    rng = as_generator(seed)

    sizes = rng.binomial(pool_size, key_probability, size=num_nodes).astype(np.int64)
    rings: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_nodes

    # Rejection is viable while the per-row collision exponent
    # size*(size-1)/(2P) stays small; collision-heavy rings fall back to
    # the O(size)-per-row distinct-integer sampler.
    rejection_ok = sizes * (sizes - 1) <= 2.0 * _REJECTION_LIMIT * pool_size
    sparse_rows = np.flatnonzero((sizes > 0) & rejection_ok)
    dense_rows = np.flatnonzero((sizes > 0) & ~rejection_ok)

    if sparse_rows.size:
        row_sizes = sizes[sparse_rows]
        width = int(row_sizes.max())
        cols = np.arange(width, dtype=np.int64)
        # Pad columns beyond each row's size with distinct sentinels
        # >= P so they can never collide with real draws or each other.
        pad = cols[None, :] >= row_sizes[:, None]
        sentinel = pool_size + cols

        block = rng.integers(
            0, pool_size, size=(sparse_rows.size, width), dtype=np.int64
        )
        filled = np.sort(np.where(pad, sentinel, block), axis=1)
        bad = (np.diff(filled, axis=1) == 0).any(axis=1)
        while bad.any():
            count = int(bad.sum())
            redraw = rng.integers(0, pool_size, size=(count, width), dtype=np.int64)
            filled[bad] = np.sort(np.where(pad[bad], sentinel, redraw), axis=1)
            bad = (np.diff(filled, axis=1) == 0).any(axis=1)
        for pos, row in enumerate(sparse_rows):
            rings[row] = filled[pos, : sizes[row]].copy()

    for row in dense_rows:
        size = int(sizes[row])
        if size > pool_size // 2:
            # Near-full ring: partial shuffle, O(P) per row.
            noise = rng.random(pool_size)
            picked = np.argpartition(noise, size - 1)[:size].astype(np.int64)
            picked.sort()
            rings[row] = picked
        else:
            # Mid-size ring: batched distinct draws, O(size) per row.
            rings[row] = sample_distinct_integers(pool_size, size, rng)

    return rings


def rings_to_incidence(rings, pool_size: int) -> np.ndarray:
    """Convert rings to a dense ``(n, P)`` uint8 membership matrix.

    Accepts either the ``(n, K)`` array of uniform rings or the ragged
    list of binomial rings.  Used by the dense (Gram-matrix) overlap
    backend and by tests.
    """
    pool_size = check_positive_int(pool_size, "pool_size")
    if isinstance(rings, np.ndarray):
        rows = [rings[i] for i in range(rings.shape[0])]
    else:
        rows = list(rings)
    out = np.zeros((len(rows), pool_size), dtype=np.uint8)
    for i, ring in enumerate(rows):
        ring = np.asarray(ring, dtype=np.int64)
        if ring.size and (ring.min() < 0 or ring.max() >= pool_size):
            raise ValueError("ring contains key ids outside the pool")
        out[i, ring] = 1
    return out
