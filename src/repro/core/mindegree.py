"""Lemma 8: the minimum-degree law for ``G_{n,q}``.

``P[min degree of G_{n,q} >= k]`` converges to the *same* limit as
k-connectivity: ``exp(-e^{-α}/(k-1)!)``.  That identity is the upper
bound in the proof of Theorem 1 (k-connectivity implies min degree
>= k) and — since both limits agree — the paper's evidence that the
obstructions to k-connectivity are purely local (low-degree nodes).

Beyond the limit value, this module offers a finite-``n`` *refinement*:
treating low-degree-node counts as independent Poissons with the exact
binomial means ``λ_{n,h}`` (Lemma 9) gives

    P[min degree >= k] ≈ exp( - Σ_{h=0}^{k-1} λ_{n,h} )

which converges to the same limit (the sum is dominated by ``h = k-1``
at the critical scaling) but tracks Monte Carlo estimates noticeably
better at ``n`` in the hundreds — the min-degree experiment quantifies
the improvement.
"""

from __future__ import annotations

from repro.core.degree_distribution import lambda_nh_exact
from repro.core.scaling import deviation_alpha
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.utils.validation import check_positive_int
import math

__all__ = [
    "min_degree_probability_limit",
    "min_degree_probability_poisson",
]


def min_degree_probability_limit(params: QCompositeParams, k: int = 1) -> float:
    """Lemma 8's asymptotic ``P[min degree >= k]`` (same law as Theorem 1)."""
    k = check_positive_int(k, "k")
    alpha = deviation_alpha(params, k)
    return limit_probability(alpha, k)


def min_degree_probability_poisson(params: QCompositeParams, k: int = 1) -> float:
    """Finite-``n`` Poisson refinement ``exp(-Σ_{h<k} λ_{n,h})``.

    Uses the exact binomial node-degree means; reduces to the limit law
    as ``n → ∞`` under Eq. (6)'s scaling.
    """
    k = check_positive_int(k, "k")
    t = params.edge_probability()
    total = 0.0
    for h in range(k):
        total += lambda_nh_exact(params.num_nodes, t, h)
    if total > 700.0:
        return 0.0
    return math.exp(-total)
