"""Lemma 9: Poisson law for the number of fixed-degree nodes.

For ``G_{n,q}`` under Theorem 1's conditions with
``t_{n,q} = (ln n ± o(ln n))/n``, the number of nodes with degree
exactly ``h`` converges in distribution to Poisson with mean

    λ_{n,h} = n · (h!)^{-1} (n t_{n,q})^h e^{-n t_{n,q}}

This module computes ``λ_{n,h}`` (both the paper's Poissonized form and
the exact binomial form, whose difference vanishes but matters at small
``n``), the induced prediction for the degree histogram, and the
min-degree connection: ``P[min degree >= k] ≈ exp(-Σ_{h<k} λ_{n,h})``,
which is how Lemma 9 feeds Lemma 8.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.params import QCompositeParams
from repro.probability.poisson import poisson_pmf_vector
from repro.utils.logmath import log_binomial
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "lambda_nh",
    "lambda_nh_exact",
    "expected_degree_count",
    "degree_count_distribution",
    "degree_histogram_prediction",
    "isolated_node_lambda",
]


def lambda_nh(num_nodes: int, edge_prob: float, h: int) -> float:
    """The paper's Poissonized mean ``λ_{n,h}`` (Lemma 9 statement)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    h = check_nonnegative_int(h, "h")
    n = float(num_nodes)
    nt = n * edge_prob
    if nt == 0.0:
        return n if h == 0 else 0.0
    log_lambda = math.log(n) - math.lgamma(h + 1) + h * math.log(nt) - nt
    return math.exp(log_lambda)


def lambda_nh_exact(num_nodes: int, edge_prob: float, h: int) -> float:
    """Exact expected count: ``n · C(n-1, h) t^h (1-t)^{n-1-h}``.

    The binomial form of which ``λ_{n,h}`` is the Poisson limit; used by
    the degree experiments to separate "Poissonization error" from
    genuine model mismatch.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    h = check_nonnegative_int(h, "h")
    if h > num_nodes - 1:
        return 0.0
    if edge_prob == 0.0:
        return float(num_nodes) if h == 0 else 0.0
    if edge_prob == 1.0:
        return float(num_nodes) if h == num_nodes - 1 else 0.0
    log_term = (
        math.log(num_nodes)
        + log_binomial(num_nodes - 1, h)
        + h * math.log(edge_prob)
        + (num_nodes - 1 - h) * math.log1p(-edge_prob)
    )
    return math.exp(log_term)


def expected_degree_count(params: QCompositeParams, h: int, *, exact: bool = False) -> float:
    """Expected number of degree-``h`` nodes in ``G_{n,q}``."""
    fn = lambda_nh_exact if exact else lambda_nh
    return fn(params.num_nodes, params.edge_probability(), h)


def degree_count_distribution(
    params: QCompositeParams, h: int, max_count: int
) -> np.ndarray:
    """Lemma 9's predicted pmf of the degree-``h`` node count.

    Returns ``[P[N_h = 0], ..., P[N_h = max_count]]`` under
    ``N_h ~ Poisson(λ_{n,h})``.
    """
    lam = expected_degree_count(params, h)
    return poisson_pmf_vector(max_count, lam)


def isolated_node_lambda(params: QCompositeParams) -> float:
    """``λ_{n,0}``: expected isolated-node count — the k=1 obstruction."""
    return expected_degree_count(params, 0)


def degree_histogram_prediction(
    params: QCompositeParams, degrees: Sequence[int]
) -> Dict[int, float]:
    """Expected count for each requested degree (exact binomial form)."""
    return {
        int(h): expected_degree_count(params, int(h), exact=True) for h in degrees
    }
