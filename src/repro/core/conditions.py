"""Finite-``n`` diagnostics for Theorem 1's technical conditions.

Theorem 1 assumes, as ``n → ∞``:

* ``K_n = Ω(n^ε)`` for some constant ``ε > 0``,
* ``K_n² / P_n = o(1 / ln n)``,
* ``K_n / P_n = o(1 / (n ln n))``.

Asymptotic side conditions cannot be *checked* at a single ``n``, but
they can be *scored*: each condition corresponds to a dimensionless
ratio that should be comfortably below 1 for the asymptotic prediction
to be trustworthy at that ``n``.  The paper argues these hold in
practice because the pool size grows at least linearly in ``n`` and is
orders of magnitude larger than the ring size (Section III); the scores
below make that argument quantitative for a concrete design, and the
experiment harness prints them next to every prediction.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.params import QCompositeParams

__all__ = ["ConditionReport", "check_theorem1_conditions"]


@dataclasses.dataclass(frozen=True)
class ConditionReport:
    """Scores for Theorem 1's three side conditions (smaller = safer).

    Attributes
    ----------
    ring_growth_score:
        ``ln K / ln n`` — plays the role of the exponent ε in
        ``K = Ω(n^ε)``; any fixed positive value is acceptable, so the
        score only flags pathologically small rings (``K = O(1)``).
    overlap_score:
        ``(K²/P) · ln n`` — must be ``o(1)``; values ≪ 1 indicate the
        sparse-key regime where Lemma 2's asymptotics are accurate.
    ring_fraction_score:
        ``(K/P) · n ln n`` — must be ``o(1)``; controls the coupling
        error of Lemmas 5–6.
    """

    ring_growth_score: float
    overlap_score: float
    ring_fraction_score: float

    def satisfied(self, tolerance: float = 1.0) -> bool:
        """Whether both ``o(·)`` scores are below *tolerance*.

        The ring-growth score is informational and not gated (every
        ``K >= 2`` gives a positive exponent at finite ``n``).

        Calibration note: at the paper's own simulation scale
        (n=1000, K≈60, P=10⁴) the scores are ≈2.5 and ≈41 — formally far
        from the asymptotic regime — and yet the Theorem 1 prediction
        tracks the Monte Carlo curves closely (see EXPERIMENTS.md).  The
        scores measure *how asymptotic* a design point is, not whether
        the prediction is usable; treat small scores as "safe to trust
        blindly" and large ones as "verify by simulation".
        """
        return (
            self.overlap_score < tolerance
            and self.ring_fraction_score < tolerance
        )

    def to_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def check_theorem1_conditions(params: QCompositeParams) -> ConditionReport:
    """Score Theorem 1's side conditions for a concrete parameter tuple."""
    n = params.num_nodes
    k_ring = params.key_ring_size
    pool = params.pool_size
    log_n = math.log(n)
    return ConditionReport(
        ring_growth_score=math.log(k_ring) / log_n if n > 1 else float("inf"),
        overlap_score=(k_ring**2 / pool) * log_n,
        ring_fraction_score=(k_ring / pool) * n * log_n,
    )
