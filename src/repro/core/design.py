"""Design guidelines: dimensioning the q-composite scheme (Eq. 9 and beyond).

The paper's practical payoff is a sizing rule: Eq. (9) defines the
minimal key ring size ``K*`` whose edge probability clears the
connectivity threshold ``ln n / n``.  This module implements that rule
exactly (reproducing the paper's six reported values: 35, 41, 52, 60,
67, 78) and generalizes it along every axis Theorem 1 supports:

* arbitrary connectivity order ``k`` (threshold
  ``(ln n + (k-1) ln ln n)/n``);
* a *target probability* instead of the bare threshold, via the inverse
  limit law ``α = -ln(-ln P_target) + ln (k-1)!``;
* solving for the channel probability ``p`` or the pool size ``P``
  instead of ``K``.

All solvers use the exact hypergeometric ``s(K, P, q)``, monotone in
``K`` (increasing) and in ``P`` (decreasing), so integer bisection is
exact.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.exceptions import DesignError, ParameterError
from repro.params import QCompositeParams
from repro.probability.hypergeometric import overlap_survival
from repro.probability.limits import (
    critical_edge_probability,
    edge_probability_from_alpha,
    limit_probability,
    limit_probability_inverse,
)
from repro.utils.validation import (
    check_positive_int,
    check_probability,
)

__all__ = [
    "minimal_key_ring_size",
    "required_channel_probability",
    "maximal_pool_size",
    "minimal_network_size",
    "DesignReport",
    "design_network",
    "paper_kstar_table",
    "PAPER_REPORTED_KSTAR",
]


def _target_edge_probability(
    num_nodes: int, k: int, target_probability: Optional[float]
) -> float:
    """Edge probability a design must reach.

    ``target_probability=None`` reproduces Eq. (9): the bare critical
    scaling.  Otherwise the inverse limit law supplies the deviation
    achieving the requested asymptotic probability.
    """
    if target_probability is None:
        return critical_edge_probability(num_nodes, k)
    target_probability = check_probability(target_probability, "target_probability")
    if not 0.0 < target_probability < 1.0:
        raise DesignError(
            "target_probability must lie strictly between 0 and 1; "
            "use None for the bare threshold"
        )
    alpha = limit_probability_inverse(target_probability, k)
    return edge_probability_from_alpha(alpha, num_nodes, k)


def minimal_key_ring_size(
    num_nodes: int,
    pool_size: int,
    q: int,
    channel_prob: float = 1.0,
    k: int = 1,
    target_probability: Optional[float] = None,
    method: str = "exact",
) -> int:
    """Minimal integer ``K`` with ``p · s(K, P, q)`` above the target.

    With the defaults this is exactly the paper's Eq. (9): the smallest
    ``K*`` satisfying ``t(K*, P, q, p) > ln n / n``.  Raises
    :class:`DesignError` when even ``K = P`` cannot reach the target
    (then ``p`` itself is too small).

    ``method`` selects how ``s(K, P, q)`` is evaluated:

    * ``"exact"`` — the hypergeometric tail of Eq. (3), the literal
      reading of Eq. (9);
    * ``"asymptotic"`` — Lemma 2's ``(1/q!)(K²/P)^q``.  This is what
      the paper's reported values (35, 41, 52, 60, 67, 78) track: four
      of six match it exactly and the others are one above, whereas the
      exact tail yields strictly larger thresholds (36, 43, 55, 63, 71,
      85) because the asymptotic form overestimates ``s`` at these
      ``K²/P`` (see ``repro.probability.asymptotics``).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    pool_size = check_positive_int(pool_size, "pool_size")
    q = check_positive_int(q, "q")
    channel_prob = check_probability(channel_prob, "channel_prob", allow_zero=False)
    k = check_positive_int(k, "k")
    if method not in ("exact", "asymptotic"):
        raise DesignError(f"unknown method {method!r}; use 'exact' or 'asymptotic'")

    threshold = _target_edge_probability(num_nodes, k, target_probability)

    if method == "exact":
        edge_prob = lambda ring: overlap_survival(ring, pool_size, q)
    else:
        from repro.probability.asymptotics import edge_probability_asymptotic

        edge_prob = lambda ring: edge_probability_asymptotic(ring, pool_size, q)

    def clears(ring: int) -> bool:
        return channel_prob * edge_prob(ring) > threshold

    if not clears(pool_size):
        raise DesignError(
            f"even K = P = {pool_size} cannot exceed edge probability "
            f"{threshold:.3g} with p = {channel_prob}"
        )
    lo, hi = q, pool_size  # invariant: clears(hi) is True
    if clears(lo):
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if clears(mid):
            hi = mid
        else:
            lo = mid
    return hi


def required_channel_probability(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    k: int = 1,
    target_probability: Optional[float] = None,
) -> float:
    """Minimal channel probability reaching the target with the given ``K``.

    Raises :class:`DesignError` when even perfect channels (``p = 1``)
    fall short — the ring is too small.
    """
    threshold = _target_edge_probability(num_nodes, k, target_probability)
    s = overlap_survival(key_ring_size, pool_size, q)
    if s <= threshold:
        raise DesignError(
            f"K={key_ring_size} gives key-graph edge probability {s:.3g} <= "
            f"target {threshold:.3g}; no channel probability suffices"
        )
    return threshold / s


def maximal_pool_size(
    num_nodes: int,
    key_ring_size: int,
    q: int,
    channel_prob: float = 1.0,
    k: int = 1,
    target_probability: Optional[float] = None,
) -> int:
    """Largest pool ``P`` that still clears the target with the given ``K``.

    Bigger pools are better for resilience (captured rings reveal a
    smaller pool fraction) but hurt connectivity; this returns the
    resilience-optimal feasible choice.  Raises :class:`DesignError`
    when even ``P = K`` (every ring identical) cannot clear the target.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    key_ring_size = check_positive_int(key_ring_size, "key_ring_size")
    q = check_positive_int(q, "q")
    channel_prob = check_probability(channel_prob, "channel_prob", allow_zero=False)

    threshold = _target_edge_probability(num_nodes, k, target_probability)

    def clears(pool: int) -> bool:
        return channel_prob * overlap_survival(key_ring_size, pool, q) > threshold

    if not clears(key_ring_size):
        raise DesignError(
            f"K={key_ring_size} cannot clear target {threshold:.3g} even at P=K"
        )
    # Exponential search for a non-clearing upper bound, then bisect on
    # the invariant clears(lo) and not clears(hi).
    lo = key_ring_size
    hi = key_ring_size * 2
    while clears(hi):
        lo = hi
        hi *= 2
        if hi > 1 << 40:  # pragma: no cover - defensive against runaway
            raise DesignError("pool size search diverged")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if clears(mid):
            lo = mid
        else:
            hi = mid
    return lo


def minimal_network_size(
    key_ring_size: int,
    pool_size: int,
    q: int,
    channel_prob: float = 1.0,
    k: int = 1,
    target_probability: Optional[float] = None,
) -> int:
    """Smallest ``n`` from which a fixed design ``(K, P, q, p)`` works.

    The edge probability ``t = p·s(K,P,q)`` is independent of ``n``
    while the required threshold ``(ln n + (k-1) ln ln n + α)/n``
    decreases in ``n`` (for ``n >= 3``) — so, counterintuitively,
    *larger* networks are easier to keep k-connected at fixed per-node
    resources, and feasibility is upward closed in ``n``.  This solver
    answers the question deployments actually ask: "we built rings of
    size K — from which network size onward does the guarantee hold?"

    Raises :class:`DesignError` when no ``n`` up to ``2^40`` is
    feasible.
    """
    key_ring_size = check_positive_int(key_ring_size, "key_ring_size")
    pool_size = check_positive_int(pool_size, "pool_size")
    q = check_positive_int(q, "q")
    channel_prob = check_probability(channel_prob, "channel_prob", allow_zero=False)
    k = check_positive_int(k, "k")

    t = channel_prob * overlap_survival(key_ring_size, pool_size, q)

    def clears(n: int) -> bool:
        try:
            return t > _target_edge_probability(n, k, target_probability)
        except ParameterError:
            # The target maps to an edge probability above 1 at this n:
            # infeasible here, feasible at some larger n.
            return False

    # The threshold is decreasing in n (for n >= 3), so feasibility is
    # upward closed: find the smallest feasible n by bisection.
    lo = 3
    if clears(lo):
        return lo
    hi = 4
    while not clears(hi):
        hi *= 2
        if hi > 1 << 40:
            raise DesignError(
                f"design t={t:.3g} cannot reach the target at any "
                "practical network size"
            )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if clears(mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclasses.dataclass(frozen=True)
class DesignReport:
    """A dimensioned network design with its Theorem 1 assessment."""

    params: QCompositeParams
    k: int
    target_probability: Optional[float]
    predicted_probability: float
    alpha: float
    memory_per_node_bytes: int

    def to_dict(self) -> Dict[str, object]:
        d = dataclasses.asdict(self)
        d["params"] = self.params.to_dict()
        return d


def design_network(
    num_nodes: int,
    pool_size: int,
    q: int,
    channel_prob: float = 1.0,
    k: int = 1,
    target_probability: Optional[float] = None,
    key_bytes: int = 16,
) -> DesignReport:
    """One-call dimensioning: choose ``K`` and report the design.

    Picks the minimal ring size for the target, then evaluates the
    Theorem 1 prediction at the resulting integer design point (which is
    slightly above target because ``K`` is rounded up).
    """
    from repro.core.scaling import deviation_alpha

    ring = minimal_key_ring_size(
        num_nodes, pool_size, q, channel_prob, k, target_probability
    )
    params = QCompositeParams(
        num_nodes=num_nodes,
        key_ring_size=ring,
        pool_size=pool_size,
        overlap=q,
        channel_prob=channel_prob,
    )
    alpha = deviation_alpha(params, k)
    return DesignReport(
        params=params,
        k=k,
        target_probability=target_probability,
        predicted_probability=limit_probability(alpha, k),
        alpha=alpha,
        memory_per_node_bytes=ring * key_bytes,
    )


def paper_kstar_table(
    num_nodes: int = 1000, pool_size: int = 10000, method: str = "exact"
) -> List[Tuple[int, float, int]]:
    """The paper's Section IV threshold table: ``(q, p, K*)`` rows.

    The paper reports, leftmost to rightmost Figure 1 curve:
    35, 41, 52, 60, 67, 78.  With ``method="asymptotic"`` this function
    yields 35, 41, 52, 59, 67, 77 — matching four of six exactly and
    the remaining two within one integer step.  With the default
    ``method="exact"`` (the literal Eq. 9 hypergeometric) it yields the
    strictly correct thresholds 36, 43, 55, 63, 71, 85; the Monte Carlo
    curves of Figure 1 adjudicate between the two (see EXPERIMENTS.md).
    """
    rows: List[Tuple[int, float, int]] = []
    for q in (2, 3):
        for p in (1.0, 0.5, 0.2):
            rows.append(
                (
                    q,
                    p,
                    minimal_key_ring_size(
                        num_nodes, pool_size, q, p, k=1, method=method
                    ),
                )
            )
    return rows


#: The six K* values the paper reports in Section IV, leftmost curve first.
PAPER_REPORTED_KSTAR: List[Tuple[int, float, int]] = [
    (2, 1.0, 35),
    (2, 0.5, 41),
    (2, 0.2, 52),
    (3, 1.0, 60),
    (3, 0.5, 67),
    (3, 0.2, 78),
]
