"""Lemma 1: the confined-deviation constructions, made executable.

Lemma 1 lets the proof of Theorem 1 assume ``|α_n| = o(ln n)``: when
``α_n → ∞`` (resp. ``-∞``) it constructs a *comparison network* whose
deviation is clipped to the ``ln ln n`` scale and which is a spanning
subgraph (resp. supergraph) of the original, so the zero–one conclusion
transfers by monotonicity.

The constructions are fully explicit, so this module implements them as
parameter transforms on :class:`QCompositeParams`:

* **Property (i)** (``α`` large): clip ``α̃ = min(α, ln ln n)`` and
  shrink the channel probability to ``p̃`` with
  ``s(K,P,q) · p̃ = (ln n + (k-1) ln ln n + α̃)/n``.  Then ``p̃ <= p``,
  so the new network couples as a spanning subgraph of the original.
* **Property (ii)** (``α`` very negative): raise ``α̂ = max(α, -ln ln n)``.
  Case ➊ — if ``s(K,P,q)`` already reaches the lifted target, keep ``K``
  and raise only ``p̂ = target/s <= 1``.  Case ➋ — otherwise set
  ``p̂ = 1`` and grow the ring to the *largest* ``K̂`` whose ``s`` still
  does not exceed the lifted target (Eq. 32), recomputing ``α̂`` from
  ``K̂`` (Eq. 33).  Either way ``p̂ >= p`` and ``K̂ >= K``: the new
  network couples as a spanning supergraph.

Executable constructions let the test suite verify the lemma's claimed
inequalities at concrete parameter values, and let users build the
coupled comparison networks the proof reasons about.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict

from repro.exceptions import ParameterError
from repro.params import QCompositeParams
from repro.probability.hypergeometric import overlap_survival
from repro.probability.limits import edge_probability_from_alpha
from repro.core.scaling import deviation_alpha
from repro.utils.validation import check_positive_int

__all__ = [
    "ConfinementCase",
    "ConfinedDesign",
    "confine_above",
    "confine_below",
]


class ConfinementCase(enum.Enum):
    """Which branch of Lemma 1 produced the comparison network."""

    SUBGRAPH_CHANNEL = "property-i-channel-shrink"  # p̃ <= p, same K
    SUPERGRAPH_CHANNEL = "property-ii-case-1-channel-raise"  # p̂ >= p, same K
    SUPERGRAPH_RING = "property-ii-case-2-ring-grow"  # p̂ = 1, K̂ >= K


@dataclasses.dataclass(frozen=True)
class ConfinedDesign:
    """A comparison network produced by a Lemma 1 construction."""

    original: QCompositeParams
    confined: QCompositeParams
    case: ConfinementCase
    alpha_original: float
    alpha_confined: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "original": self.original.to_dict(),
            "confined": self.confined.to_dict(),
            "case": self.case.value,
            "alpha_original": self.alpha_original,
            "alpha_confined": self.alpha_confined,
        }


def _loglog(num_nodes: int) -> float:
    if num_nodes <= 3:
        raise ParameterError("confinement needs num_nodes > 3 (ln ln n)")
    return math.log(math.log(num_nodes))


def confine_above(params: QCompositeParams, k: int = 1) -> ConfinedDesign:
    """Property (i): clip a large deviation from above (Eqs. 17–22).

    Returns a network with ``α̃ = min(α, ln ln n)`` obtained purely by
    reducing the channel probability; the original network is a spanning
    supergraph of it under the natural coupling.
    """
    k = check_positive_int(k, "k")
    alpha = deviation_alpha(params, k)
    alpha_clipped = min(alpha, _loglog(params.num_nodes))
    if alpha_clipped == alpha:
        return ConfinedDesign(
            original=params,
            confined=params,
            case=ConfinementCase.SUBGRAPH_CHANNEL,
            alpha_original=alpha,
            alpha_confined=alpha,
        )
    target_t = edge_probability_from_alpha(alpha_clipped, params.num_nodes, k)
    s = params.key_edge_probability()
    p_tilde = target_t / s
    if not 0.0 < p_tilde <= params.channel_prob + 1e-15:
        raise ParameterError(
            f"construction produced invalid p̃ = {p_tilde:.6g} "
            f"(p = {params.channel_prob})"
        )
    confined = params.with_updates(channel_prob=min(p_tilde, params.channel_prob))
    return ConfinedDesign(
        original=params,
        confined=confined,
        case=ConfinementCase.SUBGRAPH_CHANNEL,
        alpha_original=alpha,
        alpha_confined=deviation_alpha(confined, k),
    )


def _largest_ring_below(
    pool_size: int, q: int, ceiling: float, start: int
) -> int:
    """Eq. (32): largest integer ``K#`` with ``s(K#, P, q) <= ceiling``.

    ``s`` is nondecreasing in ``K``, so integer bisection applies.
    Requires ``s(start, P, q) <= ceiling`` (guaranteed in case ➋).
    """
    if overlap_survival(pool_size, pool_size, q) <= ceiling:
        return pool_size
    lo, hi = start, pool_size  # s(lo) <= ceiling < s(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if overlap_survival(mid, pool_size, q) <= ceiling:
            lo = mid
        else:
            hi = mid
    return lo


def confine_below(params: QCompositeParams, k: int = 1) -> ConfinedDesign:
    """Property (ii): lift a very negative deviation (Eqs. 23–33).

    Returns a network with deviation lifted toward ``-ln ln n`` obtained
    by raising the channel probability (case ➊) or, when ``p̂`` would
    exceed 1, by setting ``p̂ = 1`` and growing the key ring (case ➋).
    The new network is a spanning supergraph of the original under the
    natural coupling.
    """
    k = check_positive_int(k, "k")
    alpha = deviation_alpha(params, k)
    n = params.num_nodes
    alpha_lifted = max(alpha, -_loglog(n))
    target_t = edge_probability_from_alpha(alpha_lifted, n, k)
    s = params.key_edge_probability()

    if s >= target_t:
        # Case ➊ — channels alone reach the lifted target.
        p_hat = target_t / s
        p_hat = max(p_hat, params.channel_prob)  # Eq. (28): p̂ >= p
        confined = params.with_updates(channel_prob=min(p_hat, 1.0))
        case = ConfinementCase.SUPERGRAPH_CHANNEL
    else:
        # Case ➋ — saturate the channel and grow the ring (Eqs. 31–33).
        ring_hat = _largest_ring_below(
            params.pool_size, params.overlap, target_t, params.key_ring_size
        )
        confined = params.with_updates(key_ring_size=ring_hat, channel_prob=1.0)
        case = ConfinementCase.SUPERGRAPH_RING

    return ConfinedDesign(
        original=params,
        confined=confined,
        case=case,
        alpha_original=alpha,
        alpha_confined=deviation_alpha(confined, k),
    )
