"""Core theory: Theorem 1, its lemmas, and the design guidelines."""

from repro.core.conditions import ConditionReport, check_theorem1_conditions
from repro.core.confinement import (
    ConfinedDesign,
    ConfinementCase,
    confine_above,
    confine_below,
)
from repro.core.degree_distribution import (
    degree_count_distribution,
    degree_histogram_prediction,
    expected_degree_count,
    isolated_node_lambda,
    lambda_nh,
    lambda_nh_exact,
)
from repro.core.design import (
    DesignReport,
    design_network,
    maximal_pool_size,
    minimal_key_ring_size,
    minimal_network_size,
    paper_kstar_table,
    required_channel_probability,
)
from repro.core.er_laws import er_alpha, er_k_connectivity_probability
from repro.core.heterogeneous import (
    class_edge_probabilities,
    het_channel_scale_for_alpha,
    het_limit_probability,
)
from repro.core.mindegree import (
    min_degree_probability_limit,
    min_degree_probability_poisson,
)
from repro.core.scaling import (
    channel_prob_for_alpha,
    critical_scaling,
    deviation_alpha,
    scaling_report,
)
from repro.core.theorem1 import (
    ConnectivityRegime,
    Theorem1Prediction,
    classify_regime,
    predict_k_connectivity,
)

__all__ = [
    "ConditionReport",
    "check_theorem1_conditions",
    "ConfinedDesign",
    "ConfinementCase",
    "confine_above",
    "confine_below",
    "degree_count_distribution",
    "degree_histogram_prediction",
    "expected_degree_count",
    "isolated_node_lambda",
    "lambda_nh",
    "lambda_nh_exact",
    "DesignReport",
    "design_network",
    "maximal_pool_size",
    "minimal_key_ring_size",
    "minimal_network_size",
    "paper_kstar_table",
    "required_channel_probability",
    "er_alpha",
    "er_k_connectivity_probability",
    "class_edge_probabilities",
    "het_channel_scale_for_alpha",
    "het_limit_probability",
    "min_degree_probability_limit",
    "min_degree_probability_poisson",
    "channel_prob_for_alpha",
    "critical_scaling",
    "deviation_alpha",
    "scaling_report",
    "ConnectivityRegime",
    "Theorem1Prediction",
    "classify_regime",
    "predict_k_connectivity",
]
